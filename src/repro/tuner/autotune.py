"""Auto-tuning planner: search the schedule configuration space.

The right pipeline schedule depends on the workload shape -- sequence
length, pipeline size and the GPU memory cap decide whether two-fold
FILO, zero-bubble or an adaptively-recomputing baseline wins (paper
Sections 4.2-4.5, Figure 8).  :func:`autotune` makes that decision by
search instead of enumeration: it sweeps every tunable registered
schedule x its admissible :class:`RecomputeStrategy` choices x the
feasible micro-batch counts under the workload's token budget x the
schedule's registered option grid (interleaved chunk counts, ZB1P
outstanding-W caps, HelixPipe fold), evaluates each candidate with the
discrete-event simulator behind a memoizing
:class:`~repro.tuner.cache.CostCache`, and returns ranked
:class:`PlanResult` rows -- feasible plans ordered by simulated
throughput, infeasible candidates kept with their reasons.

Large grids parallelise: ``autotune(..., workers=N)`` evaluates cold
candidates in a ``concurrent.futures`` process pool
(:mod:`repro.tuner.worker`), merging each worker's cache into the
caller's on join.  Results are deterministic and identical to the
serial sweep -- evaluation is a pure function of the candidate key, and
rows are assembled in sweep order regardless of completion order.

The workload argument is duck-typed to
:class:`repro.workloads.Workload`: anything exposing ``p``,
``num_micro_batches``, ``micro_batch``, ``seq_len``, ``cluster``,
``model``, ``costs(recompute)`` and ``static_memory()`` works.  Cache
keys must be stable across processes, so a workload whose ``model`` or
``cluster`` is not a dataclass (and has no value-bearing ``repr``) must
provide a ``cache_key()`` method -- see
:func:`repro.schedules.registry.workload_cache_key`.
"""

from __future__ import annotations

import functools
import gc
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.registry import (
    ScheduleBuildError,
    ScheduleSpec,
    available_schedules,
    get_schedule,
    workload_cache_key,
    workload_option_defaults,
)
from repro.sim import resimulate, simulate, simulate_recording
from repro.sim.engine import DeadlockError
from repro.tuner.bounds import throughput_upper_bounds
from repro.tuner.cache import DEFAULT_CACHE, CostCache
from repro.tuner.ircache import ScheduleIRCache
from repro.tuner.telemetry import SweepTelemetry
from repro.tuner.worker import evaluate_chunk

__all__ = ["Candidate", "PlanResult", "enumerate_candidates", "autotune"]

# Smallest schedule (total instruction count) worth recording a timeline
# reference for.  Below this, a full simulation costs about as much as
# the recording overhead plus a resume, so incremental re-simulation
# cannot pay for itself (it stays *correct* either way -- this is purely
# a cost cutoff).
_MIN_RECORD_OPS = 2000


@contextmanager
def _gc_paused():
    """Pause automatic garbage collection over an allocation burst.

    One candidate evaluation allocates tens of thousands of short-lived
    tuples and instruction objects; at the default thresholds the gen-0
    collector fires hundreds of times per sweep, each pass scanning the
    long-lived cost-model and cache heap for cycles that reference
    counting already reclaims (the sweep's object graphs are acyclic).
    Pausing collection for the sweep removes that overhead; the next
    allocation after re-enabling triggers a normal collection.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    schedule: str
    recompute: RecomputeStrategy
    num_micro_batches: int
    options: tuple[tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        opts = "".join(f",{k}={v}" for k, v in self.options)
        return (
            f"{self.schedule}[{self.recompute.value},"
            f"m={self.num_micro_batches}{opts}]"
        )


@dataclass(frozen=True)
class PlanResult:
    """Evaluation of one candidate, ranked by :func:`autotune`.

    ``reason`` is ``None`` for feasible plans; otherwise it explains the
    infeasibility (builder constraint violation, planner failure under
    the cap, simulated peak memory above the cap, executor deadlock, or
    a grid preclusion such as a micro-batch divisor beyond the budget).
    Simulated metrics are ``None`` when the candidate never built (not
    NaN: NaN compares unequal to itself, which would break comparing a
    cached sweep against a cold one).
    """

    candidate: Candidate
    feasible: bool
    reason: str | None
    iteration_time: float | None
    tokens_per_s: float
    peak_memory_bytes: float | None
    bubble_fraction: float | None

    @property
    def label(self) -> str:
        return self.candidate.label


# -- candidate enumeration ---------------------------------------------------


def _tunable_specs(schedules: Sequence[str] | None) -> list[ScheduleSpec]:
    if schedules is None:
        return [
            s
            for s in (get_schedule(n) for n in available_schedules())
            if s.tunable
        ]
    return [get_schedule(n) for n in schedules]


def _option_combos(
    spec: ScheduleSpec,
    num_stages: int,
    option_grids: Mapping[str, Mapping[str, Sequence[Any]]] | None,
) -> list[tuple[tuple[str, Any], ...]]:
    """Option combinations for one spec, canonicalised against defaults.

    Pairs whose value equals the schema default are dropped, so the
    all-defaults combination is always the empty tuple -- one canonical
    key per configuration, however the grid spelled it.
    """
    if option_grids is None:
        grid = spec.option_grid(num_stages)
    else:
        grid = {
            name: tuple(values)
            for name, values in option_grids.get(spec.name, {}).items()
        }
        unknown = sorted(set(grid) - set(spec.options))
        if unknown:
            raise ValueError(
                f"{spec.name}: option grid names {unknown} not in the "
                f"option schema {sorted(spec.options)}"
            )
    empty = sorted(name for name, values in grid.items() if not values)
    if empty:
        # An empty axis would itertools.product to zero combos and
        # silently drop the schedule -- the silent-exclusion class this
        # module otherwise reports as infeasible rows.
        raise ValueError(
            f"{spec.name}: empty value sequence for option grid {empty}"
        )
    if not grid:
        return [()]
    names = sorted(grid)
    combos: list[tuple[tuple[str, Any], ...]] = []
    seen: set[tuple[tuple[str, Any], ...]] = set()
    for values in itertools.product(*(grid[n] for n in names)):
        combo = tuple(
            (n, v) for n, v in zip(names, values) if v != spec.options[n]
        )
        if combo not in seen:
            seen.add(combo)
            combos.append(combo)
    return combos


def _iter_grid(
    workload: Any,
    schedules: Sequence[str] | None,
    recomputes: Sequence[RecomputeStrategy] | str | None,
    micro_batch_counts: Sequence[int] | None,
    option_grids: Mapping[str, Mapping[str, Sequence[Any]]] | None,
    fill_budget: bool = False,
) -> Iterator[tuple[Candidate, str | None]]:
    """Yield ``(candidate, precluded_reason)`` over the full sweep grid.

    ``precluded_reason`` is ``None`` for real grid points.  A schedule
    whose micro-batch divisor exceeds the workload budget has no grid
    point at all; it yields one synthetic candidate (at the divisor,
    the smallest count it could run) with the reason, so sweeps report
    the exclusion instead of silently dropping the schedule.

    ``fill_budget`` switches the micro-batch axis from *sweep every
    multiple of the divisor* to *run the largest multiple <= budget* --
    the fixed-tokens-per-iteration semantics of token-budget planning,
    where the micro-batch count is determined by the workload, not
    searched.
    """
    p = int(workload.p)
    budget = int(workload.num_micro_batches)
    specs = _tunable_specs(schedules)
    if option_grids is not None:
        # A grid keyed by a schedule outside the sweep is a typo, and a
        # worse one than an unknown option name: the override also
        # disables every registered grid, so the sweep would silently
        # run all-defaults while looking successful.
        unknown = sorted(set(option_grids) - {s.name for s in specs})
        if unknown:
            raise ValueError(
                f"option grid(s) for {unknown} name no swept schedule; "
                f"sweeping: {sorted(s.name for s in specs)}"
            )
    if isinstance(recomputes, str) and recomputes != "defaults":
        # Any other string would be iterated character-by-character and
        # crash far from here with an opaque AttributeError.
        raise ValueError(
            f"recomputes={recomputes!r}: the only string mode is "
            "'defaults' (pass a sequence of RecomputeStrategy otherwise)"
        )
    for spec in specs:
        if recomputes is None:
            strategies: Sequence[RecomputeStrategy] = spec.recompute_choices
        elif recomputes == "defaults":
            # Each schedule in its paper-default configuration only --
            # the comparison-figure semantics (one row per method).
            strategies = (spec.default_recompute,)
        else:
            strategies = recomputes
        for combo in _option_combos(spec, p, option_grids):
            if micro_batch_counts is None:
                d = spec.micro_batch_divisor(p, **dict(combo))
                if d > budget:
                    yield (
                        Candidate(spec.name, spec.default_recompute, d, combo),
                        f"micro-batch divisor {d} exceeds budget {budget}",
                    )
                    continue
                if fill_budget:
                    counts: Iterable[int] = ((budget // d) * d,)
                else:
                    counts = range(d, budget + 1, d)
            else:
                counts = micro_batch_counts
            for m in counts:
                for strat in strategies:
                    yield Candidate(spec.name, strat, int(m), combo), None


def enumerate_candidates(
    workload: Any,
    schedules: Sequence[str] | None = None,
    recomputes: Sequence[RecomputeStrategy] | str | None = None,
    micro_batch_counts: Sequence[int] | None = None,
    option_grids: Mapping[str, Mapping[str, Sequence[Any]]] | None = None,
    fill_budget: bool = False,
) -> list[Candidate]:
    """The sweep grid: schedules x recompute x micro-batch counts x options.

    With ``micro_batch_counts=None`` each schedule sweeps every multiple
    of its own divisibility constraint up to the workload's micro-batch
    budget (``workload.num_micro_batches``), so a layer-wise baseline
    that only needs multiples of ``p`` is not restricted to HelixPipe's
    ``2p`` grid.  With ``recomputes=None`` each schedule sweeps its own
    admissible strategies; the string ``"defaults"`` restricts each
    schedule to its single paper-default strategy instead.  With ``option_grids=None`` each schedule
    sweeps its registered :attr:`~ScheduleSpec.tune_options` grid
    (resolved for the workload's pipeline size).  An explicit
    ``{schedule: {option: values}}`` mapping *replaces* the registered
    grids entirely -- schedules it does not name sweep defaults only,
    and ``{}`` disables the option axis altogether; to extend one
    schedule's grid while keeping the others, include theirs in the
    mapping too.  Explicit counts and strategies are taken
    as-is -- candidates that violate a hard builder constraint or name
    an inadmissible strategy surface as infeasible results rather than
    being silently dropped.  ``fill_budget=True`` replaces the
    micro-batch sweep with the single largest feasible count per
    schedule/option combination (token-budget planning semantics).
    """
    return [
        cand
        for cand, precluded in _iter_grid(
            workload,
            schedules,
            recomputes,
            micro_batch_counts,
            option_grids,
            fill_budget,
        )
        if precluded is None
    ]


# -- evaluation --------------------------------------------------------------


def _workload_key(workload: Any) -> tuple:
    # Canonical, process-stable identity (dataclass fields or an opt-in
    # cache_key() hook -- never a memory-address repr): two workloads
    # may share a model/cluster *name* (a tweaked "7B" preset, a retuned
    # "H20x8") and must not alias in a shared or persisted cache, and a
    # key computed in a pool worker must equal the parent's.
    return workload_cache_key(workload)


def _candidate_key(
    workload: Any,
    cand: Candidate,
    memory_cap_bytes: float,
    workload_key: tuple | None = None,
) -> tuple:
    # Sweep loops pass the precomputed workload_key: the recursive
    # dataclass traversal is identical for every candidate.
    return (
        _workload_key(workload) if workload_key is None else workload_key,
        float(memory_cap_bytes),
        cand.schedule,
        cand.recompute.value,
        cand.num_micro_batches,
        cand.options,
    )


class _EvalContext:
    """Per-sweep memo of workload-derived values shared by every candidate.

    Cost providers, the static-memory figure and per-spec workload
    option defaults are pure functions of the workload (and memory cap),
    yet were recomputed for each of the hundreds of candidates in a
    sweep -- dominating profiles of the cold path.  One context per
    sweep evaluates each exactly once; cost providers are further shared
    per recompute strategy (builders never mutate them).

    The context also owns the sweep's build/simulate fast paths:

    * ``ir_cache`` memoizes built IR under its structural key, so a
      configuration revisited by a warm re-sweep, another grid point or
      a parallel worker is never rebuilt;
    * ``incremental`` turns on prefix re-simulation for candidate
      *families* (same schedule/m/options, different recompute): the
      first sibling simulated records a timeline reference, later
      siblings resume it (:mod:`repro.sim.incremental`), with metrics
      bit-identical to a full simulation either way;
    * ``telemetry`` accumulates per-phase wall time and counters.
    """

    def __init__(
        self,
        workload: Any,
        memory_cap_bytes: float,
        *,
        wkey: tuple | None = None,
        ir_cache: ScheduleIRCache | None = None,
        incremental: bool = True,
        telemetry: SweepTelemetry | None = None,
        family_counts: Mapping[tuple, int] | None = None,
    ) -> None:
        self.workload = workload
        self.memory_cap_bytes = float(memory_cap_bytes)
        self.wkey = wkey
        self.ir_cache = ir_cache
        self.incremental = incremental
        self.telemetry = telemetry
        self.family_counts = family_counts if family_counts is not None else {}
        self._costs: dict[RecomputeStrategy, Any] = {}
        self._static: float | None = None
        self._defaults: dict[str, dict[str, Any]] = {}

    def costs(self, recompute: RecomputeStrategy) -> Any:
        provider = self._costs.get(recompute)
        if provider is None:
            provider = self._costs[recompute] = self.workload.costs(recompute)
        return provider

    def static_memory(self) -> float:
        if self._static is None:
            self._static = self.workload.static_memory()
        return self._static

    def option_defaults(self, spec: ScheduleSpec) -> dict[str, Any]:
        defaults = self._defaults.get(spec.name)
        if defaults is None:
            defaults = self._defaults[spec.name] = workload_option_defaults(
                spec, self.workload, self.memory_cap_bytes
            )
        return defaults

    def _workload_key(self) -> tuple:
        if self.wkey is None:
            self.wkey = _workload_key(self.workload)
        return self.wkey

    def family_key(self, cand: Candidate) -> tuple:
        """Identity of a candidate's sibling family (recompute excluded)."""
        return (
            self._workload_key(),
            self.memory_cap_bytes,
            cand.schedule,
            cand.num_micro_batches,
            cand.options,
        )

    def build_schedule(self, spec: ScheduleSpec, cand: Candidate, opts: dict):
        """Build (or fetch) the candidate's IR; cached structurally."""
        tel = self.telemetry
        cache = self.ir_cache
        key = None
        if cache is not None:
            key = (
                self._workload_key(),
                self.memory_cap_bytes,
                cand.schedule,
                cand.recompute.value,
                cand.num_micro_batches,
                cand.options,
            )
            sched = cache.get(key)
            if sched is not None:
                if tel is not None:
                    tel.build_cache_hits += 1
                return sched
        t0 = time.perf_counter()
        sched = spec.build(
            (self.workload.p, cand.num_micro_batches),
            self.costs(cand.recompute),
            verify=False,
            **opts,
        )
        if tel is not None:
            tel.build_s += time.perf_counter() - t0
            tel.built += 1
        if cache is not None:
            cache.put(key, sched)
        return sched

    def simulate_candidate(self, cand: Candidate, sched):
        """Simulate the candidate, incrementally when a sibling already ran.

        The first simulated member of a multi-candidate family records a
        :class:`~repro.sim.incremental.SimReference`; later members
        resume its timeline prefix (falling back to a full simulation
        whenever the divergence detector cannot prove reuse safe).
        Singleton families take the plain path -- recording would only
        add overhead nothing reuses.
        """
        tel = self.telemetry
        t0 = time.perf_counter()
        try:
            cache = self.ir_cache
            if self.incremental and cache is not None:
                fam = self.family_key(cand)
                ref = cache.get_reference(fam)
                if ref is not None:
                    result, stats = resimulate(
                        ref,
                        sched,
                        self.workload.cluster,
                        static_memory_bytes=self.static_memory(),
                        verify=False,
                    )
                    if tel is not None:
                        if stats.mode == "incremental":
                            tel.incremental_hits += 1
                        else:
                            tel.incremental_fallbacks += 1
                    return result
                if self.family_counts.get(fam, 0) > 1 and (
                    sum(len(prog) for prog in sched.programs)
                    >= _MIN_RECORD_OPS
                ):
                    ref = simulate_recording(
                        sched,
                        self.workload.cluster,
                        static_memory_bytes=self.static_memory(),
                        verify=False,
                    )
                    cache.put_reference(fam, ref)
                    if tel is not None:
                        tel.references_recorded += 1
                    return ref.result
            return simulate(
                sched,
                self.workload.cluster,
                static_memory_bytes=self.static_memory(),
                verify=False,
                record_trace=False,
            )
        finally:
            if tel is not None:
                tel.simulate_s += time.perf_counter() - t0
                tel.simulated += 1


def _cold_evaluate(
    workload: Any,
    cand: Candidate,
    memory_cap_bytes: float,
    ctx: _EvalContext | None = None,
) -> dict[str, Any]:
    """Build + simulate one candidate; returns a cacheable record."""
    if ctx is None:
        ctx = _EvalContext(workload, memory_cap_bytes)
    spec = get_schedule(cand.schedule)
    opts = dict(cand.options)
    for name, value in ctx.option_defaults(spec).items():
        opts.setdefault(name, value)
    try:
        # verify=False on both steps: registry builders are
        # property-tested against the full pass pipeline, so the sweep
        # skips the per-candidate re-verification; a genuinely
        # unexecutable schedule still surfaces as a runtime
        # DeadlockError below.
        sched = ctx.build_schedule(spec, cand, opts)
        result = ctx.simulate_candidate(cand, sched)
    except (ScheduleBuildError, DeadlockError, ValueError) as err:
        return {"error": str(err)}
    return {
        "error": None,
        "makespan": result.makespan,
        "peak_memory_bytes": result.max_peak_memory_bytes,
        "bubble_fraction": result.bubble_fraction,
    }


def _infeasible(cand: Candidate, reason: str) -> PlanResult:
    return PlanResult(
        candidate=cand,
        feasible=False,
        reason=reason,
        iteration_time=None,
        tokens_per_s=0.0,
        peak_memory_bytes=None,
        bubble_fraction=None,
    )


def _to_plan_result(
    workload: Any,
    cand: Candidate,
    record: dict[str, Any],
    memory_cap_bytes: float,
) -> PlanResult:
    if record["error"] is not None:
        return _infeasible(cand, record["error"])
    tokens = float(cand.num_micro_batches) * workload.micro_batch * workload.seq_len
    makespan = record["makespan"]
    peak = record["peak_memory_bytes"]
    reason = None
    if peak > memory_cap_bytes:
        gib = float(1 << 30)
        reason = (
            f"OOM: peak {peak / gib:.1f} GiB > cap {memory_cap_bytes / gib:.1f} GiB"
        )
    return PlanResult(
        candidate=cand,
        feasible=reason is None,
        reason=reason,
        iteration_time=makespan,
        tokens_per_s=tokens / makespan if makespan > 0 else 0.0,
        peak_memory_bytes=peak,
        bubble_fraction=record["bubble_fraction"],
    )


# -- the tuner ---------------------------------------------------------------


def autotune(
    workload: Any,
    memory_cap_bytes: float | None = None,
    *,
    schedules: Sequence[str] | None = None,
    recomputes: Sequence[RecomputeStrategy] | str | None = None,
    micro_batch_counts: Sequence[int] | None = None,
    option_grids: Mapping[str, Mapping[str, Sequence[Any]]] | None = None,
    fill_budget: bool = False,
    cache: CostCache | None = None,
    include_infeasible: bool = True,
    workers: int | None = None,
    prune: bool = True,
    ir_cache: ScheduleIRCache | None = None,
    incremental: bool = True,
    telemetry: SweepTelemetry | None = None,
) -> list[PlanResult]:
    """Search the schedule space for the fastest feasible plan.

    Parameters
    ----------
    workload:
        Workload shape + cost context (see module docstring).
    memory_cap_bytes:
        Per-GPU memory capacity; defaults to the cluster GPU's HBM size.
        Plans whose simulated peak exceeds it are reported infeasible,
        and schedules that plan under a cap themselves (AdaPipe) receive
        it as their planning budget.
    schedules, recomputes, micro_batch_counts, option_grids:
        Restrict the sweep grid; ``None`` means every tunable registered
        schedule, each schedule's admissible strategies (the string
        ``"defaults"``: only each schedule's default strategy), every
        micro-batch count on the schedule's divisibility grid up to the
        workload budget, and each schedule's registered option grid.
        An explicit ``option_grids`` mapping replaces the registered
        grids entirely (unnamed schedules sweep defaults only; ``{}``
        disables the option axis).
    fill_budget:
        Run each schedule/option combination at the single largest
        micro-batch count on its divisor grid under the workload budget
        instead of sweeping every multiple -- the fixed
        tokens-per-iteration semantics workload-grid planning uses
        (:func:`repro.tuner.grid.tune_grid`).
    cache:
        :class:`CostCache` to memoize evaluations in (default: the
        process-wide shared cache).  Identical candidate tuples are
        never re-simulated; pre-load a persisted store with
        :meth:`CostCache.load` to reuse evaluations across runs.
    include_infeasible:
        Keep infeasible candidates (with reasons) at the tail of the
        returned list.
    workers:
        Evaluate cold candidates in a process pool of this size
        (``None``/``0``/``1``: serially in-process).  Each worker
        evaluates a chunk into its own cache; the chunks are merged into
        ``cache`` on join, and results are identical to the serial sweep
        in content, order and cache-stats accounting.
    prune:
        Skip simulating candidates whose closed-form throughput upper
        bound (:func:`repro.tuner.bounds.throughput_upper_bounds`, built
        on the Table 2 lower bounds in :mod:`repro.analysis.bubble`)
        is already below the best simulated feasible throughput.
        Candidates are walked best-bound-first, so the optimum is
        provably never pruned: the winner's bound dominates its own
        simulated throughput, hence every candidate it prunes is
        strictly worse.  Pruned candidates surface as infeasible rows
        (reason ``"pruned: ..."``), are counted in
        :attr:`CacheStats.pruned`, and never enter the cache -- a warm
        re-sweep replays the identical decisions.  ``prune=False`` is
        the exhaustive escape hatch; workloads the closed-form model
        cannot price (duck types without model/GPU attributes) disable
        pruning automatically.
    ir_cache:
        :class:`ScheduleIRCache` memoizing built IR under its structural
        key (workload, cap, schedule, recompute, m, options), so each
        distinct IR builds exactly once per cache lifetime.  ``None``
        (default) uses a fresh private cache for this sweep; pass a
        shared instance to reuse builds across sweeps
        (:func:`repro.tuner.grid.tune_grid` does).
    incremental:
        Re-simulate candidate *families* (same schedule/m/options,
        different recompute strategy) incrementally: the first sibling
        records its event timeline, later siblings resume from the last
        checkpoint before their first timing divergence
        (:mod:`repro.sim.incremental`).  Metrics -- and therefore
        winners, rankings and cached records -- are bit-identical to
        full simulation; ``incremental=False`` is the escape hatch that
        forces every candidate through the from-scratch simulator.
    telemetry:
        :class:`~repro.tuner.telemetry.SweepTelemetry` accumulating
        per-phase wall time (build/bound/simulate/cache) and counters
        for this sweep; reuse one instance across sweeps to aggregate.

    Returns
    -------
    list[PlanResult]
        Feasible plans first, ranked by simulated tokens/s (ties broken
        by lower peak memory), then -- unless disabled -- the infeasible
        candidates in sweep order.
    """
    cache = DEFAULT_CACHE if cache is None else cache
    if ir_cache is None:
        ir_cache = ScheduleIRCache()
    if memory_cap_bytes is None:
        memory_cap_bytes = float(workload.cluster.node.gpu.hbm_bytes)

    wkey = _workload_key(workload)
    rows: list[PlanResult | None] = []
    pending: list[tuple[int, Candidate, tuple]] = []
    for cand, precluded in _iter_grid(
        workload, schedules, recomputes, micro_batch_counts, option_grids,
        fill_budget,
    ):
        if (
            precluded is None
            and cand.recompute
            not in get_schedule(cand.schedule).recompute_choices
        ):
            # Explicitly requested strategy the schedule does not model
            # faithfully: report it rather than evaluating nonsense.
            precluded = (
                f"recompute {cand.recompute.value!r} not admissible "
                f"for schedule {cand.schedule!r}"
            )
        if precluded is not None:
            rows.append(_infeasible(cand, precluded))
            continue
        pending.append(
            (
                len(rows),
                cand,
                _candidate_key(workload, cand, memory_cap_bytes, wkey),
            )
        )
        rows.append(None)

    # Sibling-family multiplicity decides whether the first simulated
    # member records a resumable timeline reference: recording costs a
    # few percent, so singleton families skip it.
    family_counts: dict[tuple, int] = {}
    cap = float(memory_cap_bytes)
    for _, cand, _key in pending:
        fam = (wkey, cap, cand.schedule, cand.num_micro_batches, cand.options)
        family_counts[fam] = family_counts.get(fam, 0) + 1
    ctx = _EvalContext(
        workload,
        memory_cap_bytes,
        wkey=wkey,
        ir_cache=ir_cache,
        incremental=incremental,
        telemetry=telemetry,
        family_counts=family_counts,
    )
    if telemetry is not None:
        telemetry.candidates += len(pending)

    # Admissible pruning: price every pending candidate's closed-form
    # throughput upper bound in one vectorised shot, then walk the
    # candidates best-bound-first.  Any candidate whose bound is below
    # the best simulated feasible throughput so far provably cannot win
    # (bound >= simulated throughput), so its simulation is skipped.
    t_bound = time.perf_counter()
    ubs = (
        throughput_upper_bounds(workload, [c for _, c, _ in pending])
        if prune and pending
        else None
    )
    if telemetry is not None:
        telemetry.bound_s += time.perf_counter() - t_bound
    if ubs is None:
        order = range(len(pending))
    else:
        # Ties (same bound) keep sweep order, so the walk -- and with it
        # every pruning decision -- is deterministic.
        order = sorted(range(len(pending)), key=lambda i: (-ubs[i], i))

    # Fan the cold candidates out to a process pool.  Each worker fills
    # a private CostCache; the merged records feed the same get_or_eval
    # path the serial sweep uses, so hit/miss accounting is identical.
    remote: dict[tuple, dict[str, Any]] = {}
    if workers and workers > 1:
        # Cached feasible throughputs give the pruning floor before any
        # cold work is dispatched.  A candidate the serial replay below
        # prunes at bound ub had some earlier-walked candidate with
        # simulated throughput > ub; that candidate's own bound is >= its
        # throughput > ub, so the dispatch filter (ub >= floor from
        # *all* cached records) keeps a superset of what the replay
        # simulates -- never the reverse, which would deadlock the
        # replay into local cold evaluation.
        best_floor = 0.0
        if ubs is not None:
            for idx, cand, key in pending:
                if key in cache:
                    row = _to_plan_result(
                        workload, cand, cache.peek(key), memory_cap_bytes
                    )
                    if row.feasible and row.tokens_per_s > best_floor:
                        best_floor = row.tokens_per_s
        missing: list[Candidate] = []
        seen: set[tuple] = set()
        for i, (_, cand, key) in enumerate(pending):
            if key in cache or key in seen:
                continue
            if ubs is not None and ubs[i] < best_floor:
                continue
            seen.add(key)
            missing.append(cand)
        if missing:
            n_workers = min(int(workers), len(missing))
            # Strided chunks spread expensive neighbours (large m, MILP
            # schedules) across workers instead of stacking one worker.
            chunks = [missing[i::n_workers] for i in range(n_workers)]
            run = functools.partial(
                evaluate_chunk, workload, memory_cap_bytes,
                incremental=incremental,
            )
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                for worker_cache in pool.map(run, chunks):
                    remote.update(worker_cache.entries())

    best_tps = 0.0
    t_eval = time.perf_counter()
    with _gc_paused():
        for i in order:
            idx, cand, key = pending[i]
            if key not in cache and ubs is not None and ubs[i] < best_tps:
                # Simulating this candidate cannot change the winner;
                # report it as pruned.  It never enters the cache, so a
                # warm re-sweep walks the identical records and replays
                # the identical decision (cached records are never
                # pruned).  Remote workers may have speculatively
                # evaluated it under their weaker pre-dispatch floor;
                # that record is discarded.
                cache.stats.pruned += 1
                rows[idx] = _infeasible(
                    cand,
                    f"pruned: throughput upper bound {ubs[i]:.0f} tokens/s "
                    f"below best simulated plan {best_tps:.0f} tokens/s",
                )
                continue
            if key in remote:
                record = cache.get_or_eval(key, lambda k=key: remote[k])
            else:
                record = cache.get_or_eval(
                    key,
                    lambda c=cand: _cold_evaluate(
                        workload, c, memory_cap_bytes, ctx
                    ),
                )
            row = _to_plan_result(workload, cand, record, memory_cap_bytes)
            rows[idx] = row
            if row.feasible and row.tokens_per_s > best_tps:
                best_tps = row.tokens_per_s
    if telemetry is not None:
        telemetry.eval_s += time.perf_counter() - t_eval

    results: list[PlanResult] = rows  # type: ignore[assignment]
    feasible = [r for r in results if r.feasible]
    feasible.sort(key=lambda r: (-r.tokens_per_s, r.peak_memory_bytes))
    if not include_infeasible:
        return feasible
    return feasible + [r for r in results if not r.feasible]
