"""Auto-tuning planner: search the schedule configuration space.

The right pipeline schedule depends on the workload shape -- sequence
length, pipeline size and the GPU memory cap decide whether two-fold
FILO, zero-bubble or an adaptively-recomputing baseline wins (paper
Sections 4.2-4.5, Figure 8).  :func:`autotune` makes that decision by
search instead of enumeration: it sweeps every tunable registered
schedule x its admissible :class:`RecomputeStrategy` choices x the
feasible micro-batch counts under the workload's token budget, evaluates
each candidate with the discrete-event simulator behind a memoizing
:class:`~repro.tuner.cache.CostCache`, and returns ranked
:class:`PlanResult` rows -- feasible plans ordered by simulated
throughput, infeasible candidates kept with their reasons.

The workload argument is duck-typed to
:class:`repro.experiments.common.Workload`: anything exposing ``p``,
``num_micro_batches``, ``micro_batch``, ``seq_len``, ``cluster``,
``model``, ``costs(recompute)`` and ``static_memory()`` works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.registry import (
    ScheduleBuildError,
    ScheduleSpec,
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.sim import simulate
from repro.sim.engine import DeadlockError
from repro.tuner.cache import DEFAULT_CACHE, CostCache

__all__ = ["Candidate", "PlanResult", "enumerate_candidates", "autotune"]


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    schedule: str
    recompute: RecomputeStrategy
    num_micro_batches: int
    options: tuple[tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        opts = "".join(f",{k}={v}" for k, v in self.options)
        return (
            f"{self.schedule}[{self.recompute.value},"
            f"m={self.num_micro_batches}{opts}]"
        )


@dataclass(frozen=True)
class PlanResult:
    """Evaluation of one candidate, ranked by :func:`autotune`.

    ``reason`` is ``None`` for feasible plans; otherwise it explains the
    infeasibility (builder constraint violation, planner failure under
    the cap, simulated peak memory above the cap, executor deadlock).
    Simulated metrics are ``None`` when the candidate never built (not
    NaN: NaN compares unequal to itself, which would break comparing a
    cached sweep against a cold one).
    """

    candidate: Candidate
    feasible: bool
    reason: str | None
    iteration_time: float | None
    tokens_per_s: float
    peak_memory_bytes: float | None
    bubble_fraction: float | None

    @property
    def label(self) -> str:
        return self.candidate.label


# -- candidate enumeration ---------------------------------------------------


def _tunable_specs(schedules: Sequence[str] | None) -> list[ScheduleSpec]:
    if schedules is None:
        return [
            s
            for s in (get_schedule(n) for n in available_schedules())
            if s.tunable
        ]
    return [get_schedule(n) for n in schedules]


def enumerate_candidates(
    workload: Any,
    schedules: Sequence[str] | None = None,
    recomputes: Sequence[RecomputeStrategy] | None = None,
    micro_batch_counts: Sequence[int] | None = None,
) -> list[Candidate]:
    """The sweep grid: schedules x recompute choices x micro-batch counts.

    With ``micro_batch_counts=None`` each schedule sweeps every multiple
    of its own divisibility constraint up to the workload's micro-batch
    budget (``workload.num_micro_batches``), so a layer-wise baseline
    that only needs multiples of ``p`` is not restricted to HelixPipe's
    ``2p`` grid.  With ``recomputes=None`` each schedule sweeps its own
    admissible strategies.  Explicit counts and strategies are taken
    as-is -- candidates that violate a hard builder constraint or name
    an inadmissible strategy surface as infeasible results rather than
    being silently dropped.
    """
    p = int(workload.p)
    budget = int(workload.num_micro_batches)
    out: list[Candidate] = []
    for spec in _tunable_specs(schedules):
        if micro_batch_counts is None:
            d = spec.micro_batch_divisor(p)
            counts: Iterable[int] = range(d, budget + 1, d)
        else:
            counts = micro_batch_counts
        strategies = (
            spec.recompute_choices if recomputes is None else recomputes
        )
        for m in counts:
            for strat in strategies:
                out.append(Candidate(spec.name, strat, int(m)))
    return out


# -- evaluation --------------------------------------------------------------


def _workload_key(workload: Any) -> tuple:
    # Key on the value-bearing dataclass reprs, not just names: two
    # workloads may share a model/cluster *name* (a tweaked "7B" preset,
    # a retuned "H20x8") and must not alias in a shared cache.
    return (
        repr(workload.model),
        repr(workload.cluster),
        int(workload.seq_len),
        int(workload.micro_batch),
    )


def _candidate_key(workload: Any, cand: Candidate, memory_cap_bytes: float) -> tuple:
    return (
        _workload_key(workload),
        float(memory_cap_bytes),
        cand.schedule,
        cand.recompute.value,
        cand.num_micro_batches,
        cand.options,
    )


def _cold_evaluate(
    workload: Any, cand: Candidate, memory_cap_bytes: float
) -> dict[str, Any]:
    """Build + simulate one candidate; returns a cacheable record."""
    spec = get_schedule(cand.schedule)
    opts = dict(cand.options)
    for name, value in workload_option_defaults(
        spec, workload, memory_cap_bytes
    ).items():
        opts.setdefault(name, value)
    try:
        sched = spec.build(
            (workload.p, cand.num_micro_batches),
            workload.costs(cand.recompute),
            **opts,
        )
        # spec.build just ran the full pass pipeline; skip the
        # simulator's redundant executability re-check on the hot path.
        result = simulate(
            sched,
            workload.cluster,
            static_memory_bytes=workload.static_memory(),
            verify=False,
        )
    except (ScheduleBuildError, DeadlockError, ValueError) as err:
        return {"error": str(err)}
    return {
        "error": None,
        "makespan": result.makespan,
        "peak_memory_bytes": result.max_peak_memory_bytes,
        "bubble_fraction": result.bubble_fraction,
    }


def _to_plan_result(
    workload: Any,
    cand: Candidate,
    record: dict[str, Any],
    memory_cap_bytes: float,
) -> PlanResult:
    if record["error"] is not None:
        return PlanResult(
            candidate=cand,
            feasible=False,
            reason=record["error"],
            iteration_time=None,
            tokens_per_s=0.0,
            peak_memory_bytes=None,
            bubble_fraction=None,
        )
    tokens = float(cand.num_micro_batches) * workload.micro_batch * workload.seq_len
    makespan = record["makespan"]
    peak = record["peak_memory_bytes"]
    reason = None
    if peak > memory_cap_bytes:
        gib = float(1 << 30)
        reason = (
            f"OOM: peak {peak / gib:.1f} GiB > cap {memory_cap_bytes / gib:.1f} GiB"
        )
    return PlanResult(
        candidate=cand,
        feasible=reason is None,
        reason=reason,
        iteration_time=makespan,
        tokens_per_s=tokens / makespan if makespan > 0 else 0.0,
        peak_memory_bytes=peak,
        bubble_fraction=record["bubble_fraction"],
    )


# -- the tuner ---------------------------------------------------------------


def autotune(
    workload: Any,
    memory_cap_bytes: float | None = None,
    *,
    schedules: Sequence[str] | None = None,
    recomputes: Sequence[RecomputeStrategy] | None = None,
    micro_batch_counts: Sequence[int] | None = None,
    cache: CostCache | None = None,
    include_infeasible: bool = True,
) -> list[PlanResult]:
    """Search the schedule space for the fastest feasible plan.

    Parameters
    ----------
    workload:
        Workload shape + cost context (see module docstring).
    memory_cap_bytes:
        Per-GPU memory capacity; defaults to the cluster GPU's HBM size.
        Plans whose simulated peak exceeds it are reported infeasible,
        and schedules that plan under a cap themselves (AdaPipe) receive
        it as their planning budget.
    schedules, recomputes, micro_batch_counts:
        Restrict the sweep grid; ``None`` means every tunable registered
        schedule, each schedule's admissible strategies, and every
        micro-batch count on the schedule's divisibility grid up to the
        workload budget.
    cache:
        :class:`CostCache` to memoize evaluations in (default: the
        process-wide shared cache).  Identical candidate tuples are
        never re-simulated.
    include_infeasible:
        Keep infeasible candidates (with reasons) at the tail of the
        returned list.

    Returns
    -------
    list[PlanResult]
        Feasible plans first, ranked by simulated tokens/s (ties broken
        by lower peak memory), then -- unless disabled -- the infeasible
        candidates in sweep order.
    """
    cache = DEFAULT_CACHE if cache is None else cache
    if memory_cap_bytes is None:
        memory_cap_bytes = float(workload.cluster.node.gpu.hbm_bytes)
    results = []
    for cand in enumerate_candidates(
        workload, schedules, recomputes, micro_batch_counts
    ):
        if cand.recompute not in get_schedule(cand.schedule).recompute_choices:
            # Explicitly requested strategy the schedule does not model
            # faithfully: report it rather than evaluating nonsense.
            results.append(
                PlanResult(
                    candidate=cand,
                    feasible=False,
                    reason=(
                        f"recompute {cand.recompute.value!r} not admissible "
                        f"for schedule {cand.schedule!r}"
                    ),
                    iteration_time=None,
                    tokens_per_s=0.0,
                    peak_memory_bytes=None,
                    bubble_fraction=None,
                )
            )
            continue
        record = cache.get_or_eval(
            _candidate_key(workload, cand, memory_cap_bytes),
            lambda c=cand: _cold_evaluate(workload, c, memory_cap_bytes),
        )
        results.append(_to_plan_result(workload, cand, record, memory_cap_bytes))
    feasible = [r for r in results if r.feasible]
    feasible.sort(key=lambda r: (-r.tokens_per_s, r.peak_memory_bytes))
    if not include_infeasible:
        return feasible
    return feasible + [r for r in results if not r.feasible]
