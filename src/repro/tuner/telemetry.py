"""Per-phase telemetry for auto-tune sweeps.

The cold sweep decomposes into four phases -- candidate *build* (IR
construction), *bound* pricing (closed-form throughput upper bounds for
pruning), *simulate* (discrete-event evaluation, full or incremental),
and residual *cache/bookkeeping* overhead.  :class:`SweepTelemetry`
accumulates wall time and counters for each so the perf harness
(``repro bench``) can report where a sweep actually spends its time and
gate regressions per phase instead of only end to end.

Pass an instance to :func:`repro.tuner.autotune` (or
:func:`repro.tuner.tune_grid`, which shares one across its points); the
same object can be reused across several sweeps to aggregate.  In
parallel sweeps (``workers=N``) the build/simulate work happens inside
pool workers, so only the parent-side phases (bounds, cache merge) are
observed -- per-phase attribution is a serial-sweep tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SweepTelemetry"]


@dataclass
class SweepTelemetry:
    """Wall-clock seconds and counters per sweep phase."""

    build_s: float = 0.0
    simulate_s: float = 0.0
    bound_s: float = 0.0
    eval_s: float = 0.0  # total evaluation-loop wall (cold + cached)
    candidates: int = 0
    built: int = 0
    simulated: int = 0
    build_cache_hits: int = 0
    references_recorded: int = 0
    incremental_hits: int = 0
    incremental_fallbacks: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def cache_s(self) -> float:
        """Evaluation-loop time not attributed to build or simulate.

        Cost-cache lookups, result assembly and pruning bookkeeping;
        clamped at zero (the phases are timed independently, so rounding
        can push the residual marginally negative).
        """
        residual = self.eval_s - self.build_s - self.simulate_s
        return residual if residual > 0.0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the perf harness embeds this)."""
        return {
            "build_s": self.build_s,
            "simulate_s": self.simulate_s,
            "bound_s": self.bound_s,
            "cache_s": self.cache_s,
            "eval_s": self.eval_s,
            "candidates": self.candidates,
            "built": self.built,
            "simulated": self.simulated,
            "build_cache_hits": self.build_cache_hits,
            "references_recorded": self.references_recorded,
            "incremental_hits": self.incremental_hits,
            "incremental_fallbacks": self.incremental_fallbacks,
        }

    def reset(self) -> None:
        self.build_s = self.simulate_s = self.bound_s = self.eval_s = 0.0
        self.candidates = self.built = self.simulated = 0
        self.build_cache_hits = self.references_recorded = 0
        self.incremental_hits = self.incremental_fallbacks = 0
        self.extra.clear()
