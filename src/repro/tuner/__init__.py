"""Auto-tuning planner subsystem.

Searches the registered schedule space (schedule x recomputation
strategy x micro-batch count x schedule-option grid) for the fastest
plan that fits a memory cap, using the discrete-event simulator as the
evaluator behind a memoizing cost cache.  Sweeps scale out
(``autotune(..., workers=N)`` evaluates cold candidates in a process
pool) and persist (:meth:`CostCache.save` / :meth:`CostCache.from_file`
round-trip every evaluation through a JSON store stamped with a
cost-model fingerprint, so editing the cost model invalidates stale
stores), and the whole subsystem is scriptable from the shell via
``python -m repro tune``.

>>> from repro.workloads import Workload
>>> from repro.tuner import autotune
>>> plans = autotune(Workload.paper("7B", "H20", 8, 65536), workers=4)
>>> plans[0].candidate.schedule, plans[0].iteration_time

:func:`tune_grid` adds the workload axis itself to the search: a
:class:`repro.workloads.WorkloadGrid` of ``seq_len x pipeline_size``
points under a fixed token budget is swept point by point (each at the
micro-batch count its budget allows) and ranked across the whole grid
-- the paper's Section 3.1 planning question as one call.

>>> from repro.workloads import WorkloadGrid
>>> from repro.tuner import tune_grid
>>> plans = tune_grid(WorkloadGrid(seq_lens=(32768, 65536),
...                                pipeline_sizes=(4, 8),
...                                budget_tokens=4 << 20))
"""

from repro.tuner.autotune import (
    Candidate,
    PlanResult,
    autotune,
    enumerate_candidates,
)
from repro.tuner.cache import (
    DEFAULT_CACHE,
    CacheStats,
    CostCache,
    costmodel_fingerprint,
)
from repro.tuner.grid import GridPlan, tune_grid
from repro.tuner.ircache import ScheduleIRCache
from repro.tuner.store import SqliteCostStore, detect_backend
from repro.tuner.telemetry import SweepTelemetry

__all__ = [
    "Candidate",
    "PlanResult",
    "autotune",
    "enumerate_candidates",
    "CostCache",
    "CacheStats",
    "DEFAULT_CACHE",
    "costmodel_fingerprint",
    "GridPlan",
    "tune_grid",
    "ScheduleIRCache",
    "SqliteCostStore",
    "SweepTelemetry",
    "detect_backend",
]
