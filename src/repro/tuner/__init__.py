"""Auto-tuning planner subsystem.

Searches the registered schedule space (schedule x recomputation
strategy x micro-batch count x schedule-option grid) for the fastest
plan that fits a memory cap, using the discrete-event simulator as the
evaluator behind a memoizing cost cache.  Sweeps scale out
(``autotune(..., workers=N)`` evaluates cold candidates in a process
pool) and persist (:meth:`CostCache.save` / :meth:`CostCache.from_file`
round-trip every evaluation through a JSON store), and the whole
subsystem is scriptable from the shell via ``python -m repro tune``.

>>> from repro.experiments import Workload
>>> from repro.tuner import autotune
>>> plans = autotune(Workload.paper("7B", "H20", 8, 65536), workers=4)
>>> plans[0].candidate.schedule, plans[0].iteration_time
"""

from repro.tuner.autotune import (
    Candidate,
    PlanResult,
    autotune,
    enumerate_candidates,
)
from repro.tuner.cache import DEFAULT_CACHE, CacheStats, CostCache

__all__ = [
    "Candidate",
    "PlanResult",
    "autotune",
    "enumerate_candidates",
    "CostCache",
    "CacheStats",
    "DEFAULT_CACHE",
]
