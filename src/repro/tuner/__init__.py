"""Auto-tuning planner subsystem.

Searches the registered schedule space (schedule x fold x recomputation
strategy x micro-batch count) for the fastest plan that fits a memory
cap, using the discrete-event simulator as the evaluator behind a
memoizing cost cache.

>>> from repro.experiments import Workload
>>> from repro.tuner import autotune
>>> plans = autotune(Workload.paper("7B", "H20", 8, 65536))
>>> plans[0].candidate.schedule, plans[0].iteration_time
"""

from repro.tuner.autotune import (
    Candidate,
    PlanResult,
    autotune,
    enumerate_candidates,
)
from repro.tuner.cache import DEFAULT_CACHE, CacheStats, CostCache

__all__ = [
    "Candidate",
    "PlanResult",
    "autotune",
    "enumerate_candidates",
    "CostCache",
    "CacheStats",
    "DEFAULT_CACHE",
]
