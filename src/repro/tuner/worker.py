"""Process-pool worker for parallel auto-tune sweeps.

:func:`evaluate_chunk` is the unit of work :func:`repro.tuner.autotune`
ships to a :class:`concurrent.futures.ProcessPoolExecutor`: it cold-
evaluates a chunk of candidates into a fresh per-worker
:class:`~repro.tuner.cache.CostCache` and returns that cache, which the
parent merges into the caller's cache on join.  Everything crossing the
process boundary -- the workload (plain dataclasses), the candidates
(frozen dataclasses) and the returned cache (dict of primitive-tuple
keys to primitive records) -- pickles cleanly, and candidate keys are
process-stable (:func:`repro.schedules.registry.workload_cache_key`),
so a key computed in a worker is the same key the parent looks up.

The module must stay importable without side effects: under the
``spawn`` start method each worker re-imports it (and lazily re-imports
the schedule registry's builders on first lookup).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.tuner.cache import CostCache

__all__ = ["evaluate_chunk"]


def evaluate_chunk(
    workload: Any,
    memory_cap_bytes: float,
    candidates: Sequence[Any],
    incremental: bool = True,
) -> CostCache:
    """Cold-evaluate ``candidates`` into a fresh per-worker cache.

    Returns the local :class:`CostCache` so the parent can
    :meth:`~CostCache.merge` it; its stats are the worker's own
    bookkeeping (all misses: the parent only ships keys it did not have).

    Each worker owns a private :class:`~repro.tuner.ircache.ScheduleIRCache`
    (built IR and simulation references do not pickle across the pool
    economically), so within a chunk every distinct IR builds once and
    sibling candidates re-simulate incrementally -- results are
    bit-identical to the serial sweep's either way.
    """
    # Imported here, not at module top: autotune imports this module, so
    # a top-level back-import would be circular.
    from repro.tuner.autotune import (
        _candidate_key,
        _cold_evaluate,
        _EvalContext,
        _gc_paused,
        _workload_key,
    )
    from repro.tuner.ircache import ScheduleIRCache

    local = CostCache()
    wkey = _workload_key(workload)
    cap = float(memory_cap_bytes)
    family_counts: dict[tuple, int] = {}
    for cand in candidates:
        fam = (wkey, cap, cand.schedule, cand.num_micro_batches, cand.options)
        family_counts[fam] = family_counts.get(fam, 0) + 1
    ctx = _EvalContext(
        workload,
        memory_cap_bytes,
        wkey=wkey,
        ir_cache=ScheduleIRCache(),
        incremental=incremental,
        family_counts=family_counts,
    )
    with _gc_paused():
        for cand in candidates:
            local.get_or_eval(
                _candidate_key(workload, cand, memory_cap_bytes, wkey),
                lambda c=cand: _cold_evaluate(workload, c, memory_cap_bytes, ctx),
            )
    return local
