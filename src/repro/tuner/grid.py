"""Workload-grid tuning: schedules x recompute x options x *workloads*.

:func:`repro.tuner.autotune` answers "which schedule wins on this
workload"; this module answers the planning question one level up
(paper Section 3.1, ROADMAP "tuner-aware token-budget planning"):
given a fixed token budget per iteration, *which sequence length and
pipeline size should the run use at all* -- and which schedule there.
:func:`tune_grid` sweeps a :class:`repro.workloads.WorkloadGrid` as a
second search axis: every grid point resolves to a workload whose
micro-batch count is the token budget divided by the sequence length,
and :func:`autotune` evaluates the full schedule grid at that point in
``fill_budget`` mode (the micro-batch count is determined by the
budget, not searched).

Reporting is total, in the same discipline as the candidate sweep:

- grid points that cannot run at all (budget below one micro batch)
  appear as infeasible :class:`GridPlan` rows with the point's reason;
- schedules whose micro-batch divisor exceeds a point's budget appear
  as infeasible rows with the divisor reason;
- everything else carries simulated metrics, ranked by tokens/s across
  *all* points, so the top row answers the planning question directly.

All points share one :class:`~repro.tuner.cache.CostCache` -- candidate
keys embed the workload identity, so a persisted store warms every
point it has seen across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.costmodel.memory import RecomputeStrategy
from repro.tuner.autotune import PlanResult, autotune
from repro.tuner.cache import DEFAULT_CACHE, CostCache
from repro.tuner.ircache import ScheduleIRCache
from repro.tuner.telemetry import SweepTelemetry
from repro.workloads import WorkloadGrid, WorkloadPoint

__all__ = ["GridPlan", "tune_grid"]


@dataclass(frozen=True)
class GridPlan:
    """One evaluated (workload point, candidate) cell of a grid sweep.

    ``plan`` is ``None`` exactly when the *point* itself could not run
    (its reason is then in ``reason``); otherwise it is the
    :class:`PlanResult` of one candidate at that point, and ``reason``
    mirrors the plan's own infeasibility reason.
    """

    point: WorkloadPoint
    plan: PlanResult | None
    reason: str | None

    @property
    def feasible(self) -> bool:
        return self.reason is None

    @property
    def tokens_per_s(self) -> float:
        return 0.0 if self.plan is None else self.plan.tokens_per_s

    @property
    def label(self) -> str:
        what = "-" if self.plan is None else self.plan.label
        return f"{self.point.label} :: {what}"


def tune_grid(
    grid: WorkloadGrid,
    memory_cap_bytes: float | None = None,
    *,
    schedules: Sequence[str] | None = None,
    recomputes: Sequence[RecomputeStrategy] | str | None = None,
    option_grids: Mapping[str, Mapping[str, Sequence[Any]]] | None = None,
    cache: CostCache | None = None,
    include_infeasible: bool = True,
    workers: int | None = None,
    prune: bool = True,
    ir_cache: ScheduleIRCache | None = None,
    incremental: bool = True,
    telemetry: SweepTelemetry | None = None,
) -> list[GridPlan]:
    """Search workloads x schedules for the fastest feasible plan.

    Parameters mirror :func:`repro.tuner.autotune` (they are forwarded
    to the per-point sweep); ``memory_cap_bytes`` defaults to the
    grid's GPU HBM size.  Returns feasible :class:`GridPlan` rows
    ranked by simulated tokens/s across the whole grid (ties broken by
    lower peak memory), followed -- unless ``include_infeasible`` is
    false -- by every infeasible row: unrunnable grid points first (in
    grid order), then per-point infeasible candidates (in sweep order).

    All points share one :class:`~repro.tuner.ircache.ScheduleIRCache`
    (created here when ``ir_cache`` is ``None``): IR keys embed the
    workload identity, so distinct points never alias, while re-swept
    points reuse their builds outright.  ``telemetry`` likewise
    aggregates across every point of the grid.
    """
    cache = DEFAULT_CACHE if cache is None else cache
    ir_cache = ScheduleIRCache() if ir_cache is None else ir_cache
    feasible: list[GridPlan] = []
    dead_points: list[GridPlan] = []
    infeasible: list[GridPlan] = []
    for point in grid.iter_points():
        if not point.feasible:
            dead_points.append(GridPlan(point, None, point.reason))
            continue
        plans = autotune(
            point.workload(),
            memory_cap_bytes,
            schedules=schedules,
            recomputes=recomputes,
            option_grids=option_grids,
            fill_budget=True,
            cache=cache,
            include_infeasible=True,
            workers=workers,
            prune=prune,
            ir_cache=ir_cache,
            incremental=incremental,
            telemetry=telemetry,
        )
        for plan in plans:
            row = GridPlan(point, plan, plan.reason)
            (feasible if plan.feasible else infeasible).append(row)
    feasible.sort(
        key=lambda r: (
            -r.tokens_per_s,
            r.plan.peak_memory_bytes if r.plan else 0.0,
        )
    )
    if not include_infeasible:
        return feasible
    return feasible + dead_points + infeasible
