"""Sqlite-backed cost-cache store: lazy, indexed, concurrent-writer safe.

The JSON store (:meth:`repro.tuner.cache.CostCache.save`) is eager: every
entry is parsed into memory on load and the whole store is rewritten on
save.  That is fine for a few hundred sweep records and wrong for the
planner service, where one long-running process answers plan queries
from a cache that grows past 100k entries while background sweeps and
out-of-process tuners keep appending.  :class:`SqliteCostStore` is the
serving-side backend:

- **Lazy, indexed lookup** -- entries stay on disk; a cache miss costs
  one point query against the primary-key index, not a full-store parse.
- **Concurrent writers** -- WAL journal mode plus a generous busy
  timeout let several processes (CLI sweeps, service workers, the
  migrate verb) write the same store without corrupting it; records are
  deterministic in their key, so last-writer-wins is conflict-free.
- **Fingerprint stamping** -- like the JSON store, a ``meta`` table
  carries the cost-model source fingerprint
  (:func:`repro.tuner.cache.costmodel_fingerprint`); opening a store
  stamped by different code warns and clears it instead of serving
  records a cost-model edit invalidated.

Backend selection is by path suffix (:func:`detect_backend`):
``.sqlite`` / ``.sqlite3`` / ``.db`` mean sqlite, anything else means
the JSON store; an explicit ``backend=`` (the CLI's ``--backend``)
overrides the suffix.  :meth:`CostCache.open
<repro.tuner.cache.CostCache.open>` is the front door that wires either
backend into a cache.

Keys are the tuner's canonical nested primitive tuples
(:func:`repro.schedules.registry.workload_cache_key` products); they
serialise to canonical JSON text for the ``TEXT PRIMARY KEY`` column and
deserialise through the same list->tuple freeze the JSON store uses, so
the two backends round-trip identical key/record pairs.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import warnings
import weakref
from typing import Any, Hashable, Iterator

from repro.tuner.cache import _freeze, costmodel_fingerprint

__all__ = [
    "BACKENDS",
    "SQLITE_SUFFIXES",
    "SqliteCostStore",
    "detect_backend",
]

#: Path suffixes that select the sqlite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Cost-cache store backends, in CLI ``--backend`` choice order.
BACKENDS = ("json", "sqlite")

#: ``meta`` table format marker; bump the version on incompatible changes.
_FORMAT = "repro-costcache-sqlite"
_VERSION = 1

#: First bytes of every sqlite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def detect_backend(path: str | os.PathLike, backend: str | None = None) -> str:
    """Resolve the store backend for ``path``: explicit choice or suffix.

    ``backend`` (when given) must name a member of :data:`BACKENDS` and
    wins over the suffix -- the CLI's ``--backend`` flag.  Otherwise a
    :data:`SQLITE_SUFFIXES` suffix selects sqlite and anything else the
    JSON store, so ``--cache sweep.sqlite`` alone switches backends.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown cost cache backend {backend!r}; "
                f"expected one of {list(BACKENDS)}"
            )
        return backend
    ext = os.path.splitext(os.fspath(path))[1].lower()
    return "sqlite" if ext in SQLITE_SUFFIXES else "json"


def is_sqlite_file(path: str | os.PathLike) -> bool:
    """Whether the file at ``path`` starts with the sqlite magic bytes."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def _encode_key(key: Hashable) -> str:
    """Canonical JSON text of a nested primitive-tuple candidate key."""
    return json.dumps(key, separators=(",", ":"))


def _decode_key(text: str) -> Hashable:
    return _freeze(json.loads(text))


class SqliteCostStore:
    """One cost-cache store backed by a sqlite database file.

    Connections are per-thread (sharing one sqlite3 connection between
    threads would serialize and interleave cursors), created lazily and
    configured for WAL + a 30 s busy timeout, so the store object itself
    can be shared by the threaded planner service.  Every write commits
    immediately -- a crash never loses more than the in-flight record,
    and concurrent processes see each other's entries as soon as they
    land.

    Every connection is also registered in ``_all_conns`` (tagged with
    a weak reference to its owning thread) so :meth:`close` can close
    *all* of them from whatever thread shutdown runs on -- per-thread
    connections that only died with their thread's GC leaked one fd per
    retired HTTP handler thread under long-running ``repro serve``.
    Connections whose owner thread has exited are pruned (and closed)
    whenever a new connection registers, bounding the registry to the
    live-thread count.  A generation counter makes close-then-reuse
    safe: threads whose cached connection predates the last close()
    reconnect lazily instead of using a closed handle.
    """

    def __init__(self, path: str | os.PathLike, create: bool = True) -> None:
        path = os.fspath(path)
        if not create and not os.path.exists(path):
            raise FileNotFoundError(
                f"sqlite cost cache store {path!r} does not exist"
            )
        parent = os.path.dirname(path)
        if create and parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        #: (owner-thread weakref, connection) pairs, one per live thread.
        self._all_conns: list = []  # guarded-by: _conns_lock
        self._gen = 0  # guarded-by: _conns_lock
        self._init_schema()

    # -- connections -----------------------------------------------------

    @property
    def _conn(self) -> sqlite3.Connection:
        with self._conns_lock:
            gen = self._gen
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "gen", None) == gen:
            return conn
        # check_same_thread=False lets close() (and the dead-owner prune
        # below) close this connection from another thread; this thread
        # still never *uses* another thread's connection.  The pragmas
        # run before registration so no lock is held across sqlite I/O.
        conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        owner = weakref.ref(threading.current_thread())
        with self._conns_lock:
            gen = self._gen
            live, dead = [], []
            for ref, registered in self._all_conns:
                thread = ref()
                if thread is None or not thread.is_alive():
                    dead.append(registered)
                else:
                    live.append((ref, registered))
            live.append((owner, conn))
            self._all_conns = live
        self._local.conn = conn
        self._local.gen = gen
        for stale in dead:  # close outside the lock; owners are gone
            try:
                stale.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        return conn

    def close(self) -> None:
        """Close every connection the store has open, from any thread.

        Threads still using the store reconnect lazily (their cached
        connection's generation is stale), so a racing in-flight request
        degrades to a reconnect instead of an error on a closed handle.
        """
        with self._conns_lock:
            conns = [conn for _, conn in self._all_conns]
            self._all_conns = []
            self._gen += 1
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    # -- schema / stamping ------------------------------------------------

    def _init_schema(self) -> None:
        try:
            conn = self._conn
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if tables and "meta" not in tables:
                # A valid sqlite file, but somebody else's schema --
                # refuse to graft our tables onto it.
                raise ValueError(
                    f"{self.path!r} is a sqlite database but not a cost "
                    f"cache store (tables: {sorted(tables)})"
                )
            with conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries "
                    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
        except sqlite3.DatabaseError as err:
            raise ValueError(
                f"{self.path!r} is not a sqlite cost cache store ({err}); "
                "a JSON store keeps the .json suffix (or pass "
                "backend='json')"
            ) from None
        meta = dict(conn.execute("SELECT key, value FROM meta"))
        current = costmodel_fingerprint()
        if not meta:
            with conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("format", _FORMAT),
                        ("version", str(_VERSION)),
                        ("costmodel", current),
                    ],
                )
            return
        if meta.get("format") != _FORMAT:
            raise ValueError(
                f"{self.path!r} is not a sqlite cost cache store "
                f"(format {meta.get('format')!r})"
            )
        if meta.get("version") != str(_VERSION):
            raise ValueError(
                f"{self.path!r}: unsupported sqlite cost cache version "
                f"{meta.get('version')!r} (expected {_VERSION})"
            )
        stamped = meta.get("costmodel")
        if stamped != current:
            # Same contract as the JSON store: records computed by a
            # different cost model are stale.  Clearing + restamping (vs
            # the JSON load's discard) keeps the file usable in place --
            # every concurrent writer runs the same code, so they agree
            # on the new stamp.
            warnings.warn(
                f"{self.path!r}: sqlite cost cache stamped with cost-model "
                f"fingerprint {stamped!r} but the running code is "
                f"{current!r}; clearing the store (its records were "
                "computed by a different cost model)",
                stacklevel=3,
            )
            with conn:
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("costmodel", current),
                )

    @property
    def fingerprint(self) -> str:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'costmodel'"
        ).fetchone()
        return row[0] if row else ""

    # -- entries ----------------------------------------------------------

    def get(self, key: Hashable) -> Any | None:
        """The record stored under ``key``, or None (one indexed query)."""
        row = self._conn.execute(
            "SELECT value FROM entries WHERE key = ?", (_encode_key(key),)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: Hashable, record: Any) -> None:
        """Insert or replace one record (committed immediately)."""
        with self._conn as conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries (key, value) VALUES (?, ?)",
                (_encode_key(key), json.dumps(record, separators=(",", ":"))),
            )

    def put_many(self, entries: Iterator[tuple[Hashable, Any]]) -> int:
        """Insert or replace a batch in one transaction; returns the count."""
        rows = [
            (_encode_key(key), json.dumps(record, separators=(",", ":")))
            for key, record in entries
        ]
        if rows:
            with self._conn as conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO entries (key, value) "
                    "VALUES (?, ?)",
                    rows,
                )
        return len(rows)

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate every ``(key, record)`` pair in stable key-text order."""
        for key_text, value_text in self._conn.execute(
            "SELECT key, value FROM entries ORDER BY key"
        ):
            yield _decode_key(key_text), json.loads(value_text)

    def __contains__(self, key: Hashable) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM entries WHERE key = ?", (_encode_key(key),)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        )
