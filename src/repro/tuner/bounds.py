"""Vectorised admissible throughput bounds for candidate pruning.

The auto-tuner ranks feasible plans by simulated tokens/s, so a
candidate can be skipped without simulation when an *upper* bound on its
throughput is already below the best simulated value.  This module
prices a whole candidate grid in one numpy pass: the workload's layer
times come from :func:`repro.costmodel.timing.batch_layer_times` (one
batched roofline evaluation) and each candidate's makespan lower bound
from :func:`repro.analysis.bubble.makespan_lower_bound` (Table 2
warm-up ramps + work conservation + the single-micro-batch dependency
chain), evaluated once per unique (schedule, options) configuration and
broadcast over the micro-batch axis with numpy.

numpy is optional: without it the same bounds are computed through the
scalar :class:`~repro.costmodel.timing.TimingModel` and plain Python
lists -- the only consumer (:func:`repro.tuner.autotune`) indexes and
sorts the result, so a list is drop-in and a minimal install still
tunes with pruning intact.

Bounds are *admissible*: ``upper_bound >= simulated tokens/s`` for every
candidate, so best-first pruning in :func:`repro.tuner.autotune` never
discards the optimum (see ``tests/analysis/test_bounds.py`` and
``tests/tuner/test_prune.py``).  Workloads that cannot be priced (duck
types without a model/cluster, exotic cost providers) return ``None``,
which disables pruning rather than guessing.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.analysis.bubble import bubble_lower_bound, recompute_time_lower_bound

__all__ = ["throughput_upper_bounds"]


def _spec_options(schedule: str) -> dict[str, Any]:
    # Registered defaults fill option names the canonicalised candidate
    # tuple dropped; unknown schedules fall back to the candidate's own
    # options (the bound dispatch has safe defaults for missing names).
    from repro.schedules.registry import get_schedule

    try:
        return dict(get_schedule(schedule).options)
    except KeyError:
        return {}


def throughput_upper_bounds(
    workload: Any, candidates: Sequence[Any]
) -> Optional["object"]:
    """Upper-bound tokens/s for every candidate, or ``None`` if unpriceable.

    Returns a float sequence aligned with ``candidates`` (a float64
    array, or a plain list on a numpy-free install).  Each entry is
    ``tokens(candidate) / makespan_lower_bound(candidate)`` -- since the
    bound never exceeds the simulated makespan, the ratio never falls
    below the simulated throughput.
    """
    try:
        import numpy as np
    except ImportError:
        np = None  # scalar fallback below

    if not candidates:
        return np.zeros(0) if np is not None else []
    try:
        gpu = workload.cluster.node.gpu
        sp = int(workload.cluster.sequence_parallel_size)
        model = workload.model
        num_layers = int(model.num_layers)
        p = int(workload.p)
        b = int(workload.micro_batch)
        s = int(workload.seq_len)
        # One roofline evaluation prices the workload point; every
        # candidate shares its (b, s) shape.  Batched and scalar paths
        # are arithmetic-identical (tests/costmodel/test_batch_timing).
        if np is not None:
            from repro.costmodel.timing import batch_layer_times

            layer = batch_layer_times(gpu, model, [b], [s], sp=sp).scalar(0)
        else:
            from repro.costmodel.timing import TimingModel

            layer = TimingModel(gpu, model, b, s, sp=sp).layer_times()
    except (AttributeError, TypeError, ValueError):
        return None

    work_per_mb = num_layers * (layer.fwd + layer.bwd) / p
    chain = num_layers * (
        layer.fwd + layer.pre.bwd_b + layer.attn.bwd_b + layer.post.bwd_b
    )
    tokens_per_mb = float(b) * s

    # Bubble terms depend only on (schedule, options) and recompute
    # terms only on the strategy; evaluate each unique configuration
    # once and broadcast over the micro-batch axis.
    bubble_memo: dict[tuple[str, tuple], float] = {}
    rc_memo: dict[Any, float] = {}
    bubbles = [0.0] * len(candidates)
    rc = [0.0] * len(candidates)
    m = [0.0] * len(candidates)
    for i, cand in enumerate(candidates):
        m[i] = float(cand.num_micro_batches)
        key = (cand.schedule, cand.options)
        bub = bubble_memo.get(key)
        if bub is None:
            opts = _spec_options(cand.schedule)
            opts.update(dict(cand.options))
            bub = bubble_lower_bound(cand.schedule, layer, num_layers, p, opts)
            bubble_memo[key] = bub
        bubbles[i] = bub
        rc_i = rc_memo.get(cand.recompute)
        if rc_i is None:
            rc_i = rc_memo[cand.recompute] = recompute_time_lower_bound(
                layer, cand.recompute
            )
        rc[i] = rc_i
    # Every layer's backward re-runs the strategy's recompute forward on
    # the same serial engine -- per micro batch (work term) and on the
    # single-micro-batch critical path (chain term) alike.
    if np is not None:
        m_arr = np.asarray(m)
        lower = np.maximum(
            m_arr * (work_per_mb + num_layers * np.asarray(rc) / p)
            + np.asarray(bubbles),
            chain + num_layers * np.asarray(rc),
        )
        with np.errstate(divide="ignore"):
            return np.where(lower > 0.0, m_arr * tokens_per_mb / lower, np.inf)
    out = []
    for mi, bub_i, rc_i in zip(m, bubbles, rc):
        lower = max(
            mi * (work_per_mb + num_layers * rc_i / p) + bub_i,
            chain + num_layers * rc_i,
        )
        out.append(mi * tokens_per_mb / lower if lower > 0.0 else float("inf"))
    return out
