"""Memoizing cost cache for auto-tuner candidate evaluations.

Building and simulating a schedule is deterministic in the candidate
tuple (workload shape x schedule x recompute strategy x micro-batch
count x options x memory cap), so repeated sweeps -- the long-context
planner re-ranking configurations, interactive what-if loops, nested
tuner calls -- can reuse earlier evaluations instead of re-running the
discrete-event simulator.

The cache is a plain dict keyed on that tuple; entries are the raw
evaluation records (simulated metrics or the build-failure reason), so a
hit reproduces the cold result exactly.  Two extensions make it a
subsystem rather than a dict:

- **Persistence** (:meth:`CostCache.save` / :meth:`CostCache.load` /
  :meth:`CostCache.open` / :meth:`CostCache.from_file`): the cache
  persists to one of two backends, selected by path suffix or an
  explicit ``backend=`` (:func:`repro.tuner.store.detect_backend`) --
  an eagerly-loaded JSON file, or a lazily-queried sqlite store
  (:class:`repro.tuner.store.SqliteCostStore`: indexed lookup, WAL-mode
  concurrent writers, 100k+ entries) that serves the planner service.
  Candidate keys are stable nested tuples of primitives (see
  :func:`repro.schedules.registry.workload_cache_key`), which round-trip
  through JSON lists losslessly on either backend.  Stores are stamped
  with a cost-model source fingerprint (:func:`costmodel_fingerprint`);
  loading a store written by a different cost model warns and discards
  it instead of serving stale records.
- **Merging** (:meth:`CostCache.merge`): adopt another cache's entries,
  which is how :func:`repro.tuner.autotune` folds its process-pool
  workers' per-worker caches back into the caller's cache on join.

:class:`CacheStats` distinguishes *memory* hits (entries evaluated or
merged in this process) from *disk* hits (entries loaded from a
persisted store), so a sweep can assert "zero cold evaluations" after a
reload.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # repro.tuner.store imports this module; avoid the cycle
    from repro.tuner.store import SqliteCostStore

__all__ = ["CacheStats", "CostCache", "DEFAULT_CACHE", "costmodel_fingerprint"]

#: On-disk format marker; bump the version on incompatible changes.
_FORMAT = "repro-costcache"
_VERSION = 1

_fingerprint: str | None = None


def costmodel_fingerprint() -> str:
    """Content hash of the cost-model source the cached records depend on.

    Candidate keys capture the *workload* exactly, but a cached record
    also bakes in the code that computed it: the analytic cost models
    (:mod:`repro.costmodel`), the schedule builders and cost providers
    (:mod:`repro.schedules`, :mod:`repro.core`), the hardware and
    network models (:mod:`repro.cluster`, :mod:`repro.comm`), the model
    presets (:mod:`repro.model`) and the discrete-event simulator
    (:mod:`repro.sim`).  Persisted stores are stamped with this
    fingerprint so that editing any of those packages invalidates old
    stores -- a changed cost model triggers re-evaluation instead of
    silently serving stale disk hits (ROADMAP "cross-run cache
    invalidation").

    The hash is over the source files' bytes, so it is identical across
    processes and hosts running the same code, and memoized per process
    (the sources cannot change under a running interpreter in a way the
    interpreter would see anyway).
    """
    global _fingerprint
    if _fingerprint is not None:
        return _fingerprint
    # Every package whose code feeds a candidate evaluation -- including
    # this one (the evaluation/record logic lives in repro.tuner): an
    # edit anywhere in build-or-simulate must flip the stamp, or a
    # persisted store would keep serving records the edit invalidated.
    import repro.cluster
    import repro.comm
    import repro.core
    import repro.costmodel
    import repro.model
    import repro.schedules
    import repro.sim
    import repro.tuner

    packages = (
        repro.cluster,
        repro.comm,
        repro.core,
        repro.costmodel,
        repro.model,
        repro.schedules,
        repro.sim,
        repro.tuner,
    )
    digest = hashlib.sha256()
    for pkg in packages:
        pkg_root = os.path.dirname(pkg.__file__)
        for root, dirs, files in os.walk(pkg_root):
            dirs.sort()  # deterministic walk order across filesystems
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                rel = os.path.relpath(path, pkg_root)
                digest.update(f"{pkg.__name__}/{rel}".encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
    _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CostCache`.

    ``hits`` counts lookups served from entries created in-process
    (evaluated, adopted or merged); ``disk_hits`` counts lookups served
    from entries loaded off a persisted store.  ``misses`` counts cold
    evaluations.  ``pruned`` counts candidates the auto-tuner's
    admissible lower bound skipped without simulating (they never touch
    the cache, so they appear in no other counter).
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    pruned: int = 0

    @property
    def total_hits(self) -> int:
        return self.hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.total_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.total_hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        disk = f" ({self.disk_hits} from disk)" if self.disk_hits else ""
        pruned = f" / {self.pruned} pruned" if self.pruned else ""
        return f"{self.total_hits} hits{disk} / {self.misses} misses{pruned}"


def _freeze(value: Any) -> Any:
    """Recursively turn JSON lists back into the tuples keys are made of."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class CostCache:
    """Dict-backed memoization of candidate evaluations.

    With a :class:`~repro.tuner.store.SqliteCostStore` attached
    (:meth:`open` / :meth:`attach_store`), the dict becomes a hot layer
    over the lazy on-disk store: lookups fall through to one indexed
    sqlite query, fetched entries count as disk hits, and cold
    evaluations write through so concurrent processes sharing the store
    see them immediately.

    The cache is thread-safe: the threaded planner service shares one
    instance between request handlers and background sweeps.  ``_lock``
    guards the in-memory layer only and is never held across store I/O
    or candidate evaluation -- a lookup snapshots what it needs, does
    the slow work unlocked, and re-acquires to publish.  Two threads
    racing the same cold key may therefore both evaluate it; the
    evaluation is deterministic in the key, so both arrive at the same
    record and last-write-wins is harmless (the service's ``_eval_lock``
    serializes sweeps anyway).
    """

    _data: dict[Hashable, Any] = field(default_factory=dict)  # guarded-by: _lock
    stats: CacheStats = field(default_factory=CacheStats)
    #: Keys whose entries came off a persisted store (for stats only).
    _disk_keys: set[Hashable] = field(default_factory=set)  # guarded-by: _lock
    #: Lazy on-disk backend; None for a purely in-memory (or JSON) cache.
    store: "SqliteCostStore | None" = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self) -> dict[str, Any]:
        # Worker processes return their local cache across the pool;
        # locks do not pickle, so the receiving side gets a fresh one.
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def get_or_eval(self, key: Hashable, evaluate: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, evaluating on first use."""
        with self._lock:
            if key in self._data:
                value = self._data[key]
                if key in self._disk_keys:
                    self.stats.disk_hits += 1
                else:
                    self.stats.hits += 1
                return value
            store = self.store
        if store is not None:
            value = store.get(key)
            if value is not None:
                with self._lock:
                    self._data[key] = value
                    self._disk_keys.add(key)
                    self.stats.disk_hits += 1
                return value
        value = evaluate()
        with self._lock:
            self.stats.misses += 1
            self._data[key] = value
        if store is not None:
            # Write-through: a concurrent process sharing the store
            # (another sweep, the planner service) can reuse this
            # evaluation without waiting for an explicit save().
            store.put(key, value)
        return value

    def peek(self, key: Hashable) -> Any:
        """Return the cached value without touching the hit counters."""
        with self._lock:
            if key in self._data:
                return self._data[key]
            store = self.store
        if store is not None:
            value = store.get(key)
            if value is not None:
                with self._lock:
                    self._data[key] = value
                    self._disk_keys.add(key)
                return value
        raise KeyError(key)

    def adopt(self, key: Hashable, value: Any) -> None:
        """Insert an externally-evaluated entry (no stats recorded)."""
        with self._lock:
            self._data[key] = value

    def _snapshot(self) -> tuple[dict[Hashable, Any], set[Hashable]]:
        """Consistent copy of the in-memory layer and its disk-key set."""
        with self._lock:
            return dict(self._data), set(self._disk_keys)

    def merge(self, other: "CostCache") -> int:
        """Adopt ``other``'s entries this cache lacks; returns the count.

        Existing entries win (both caches evaluated the same
        deterministic function, so the records agree; keeping ours
        preserves this cache's disk-origin bookkeeping).  Disk-origin
        bookkeeping *carries over* for adopted entries: an entry that
        came off a persisted store in ``other`` (e.g. a per-worker cache
        that pre-loaded a shard) keeps counting as a disk hit here, so
        the memory/disk stats split stays honest across merges.
        """
        data, disk_keys = other._snapshot()
        added = 0
        with self._lock:
            for key, value in data.items():
                if key not in self._data:
                    self._data[key] = value
                    if key in disk_keys:
                        self._disk_keys.add(key)
                    added += 1
        return added

    def entries(self) -> list[tuple[Hashable, Any]]:
        """``(key, record)`` pairs as a point-in-time snapshot list."""
        with self._lock:
            return list(self._data.items())

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike, backend: str | None = None) -> int:
        """Persist every in-memory entry to ``path``; returns a count.

        The backend follows the path suffix unless ``backend`` says
        otherwise (:func:`repro.tuner.store.detect_backend`).  On the
        sqlite backend the entries are upserted into the store (created
        if missing) in one transaction and the return value is the
        store's total entry count; on the JSON backend the whole store
        is rewritten and the return value is this cache's entry count.
        Missing parent directories are created either way, so saving to
        ``new/dir/store.json`` works instead of dying inside
        ``mkstemp`` with a raw :class:`FileNotFoundError`.

        The JSON write goes through a uniquely-named temp file +
        rename, so a crash mid-save never truncates an existing store
        and concurrent writers to the same path cannot interleave -- the
        last complete save wins atomically.  The temp file is created
        with mode ``0o666`` and the kernel applies the process umask to
        it like any ordinary file; no ``os.umask`` probe, which would
        mutate process-global state and race under threads (exactly the
        threaded planner-service case).
        """
        path = os.fspath(path)
        from repro.tuner.store import SqliteCostStore, detect_backend

        items = self.entries()  # snapshot; the file/sqlite I/O below runs unlocked
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if detect_backend(path, backend) == "sqlite":
            if self.store is not None and os.path.abspath(
                self.store.path
            ) == os.path.abspath(path):
                store = self.store
            else:
                store = SqliteCostStore(path)
            store.put_many(iter(items))
            return len(store)
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "costmodel": costmodel_fingerprint(),
            "entries": [[key, value] for key, value in items],
        }
        base = os.path.basename(path)
        for _ in range(64):
            tmp = os.path.join(
                parent or ".", f"{base}.{secrets.token_hex(8)}.tmp"
            )
            try:
                fd = os.open(
                    tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666
                )
            except FileExistsError:  # pragma: no cover - 64-bit collision
                continue
            break
        else:  # pragma: no cover - practically unreachable
            raise RuntimeError(f"could not create a temp file next to {path!r}")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        return len(items)

    def load(self, path: str | os.PathLike, backend: str | None = None) -> int:
        """Make the entries persisted at ``path`` available; returns a count.

        On the sqlite backend (path suffix or explicit ``backend``) the
        store is *attached*, not read: lookups fall through to indexed
        queries lazily, and the return value is the store's entry count.
        On the JSON backend every entry is merged into memory and the
        count of newly-added entries is returned.

        Entries already present in memory are kept (and stay counted as
        memory hits); loaded/attached ones count as disk hits when
        looked up.  Raises :class:`ValueError` on a file that is not a
        cost cache store, so a typo'd path fails loudly instead of
        silently starting cold, and :class:`FileNotFoundError` when
        there is no file at all.

        A store whose cost-model fingerprint (see
        :func:`costmodel_fingerprint`) does not match the running code
        -- including stores from before stamping existed -- is *stale*:
        its records were computed by a different cost model, so serving
        them would silently skew every sweep.  Loading one warns and
        discards it (returns 0); the next :meth:`save` re-stamps the
        path with freshly-evaluated entries.
        """
        from repro.tuner.store import (
            SqliteCostStore,
            detect_backend,
            is_sqlite_file,
        )

        if detect_backend(path, backend) == "sqlite":
            self.store = SqliteCostStore(path, create=False)
            return len(self.store)
        if is_sqlite_file(path):
            raise ValueError(
                f"{os.fspath(path)!r} is a sqlite cost cache store; load "
                "it with backend='sqlite' (or give it a .sqlite suffix)"
            )
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
        ):
            raise ValueError(f"{os.fspath(path)!r} is not a cost cache store")
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"{os.fspath(path)!r}: unsupported cost cache version "
                f"{payload.get('version')!r} (expected {_VERSION})"
            )
        stamped = payload.get("costmodel")
        current = costmodel_fingerprint()
        if stamped != current:
            warnings.warn(
                f"{os.fspath(path)!r}: cost cache stamped with cost-model "
                f"fingerprint {stamped!r} but the running code is {current!r};"
                " discarding the store (its records were computed by a"
                " different cost model and will be re-evaluated)",
                stacklevel=2,
            )
            return 0
        added = 0
        with self._lock:
            for raw_key, value in payload["entries"]:
                key = _freeze(raw_key)
                if key not in self._data:
                    self._data[key] = value
                    self._disk_keys.add(key)
                    added += 1
        return added

    @classmethod
    def from_file(cls, path: str | os.PathLike, backend: str | None = None) -> "CostCache":
        """A fresh cache pre-populated from a persisted store."""
        cache = cls()
        cache.load(path, backend=backend)
        return cache

    @classmethod
    def open(cls, path: str | os.PathLike, backend: str | None = None) -> "CostCache":
        """A cache bound to the store at ``path``, created when missing.

        The create-if-missing front door the CLI and the planner service
        use: a sqlite path attaches a (possibly fresh)
        :class:`~repro.tuner.store.SqliteCostStore` for lazy lookup and
        write-through; a JSON path loads the file when it exists and
        otherwise starts empty, to be written by the next :meth:`save`.
        """
        from repro.tuner.store import SqliteCostStore, detect_backend

        cache = cls()
        if detect_backend(path, backend) == "sqlite":
            cache.store = SqliteCostStore(path, create=True)
        elif os.path.exists(path):
            cache.load(path, backend="json")
        return cache

    def attach_store(self, store: "SqliteCostStore") -> None:
        """Serve lookup misses from ``store`` and write evaluations through."""
        self.store = store

    def close(self) -> None:
        """Close an attached store's connections (no-op without one).

        The in-memory layer stays usable; the store reconnects lazily if
        the cache is used again, so close() is safe to call from service
        shutdown even with stray in-flight requests.
        """
        store = self.store
        if store is not None:
            store.close()

    def clear(self) -> None:
        """Drop the in-memory layer (an attached store is left untouched)."""
        with self._lock:
            self._data.clear()
            self._disk_keys.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        """Distinct entries reachable through this cache (memory + store)."""
        # Write-through puts evaluated entries in the store and fetched
        # entries are disk keys by construction, so only adopted/merged
        # entries can be memory-only; count those without double counting.
        # The snapshot keeps the store queries (sqlite I/O) outside _lock.
        with self._lock:
            store = self.store
            if store is None:
                return len(self._data)
            memory_only = [
                key for key in self._data if key not in self._disk_keys
            ]
        extra = sum(1 for key in memory_only if key not in store)
        return len(store) + extra

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            if key in self._data:
                return True
            store = self.store
        return store is not None and key in store


#: Shared process-wide cache used when callers do not supply their own.
DEFAULT_CACHE = CostCache()
