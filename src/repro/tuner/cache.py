"""Memoizing cost cache for auto-tuner candidate evaluations.

Building and simulating a schedule is deterministic in the candidate
tuple (workload shape x schedule x recompute strategy x micro-batch
count x options x memory cap), so repeated sweeps -- the long-context
planner re-ranking configurations, interactive what-if loops, nested
tuner calls -- can reuse earlier evaluations instead of re-running the
discrete-event simulator.

The cache is a plain dict keyed on that tuple; entries are the raw
evaluation records (simulated metrics or the build-failure reason), so a
hit reproduces the cold result exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "CostCache", "DEFAULT_CACHE"]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CostCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses"


@dataclass
class CostCache:
    """Dict-backed memoization of candidate evaluations."""

    _data: dict[Hashable, Any] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def get_or_eval(self, key: Hashable, evaluate: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, evaluating on first use."""
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            value = self._data[key] = evaluate()
            return value
        self.stats.hits += 1
        return value

    def clear(self) -> None:
        self._data.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


#: Shared process-wide cache used when callers do not supply their own.
DEFAULT_CACHE = CostCache()
