"""Structural build cache for schedule IR and simulation references.

Building a candidate's IR (task-graph planning + instruction emission)
dominates the auto-tuner's cold path, and the *same* IR is rebuilt
whenever sweeps revisit a configuration: a workload grid re-sweeping a
point, a warm re-run after a pruning-policy change, parallel workers
re-deriving what a neighbour already built.  A :class:`ScheduleIRCache`
memoizes built :class:`~repro.schedules.ir.Schedule` objects under their
full structural identity so each distinct IR is built exactly once per
cache lifetime.

The cache key is the complete set of inputs the build is a function of::

    (workload_key, memory_cap_bytes, schedule, recompute, m, options)

``recompute`` *must* be part of the key: helix plans are not
recompute-invariant (durations feed the list scheduler's readiness
order), so two strategies with identical structure can still emit
different instruction streams.  Cross-recompute reuse happens one level
down instead, at the simulation-timeline level -- the cache also stores
one :class:`~repro.sim.incremental.SimReference` per *family* (same key
minus the recompute strategy) so siblings can resume the recorded
timeline prefix (:func:`~repro.sim.incremental.resimulate`).

Cached schedules are shared, not copied: treat them as immutable (the
tuner and simulator only read them).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.schedules.ir import Schedule
from repro.sim.incremental import SimReference

__all__ = ["ScheduleIRCache"]


class ScheduleIRCache:
    """LRU cache of built schedule IR plus per-family sim references.

    ``max_schedules`` / ``max_references`` bound memory: a built helix
    schedule holds a few thousand instruction objects, a recorded
    reference additionally holds its checkpoints, so references get the
    smaller default budget.
    """

    def __init__(self, max_schedules: int = 128, max_references: int = 32) -> None:
        if max_schedules < 1 or max_references < 1:
            raise ValueError("cache bounds must be >= 1")
        self.max_schedules = max_schedules
        self.max_references = max_references
        self._schedules: OrderedDict[tuple, Schedule] = OrderedDict()
        self._references: OrderedDict[tuple, SimReference] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.reference_hits = 0
        self.reference_misses = 0

    # -- built IR --------------------------------------------------------

    def get(self, key: tuple) -> Schedule | None:
        sched = self._schedules.get(key)
        if sched is None:
            self.misses += 1
            return None
        self._schedules.move_to_end(key)
        self.hits += 1
        return sched

    def put(self, key: tuple, schedule: Schedule) -> None:
        store = self._schedules
        store[key] = schedule
        store.move_to_end(key)
        while len(store) > self.max_schedules:
            store.popitem(last=False)

    # -- per-family simulation references --------------------------------

    def get_reference(self, family: tuple) -> SimReference | None:
        ref = self._references.get(family)
        if ref is None:
            self.reference_misses += 1
            return None
        self._references.move_to_end(family)
        self.reference_hits += 1
        return ref

    def put_reference(self, family: tuple, reference: SimReference) -> None:
        store = self._references
        store[family] = reference
        store.move_to_end(family)
        while len(store) > self.max_references:
            store.popitem(last=False)

    # -- bookkeeping -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._schedules)

    def clear(self) -> None:
        self._schedules.clear()
        self._references.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleIRCache(schedules={len(self._schedules)}, "
            f"references={len(self._references)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
