"""Communication volumes and NCCL-style cost models."""

from repro.comm.cost import CommModel
from repro.comm.volumes import BoundaryVolumes, boundary_volumes

__all__ = ["CommModel", "BoundaryVolumes", "boundary_volumes"]
