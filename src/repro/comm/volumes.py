"""Pipeline-boundary communication volumes (paper Section 4.2).

Element counts (multiply by 2 bytes for fp16, divide by the
sequence-parallel size for the per-GPU shard) for every kind of boundary
that appears in the schedules:

* layer-wise pipelines move one activation (``bsh``) per stage boundary;
* HelixPipe's pre-attention -> attention boundary moves Q, K, V plus the
  residual input (``4 bsh``) -- or, with the weight-shipping optimisation,
  the QKV weight (``3 h^2``) plus the LayerNorm output and residual
  (``2 bsh + 3 h^2``);
* the attention -> post-attention boundary moves the attention output plus
  the residual (``2 bsh``).

Backward volumes mirror the forward ones (gradients take the reverse
path); weight shipping additionally returns the QKV weight gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BoundaryVolumes", "boundary_volumes"]

FP16_BYTES = 2.0


@dataclass(frozen=True)
class BoundaryVolumes:
    """Element counts crossing each boundary for one micro batch."""

    layerwise: float  # activation between consecutive layer-wise stages
    pre_to_attn: float  # HelixPipe pre-attention -> attention
    attn_to_post: float  # HelixPipe attention -> post-attention
    ship_qkv_weights: bool

    def bytes(self, which: str, sp: int = 1) -> float:
        """Per-GPU fp16 bytes for boundary ``which`` with SP size ``sp``.

        The weight shard under weight shipping is already tensor-parallel
        over ``sp`` along with the activations, so a uniform division is
        exact for both terms.
        """
        elems = {
            "layerwise": self.layerwise,
            "pre_to_attn": self.pre_to_attn,
            "attn_to_post": self.attn_to_post,
        }[which]
        return elems * FP16_BYTES / sp


def boundary_volumes(
    b: int, s: int, h: int, ship_qkv_weights: bool = True
) -> BoundaryVolumes:
    """Boundary element counts for micro batch ``b``, sequence ``s``, width ``h``.

    With ``ship_qkv_weights`` (the paper's optimisation) the heavy
    pre->attn boundary shrinks from ``4 bsh`` to ``2 bsh + 3 h^2``; for
    long sequences ``s >> h`` this approaches the ``2 bsh`` of the other
    boundary.
    """
    bsh = float(b) * s * h
    pre_to_attn = 2.0 * bsh + 3.0 * h * h if ship_qkv_weights else 4.0 * bsh
    return BoundaryVolumes(
        layerwise=bsh,
        pre_to_attn=pre_to_attn,
        attn_to_post=2.0 * bsh,
        ship_qkv_weights=ship_qkv_weights,
    )
