"""Alpha-beta cost models for NCCL-style communication.

Two families are modelled:

* **Inter-node p2p** used by pipeline parallelism (per-GPU-pair fair-share
  InfiniBand bandwidth plus latency) -- delegated to
  :meth:`repro.cluster.ClusterSpec.p2p_time`.
* **Intra-node ring collectives** used by Megatron sequence parallelism
  (all-gather / reduce-scatter over NVLink).

NCCL performs p2p with GPU SMs; the paper observes (Section 5.3) that only
a few SMs are needed, so compute slowdown from concurrent communication is
marginal.  ``CommModel.compute_slowdown`` exposes that as a configurable
factor (default 1.0 = no slowdown, matching the paper's observation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec

__all__ = ["CommModel"]


@dataclass(frozen=True)
class CommModel:
    """Communication timing for a given cluster.

    Parameters
    ----------
    cluster:
        Hardware description (bandwidths, latency).
    compute_slowdown:
        Multiplicative slowdown applied to compute that overlaps a
        transfer (NCCL p2p steals a few SMs; ~1.0 in practice).
    """

    cluster: ClusterSpec
    compute_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_slowdown < 1.0:
            raise ValueError("compute_slowdown must be >= 1.0")

    def p2p_time(self, nbytes: float) -> float:
        """Inter-stage point-to-point transfer of a per-GPU shard."""
        return self.cluster.p2p_time(nbytes)

    def all_gather_time(self, nbytes: float) -> float:
        """Intra-node all-gather of a full ``nbytes`` tensor (SP region)."""
        return self.cluster.intra_node_collective_time(nbytes, "all_gather")

    def reduce_scatter_time(self, nbytes: float) -> float:
        """Intra-node reduce-scatter of a full ``nbytes`` tensor."""
        return self.cluster.intra_node_collective_time(nbytes, "reduce_scatter")

    def all_reduce_time(self, nbytes: float) -> float:
        """Intra-node all-reduce (reduce-scatter + all-gather)."""
        return self.cluster.intra_node_collective_time(nbytes, "all_reduce")

    def sequence_parallel_layer_overhead(self, b: int, s: int, h: int) -> float:
        """Per-layer SP collective time (forward): two all-gathers plus two
        reduce-scatters of a ``[s, b, h]`` fp16 activation (Section 2.2).

        Identical for every method under comparison, hence excluded from
        the pipeline simulation; exposed for absolute-time estimates.
        """
        nbytes = float(b) * s * h * 2.0
        return 2 * self.all_gather_time(nbytes) + 2 * self.reduce_scatter_time(nbytes)
