"""Execution-time model for transformer layer phases on a simulated GPU.

The paper partitions a layer into **pre-attention** (LayerNorm + QKV
linear), **attention** (causal flash attention) and **post-attention**
(output linear + LayerNorm + MLP) -- Figure 1.  This module predicts the
forward / backward-B / backward-W duration of each phase on a given
:class:`~repro.cluster.gpu.GPUSpec` using a roofline decomposition:

* GEMM-shaped FLOPs (Table 1) at the GPU's sustained matmul rate;
* attention FLOPs at the fused-attention rate, scaled by ``0.5`` for the
  causal mask (flash attention skips masked tiles);
* memory-bound elementwise ops (LayerNorm, GeLU) at HBM bandwidth.

All per-GPU costs are divided by the Megatron sequence-parallel size
``sp`` (8 inside a node in the paper's runs): GEMMs are tensor-parallel
over ``sp`` and elementwise ops act on ``s/sp`` sequence shards.

The predicted component shares reproduce paper Figure 3 (attention grows
from a sliver at 4k to the dominant share at 128k) and the absolute
milliseconds for the 7B layer reproduce the magnitudes of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.gpu import GPUSpec
from repro.costmodel.table1 import op_costs
from repro.model.config import ModelConfig

__all__ = [
    "PhaseTimes",
    "LayerTimes",
    "TimingModel",
    "unit_layer_times",
    "BatchPhaseTimes",
    "BatchLayerTimes",
    "batch_layer_times",
]

_FP16_BYTES = 2.0
#: Flash attention computes only the lower-triangular tiles under a causal
#: mask, halving the effective FLOPs relative to Table 1's dense count.
CAUSAL_FACTOR = 0.5


@dataclass(frozen=True)
class PhaseTimes:
    """Durations (seconds) of one layer phase.

    ``bwd_b`` is the input-gradient pass, ``bwd_w`` the weight-gradient
    pass (zero for the non-parameterised attention phase).
    """

    fwd: float
    bwd_b: float
    bwd_w: float

    @property
    def bwd(self) -> float:
        """Combined backward time when B and W are not decoupled."""
        return self.bwd_b + self.bwd_w

    def scaled(self, k: float) -> "PhaseTimes":
        return PhaseTimes(self.fwd * k, self.bwd_b * k, self.bwd_w * k)

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            self.fwd + other.fwd,
            self.bwd_b + other.bwd_b,
            self.bwd_w + other.bwd_w,
        )


@dataclass(frozen=True)
class LayerTimes:
    """Phase times of a full transformer layer.

    ``qkv`` isolates the QKV linear so schedules can move its computation
    to the attention stage under HelixPipe's weight-shipping optimisation
    (Section 4.2); ``pre`` always *includes* qkv, so consumers subtract.
    """

    pre: PhaseTimes
    attn: PhaseTimes
    post: PhaseTimes
    qkv: PhaseTimes

    @property
    def fwd(self) -> float:
        return self.pre.fwd + self.attn.fwd + self.post.fwd

    @property
    def bwd(self) -> float:
        return self.pre.bwd + self.attn.bwd + self.post.bwd

    @property
    def total(self) -> float:
        return self.fwd + self.bwd


class TimingModel:
    """Roofline timing for one micro batch on one GPU of a stage.

    Parameters
    ----------
    gpu:
        Device spec providing sustained rates.
    model:
        Architecture (hidden size is what matters here).
    micro_batch:
        Micro batch size ``b`` (paper uses 1 for long sequences).
    seq_len:
        Full sequence length ``s``.
    sp:
        Sequence-parallel size inside the stage (divides all per-GPU
        work); 8 in the paper's clusters.
    causal:
        Apply the causal-mask FLOP discount to attention.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        model: ModelConfig,
        micro_batch: int = 1,
        seq_len: int = 4096,
        sp: int = 8,
        causal: bool = True,
    ) -> None:
        if micro_batch <= 0 or seq_len <= 0 or sp <= 0:
            raise ValueError("micro_batch, seq_len and sp must be positive")
        self.gpu = gpu
        self.model = model
        self.b = micro_batch
        self.s = seq_len
        self.sp = sp
        self.causal = causal
        self._ops = op_costs(micro_batch, seq_len, model.hidden_size)

    # -- helpers -----------------------------------------------------------

    def _gemm(self, flops: float) -> float:
        return self.gpu.gemm_time(flops / self.sp)

    def _attn(self, flops: float) -> float:
        k = CAUSAL_FACTOR if self.causal else 1.0
        return self.gpu.attn_time(flops * k / self.sp)

    def _elemwise(self, elems: float, passes: float) -> float:
        """Memory-bound op touching ``elems`` fp16 elements ``passes`` times."""
        return self.gpu.membound_time(elems * passes * _FP16_BYTES / self.sp)

    # -- phases ------------------------------------------------------------

    def qkv_times(self) -> PhaseTimes:
        """The QKV linear alone (movable under weight shipping)."""
        op = self._ops["qkv_linear"]
        return PhaseTimes(
            fwd=self._gemm(op.fwd_flops),
            bwd_b=self._gemm(op.bwd_b_flops),
            bwd_w=self._gemm(op.bwd_w_flops),
        )

    def pre_attention_times(self) -> PhaseTimes:
        """LayerNorm + QKV linear (paper Fig. 1 'pre-attention')."""
        bsh = float(self.b) * self.s * self.model.hidden_size
        ln = PhaseTimes(
            fwd=self._elemwise(bsh, 2.0),
            bwd_b=self._elemwise(bsh, 4.0),
            bwd_w=0.0,
        )
        return ln + self.qkv_times()

    def attention_times(self) -> PhaseTimes:
        """Causal flash attention (non-parameterised: no backward-W)."""
        op = self._ops["attention"]
        return PhaseTimes(
            fwd=self._attn(op.fwd_flops),
            bwd_b=self._attn(op.bwd_b_flops),
            bwd_w=0.0,
        )

    def post_attention_times(self) -> PhaseTimes:
        """O linear + LayerNorm + Linear1 + GeLU + Linear2."""
        h = self.model.hidden_size
        bsh = float(self.b) * self.s * h
        gemm_fwd = gemm_bwd_b = gemm_bwd_w = 0.0
        for name in ("o_linear", "linear1", "linear2"):
            op = self._ops[name]
            gemm_fwd += op.fwd_flops
            gemm_bwd_b += op.bwd_b_flops
            gemm_bwd_w += op.bwd_w_flops
        # LayerNorm on bsh elements + GeLU on 4bsh elements.
        elem_fwd = self._elemwise(bsh, 2.0) + self._elemwise(4 * bsh, 2.0)
        elem_bwd = self._elemwise(bsh, 4.0) + self._elemwise(4 * bsh, 4.0)
        return PhaseTimes(
            fwd=self._gemm(gemm_fwd) + elem_fwd,
            bwd_b=self._gemm(gemm_bwd_b) + elem_bwd,
            bwd_w=self._gemm(gemm_bwd_w),
        )

    def layer_times(self) -> LayerTimes:
        return LayerTimes(
            pre=self.pre_attention_times(),
            attn=self.attention_times(),
            post=self.post_attention_times(),
            qkv=self.qkv_times(),
        )

    # -- embedding / head (Section 4.6) -------------------------------------

    def embedding_times(self) -> PhaseTimes:
        """Word + position embedding lookup (memory bound)."""
        bsh = float(self.b) * self.s * self.model.hidden_size
        return PhaseTimes(
            fwd=self._elemwise(bsh, 3.0),
            bwd_b=0.0,
            bwd_w=self._elemwise(bsh, 3.0),
        )

    def head_times(self) -> PhaseTimes:
        """Final LM head GEMM + softmax cross-entropy."""
        b, s = self.b, self.s
        h, v = self.model.hidden_size, self.model.vocab_size
        gemm = 2.0 * b * s * h * v
        softmax = self._elemwise(float(b) * s * v, 3.0)
        return PhaseTimes(
            fwd=self._gemm(gemm) + softmax,
            bwd_b=self._gemm(gemm) + softmax,
            bwd_w=self._gemm(gemm),
        )

    # -- aggregates ----------------------------------------------------------

    def breakdown(self) -> dict[str, float]:
        """Named durations used by the Figure 3 reproduction."""
        lt = self.layer_times()
        return {
            "pre_attn_fwd": lt.pre.fwd,
            "attn_fwd": lt.attn.fwd,
            "post_attn_fwd": lt.post.fwd,
            "pre_attn_bwd": lt.pre.bwd,
            "attn_bwd": lt.attn.bwd,
            "post_attn_bwd": lt.post.bwd,
        }


# -- batched evaluation ------------------------------------------------------


@dataclass(frozen=True)
class BatchPhaseTimes:
    """Durations of one layer phase for an array of workload shapes.

    The vector counterpart of :class:`PhaseTimes`: each field is a numpy
    float64 array, one entry per ``(micro_batch, seq_len)`` point.
    """

    fwd: Any
    bwd_b: Any
    bwd_w: Any

    @property
    def bwd(self):
        return self.bwd_b + self.bwd_w

    def scalar(self, i: int) -> PhaseTimes:
        """The ``i``-th point as a plain :class:`PhaseTimes`."""
        return PhaseTimes(
            float(self.fwd[i]), float(self.bwd_b[i]), float(self.bwd_w[i])
        )


@dataclass(frozen=True)
class BatchLayerTimes:
    """Phase times of a full layer for an array of workload shapes.

    The vector counterpart of :class:`LayerTimes`, produced by
    :func:`batch_layer_times`.  Aggregate properties broadcast over the
    whole batch.
    """

    pre: BatchPhaseTimes
    attn: BatchPhaseTimes
    post: BatchPhaseTimes
    qkv: BatchPhaseTimes

    @property
    def fwd(self):
        return self.pre.fwd + self.attn.fwd + self.post.fwd

    @property
    def bwd(self):
        return self.pre.bwd + self.attn.bwd + self.post.bwd

    @property
    def bwd_b(self):
        return self.pre.bwd_b + self.attn.bwd_b + self.post.bwd_b

    @property
    def total(self):
        return self.fwd + self.bwd

    def __len__(self) -> int:
        return int(self.pre.fwd.shape[0])

    def scalar(self, i: int) -> LayerTimes:
        """The ``i``-th point as a plain :class:`LayerTimes`."""
        return LayerTimes(
            pre=self.pre.scalar(i),
            attn=self.attn.scalar(i),
            post=self.post.scalar(i),
            qkv=self.qkv.scalar(i),
        )


def batch_layer_times(
    gpu: GPUSpec,
    model: ModelConfig,
    micro_batches,
    seq_lens,
    sp: int = 8,
    causal: bool = True,
) -> BatchLayerTimes:
    """Vectorised :meth:`TimingModel.layer_times` over workload shapes.

    ``micro_batches`` and ``seq_lens`` are broadcast-compatible arrays of
    shapes; the result holds one entry per broadcast point.  The
    arithmetic mirrors the scalar model operation-for-operation (same
    roofline rates, same causal discount, same sequence-parallel
    division), so each entry equals the scalar
    :meth:`~TimingModel.layer_times` for that shape -- the tuner prices a
    whole candidate grid in one numpy pass and the scalar model stays
    the single source of truth for what is computed.
    """
    # Deferred + optional: the scalar TimingModel is numpy-free, and the
    # tuner (repro.tuner.bounds) falls back to it when numpy is absent.
    try:
        import numpy as np
    except ImportError:
        raise ImportError(
            "batch_layer_times requires numpy for vectorised pricing; "
            "on a numpy-free install use TimingModel(...).layer_times() "
            "per shape (identical arithmetic, one point at a time)"
        ) from None

    b, s = np.broadcast_arrays(
        np.atleast_1d(np.asarray(micro_batches, dtype=np.float64)),
        np.atleast_1d(np.asarray(seq_lens, dtype=np.float64)),
    )
    if b.size and (b.min() <= 0 or s.min() <= 0):
        raise ValueError("micro_batches and seq_lens must be positive")
    if sp <= 0:
        raise ValueError("sp must be positive")
    h = float(model.hidden_size)
    k = CAUSAL_FACTOR if causal else 1.0

    gemm_rate = gpu.matmul_flops_per_s
    attn_rate = gpu.attn_flops_per_s
    hbm_rate = gpu.hbm_bytes_per_s

    def gemm(flops):
        return (flops / sp) / gemm_rate

    def attn(flops):
        return (flops * k / sp) / attn_rate

    def elemwise(elems, passes):
        return (elems * passes * _FP16_BYTES / sp) / hbm_rate

    bsh = b * s * h
    bsh2 = bsh * h  # b*s*h^2
    bhs2 = b * h * s * s  # b*h*s^2

    # Table 1 rows, phase by phase (mirrors TimingModel exactly).
    qkv = BatchPhaseTimes(
        fwd=gemm(6 * bsh2), bwd_b=gemm(6 * bsh2), bwd_w=gemm(6 * bsh2)
    )
    pre = BatchPhaseTimes(
        fwd=elemwise(bsh, 2.0) + qkv.fwd,
        bwd_b=elemwise(bsh, 4.0) + qkv.bwd_b,
        bwd_w=0.0 + qkv.bwd_w,
    )
    attn_t = BatchPhaseTimes(
        fwd=attn(4 * bhs2),
        bwd_b=attn(8 * bhs2),
        bwd_w=np.zeros_like(bsh),
    )
    gemm_post = 2 * bsh2 + 8 * bsh2 + 8 * bsh2  # o_linear + linear1 + linear2
    elem_fwd = elemwise(bsh, 2.0) + elemwise(4 * bsh, 2.0)
    elem_bwd = elemwise(bsh, 4.0) + elemwise(4 * bsh, 4.0)
    post = BatchPhaseTimes(
        fwd=gemm(gemm_post) + elem_fwd,
        bwd_b=gemm(gemm_post) + elem_bwd,
        bwd_w=gemm(gemm_post),
    )
    return BatchLayerTimes(pre=pre, attn=attn_t, post=post, qkv=qkv)


def unit_layer_times(ratio: tuple[float, float, float] = (1.0, 3.0, 2.0)) -> LayerTimes:
    """Abstract unit-time layer used by the paper's schedule figures.

    The paper draws Figures 2, 5, 6 and 7 with a pre : attn : post
    execution-time ratio of 1:3:2 and backward == forward.  The returned
    :class:`LayerTimes` encodes exactly that, splitting backward evenly
    between B and W for phases that have parameters.
    """
    pre, attn, post = (float(x) for x in ratio)
    return LayerTimes(
        pre=PhaseTimes(fwd=pre, bwd_b=pre / 2, bwd_w=pre / 2),
        attn=PhaseTimes(fwd=attn, bwd_b=attn, bwd_w=0.0),
        post=PhaseTimes(fwd=post, bwd_b=post / 2, bwd_w=post / 2),
        qkv=PhaseTimes(fwd=pre / 2, bwd_b=pre / 4, bwd_w=pre / 4),
    )
