"""Paper Table 1: per-op FLOPs, parameters and activation elements.

Every entry reproduces the closed forms of the paper exactly (matrix-op
FLOPs only; bias parameters neglected; attention intermediates rounded to
``3bsh`` thanks to flash attention; dropout omitted).  Shapes:

* ``b`` micro batch size, ``s`` sequence length, ``h`` hidden size.
* Backward *B* = gradient w.r.t. input activations; backward *W* =
  gradient w.r.t. parameters (attention and LayerNorm-stat ops have no
  GEMM-shaped W work in the table's convention).

These symbolic counts feed the timing model (:mod:`repro.costmodel.timing`)
and the analytic memory model (:mod:`repro.costmodel.memory`), and are
checked term-by-term in the Table 1 reproduction bench.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OpCost",
    "LAYER_OPS",
    "op_costs",
    "layer_totals",
    "LayerTotals",
]


@dataclass(frozen=True)
class OpCost:
    """Costs of one operation of a transformer layer for given (b, s, h).

    All values are element / FLOP counts, not bytes or seconds.
    """

    name: str
    module: str  # "attention" | "mlp"
    fwd_flops: float
    bwd_b_flops: float
    bwd_w_flops: float
    params: float
    activation_elems: float


#: Operation names in paper Table 1 column order.
LAYER_OPS: tuple[str, ...] = (
    "ln1",
    "qkv_linear",
    "attention",
    "o_linear",
    "ln2",
    "linear1",
    "gelu",
    "linear2",
)


def op_costs(b: int, s: int, h: int) -> dict[str, OpCost]:
    """Table 1 rows for micro batch ``b``, sequence ``s``, hidden ``h``."""
    if min(b, s, h) <= 0:
        raise ValueError("b, s and h must be positive")
    bsh = float(b) * s * h
    bsh2 = bsh * h  # b*s*h^2
    bhs2 = float(b) * h * s * s  # b*h*s^2
    return {
        "ln1": OpCost("ln1", "attention", 0.0, 0.0, 0.0, 2.0 * h, bsh),
        "qkv_linear": OpCost(
            "qkv_linear", "attention", 6 * bsh2, 6 * bsh2, 6 * bsh2, 3.0 * h * h, bsh
        ),
        "attention": OpCost(
            "attention", "attention", 4 * bhs2, 8 * bhs2, 0.0, 0.0, 3 * bsh
        ),
        "o_linear": OpCost(
            "o_linear", "attention", 2 * bsh2, 2 * bsh2, 2 * bsh2, 1.0 * h * h, bsh
        ),
        "ln2": OpCost("ln2", "mlp", 0.0, 0.0, 0.0, 2.0 * h, bsh),
        "linear1": OpCost(
            "linear1", "mlp", 8 * bsh2, 8 * bsh2, 8 * bsh2, 4.0 * h * h, bsh
        ),
        "gelu": OpCost("gelu", "mlp", 0.0, 0.0, 0.0, 0.0, 4 * bsh),
        "linear2": OpCost(
            "linear2", "mlp", 8 * bsh2, 8 * bsh2, 8 * bsh2, 4.0 * h * h, 4 * bsh
        ),
    }


@dataclass(frozen=True)
class LayerTotals:
    """Totals column of Table 1."""

    fwd_flops: float
    bwd_b_flops: float
    bwd_w_flops: float
    params: float
    activation_elems: float


def layer_totals(b: int, s: int, h: int) -> LayerTotals:
    """Closed-form totals: 4bsh(6h+s), 4bsh(6h+2s), 4bsh*6h, 12h^2+4h, 16bsh."""
    bsh = float(b) * s * h
    return LayerTotals(
        fwd_flops=4 * bsh * (6 * h + s),
        bwd_b_flops=4 * bsh * (6 * h + 2 * s),
        bwd_w_flops=4 * bsh * (6 * h),
        params=12.0 * h * h + 4.0 * h,
        activation_elems=16 * bsh,
    )
