"""Analytic activation / model-state memory model.

Covers the paper's Equations 2 and 4 (1F1B / ZB1P activation footprints),
the HelixPipe footprint ``4bsh * m * L / p`` (Table 2), the recomputation
strategies of Section 4.4.1 and the fp32 logits stash that drives ZB1P's
last-stage spike in Figure 10.

All byte figures are per-GPU: activations are sharded over the
sequence-parallel group (``/ sp``), while the formulas in the paper are
stated per stage (``sp = 1`` recovers them).
"""

from __future__ import annotations

from enum import Enum

from repro.model.config import ModelConfig

__all__ = [
    "RecomputeStrategy",
    "activation_elems_per_layer",
    "activation_bytes_per_layer",
    "stage_activation_bytes_1f1b",
    "stage_activation_bytes_zb1p",
    "stage_activation_bytes_helix",
    "model_state_bytes_per_stage",
    "logits_stash_bytes",
    "FP16_BYTES",
    "FP32_BYTES",
    "ADAM_STATE_BYTES_PER_PARAM",
]

FP16_BYTES = 2
FP32_BYTES = 4
#: Mixed-precision Adam per parameter: fp16 weight + fp16 grad + fp32
#: master weight + fp32 momentum + fp32 variance = 2+2+4+4+4 bytes.
ADAM_STATE_BYTES_PER_PARAM = 16


class RecomputeStrategy(Enum):
    """Which intermediate activations are stashed during forward.

    NONE
        Everything from Table 1 is kept: ``16 bsh`` elements per layer.
    SELECTIVE
        Megatron selective recomputation: drop only the attention
        intermediates (``3 bsh``), keep the rest -> ``13 bsh``.
    WITHOUT_ATTENTION
        HelixPipe (Section 4.4.1): keep only the flash-attention
        input/output (~``2 bsh``) plus the boundary activations of the
        combined pre/post phase (``2 bsh``) -> ``4 bsh``.
    FULL
        Classic full recomputation: keep only the layer input
        (``1 bsh``) and rerun everything, attention included.
    """

    NONE = "none"
    SELECTIVE = "selective"
    WITHOUT_ATTENTION = "without_attention"
    FULL = "full"


_STASH_ELEMS = {
    RecomputeStrategy.NONE: 16.0,
    RecomputeStrategy.SELECTIVE: 13.0,
    RecomputeStrategy.WITHOUT_ATTENTION: 4.0,
    RecomputeStrategy.FULL: 1.0,
}


def activation_elems_per_layer(
    b: int, s: int, h: int, strategy: RecomputeStrategy = RecomputeStrategy.NONE
) -> float:
    """Stashed activation elements for one layer and one micro batch."""
    return _STASH_ELEMS[strategy] * float(b) * s * h


def activation_bytes_per_layer(
    b: int,
    s: int,
    h: int,
    strategy: RecomputeStrategy = RecomputeStrategy.NONE,
    sp: int = 1,
) -> float:
    """Per-GPU stashed activation bytes for one layer and one micro batch."""
    if sp <= 0:
        raise ValueError("sp must be positive")
    return activation_elems_per_layer(b, s, h, strategy) * FP16_BYTES / sp


def stage_activation_bytes_1f1b(
    b: int,
    s: int,
    h: int,
    num_layers: int,
    p: int,
    stage: int,
    strategy: RecomputeStrategy = RecomputeStrategy.NONE,
    sp: int = 1,
) -> float:
    """Paper Eq. 2: peak activation bytes of 1F1B at ``stage`` in ``[0, p)``.

    Stage ``i`` holds ``p - i`` outstanding micro batches of ``L / p``
    layers each.
    """
    if not 0 <= stage < p:
        raise ValueError(f"stage must be in [0, {p}), got {stage}")
    per_layer = activation_bytes_per_layer(b, s, h, strategy, sp)
    return (p - stage) * per_layer * num_layers / p


def stage_activation_bytes_zb1p(
    b: int,
    s: int,
    h: int,
    num_layers: int,
    p: int,
    strategy: RecomputeStrategy = RecomputeStrategy.NONE,
    sp: int = 1,
) -> float:
    """Paper Eq. 4: ZB1P worst-case activation bytes (same for all stages)."""
    per_layer = activation_bytes_per_layer(b, s, h, strategy, sp)
    return per_layer * num_layers


def stage_activation_bytes_helix(
    b: int,
    s: int,
    h: int,
    num_layers: int,
    p: int,
    num_micro_batches: int,
    strategy: RecomputeStrategy = RecomputeStrategy.WITHOUT_ATTENTION,
    sp: int = 1,
) -> float:
    """Table 2 row 3: HelixPipe activation bytes, identical for all stages.

    The FILO schedule stashes all ``m`` micro batches for the ``L / p``
    layers owned by a stage before backward begins.
    """
    per_layer = activation_bytes_per_layer(b, s, h, strategy, sp)
    return num_micro_batches * per_layer * num_layers / p


def model_state_bytes_per_stage(
    model: ModelConfig,
    p: int,
    max_seq_len: int = 0,
    sp: int = 1,
    bytes_per_param: int = ADAM_STATE_BYTES_PER_PARAM,
) -> float:
    """Per-GPU bytes of parameters + grads + optimizer state at one stage.

    Layers divide evenly over ``p`` stages; the (tied) embedding lives on
    stage 0 in HelixPipe and contributes the same order of magnitude on
    the first/last stages of the baselines, so we charge it uniformly --
    the per-stage difference is dwarfed by activations at long ``s``.
    """
    layer_params = model.layer_params() * model.num_layers / p
    embed_params = model.embedding_params(max_seq_len) / p
    return (layer_params + embed_params) * bytes_per_param / sp


def logits_stash_bytes(b: int, s: int, vocab_size: int, sp: int = 1) -> float:
    """fp32 bytes of one stashed ``[s, b, V]`` logits tensor (Section 4.6).

    Baselines that do not fuse loss into backward must hold this on the
    last stage; ZB1P additionally holds one per outstanding backward-W
    micro batch, producing the Figure 10 spike.
    """
    return float(b) * s * vocab_size * FP32_BYTES / sp
