"""Analytic cost models: Table 1 FLOPs/memory, roofline timing, memory."""

from repro.costmodel.memory import (
    ADAM_STATE_BYTES_PER_PARAM,
    FP16_BYTES,
    FP32_BYTES,
    RecomputeStrategy,
    activation_bytes_per_layer,
    activation_elems_per_layer,
    logits_stash_bytes,
    model_state_bytes_per_stage,
    stage_activation_bytes_1f1b,
    stage_activation_bytes_helix,
    stage_activation_bytes_zb1p,
)
from repro.costmodel.table1 import LAYER_OPS, LayerTotals, OpCost, layer_totals, op_costs
from repro.costmodel.timing import (
    CAUSAL_FACTOR,
    LayerTimes,
    PhaseTimes,
    TimingModel,
    unit_layer_times,
)

__all__ = [
    "OpCost",
    "LayerTotals",
    "LAYER_OPS",
    "op_costs",
    "layer_totals",
    "PhaseTimes",
    "LayerTimes",
    "TimingModel",
    "unit_layer_times",
    "CAUSAL_FACTOR",
    "RecomputeStrategy",
    "activation_elems_per_layer",
    "activation_bytes_per_layer",
    "stage_activation_bytes_1f1b",
    "stage_activation_bytes_zb1p",
    "stage_activation_bytes_helix",
    "model_state_bytes_per_stage",
    "logits_stash_bytes",
    "FP16_BYTES",
    "FP32_BYTES",
    "ADAM_STATE_BYTES_PER_PARAM",
]
