"""Measure the tuner hot path and emit a tracked ``BENCH_*.json``.

The repo's perf trajectory lives in ``benchmarks/perf/``: every PR that
touches the candidate-evaluation pipeline re-runs ``python -m repro
bench`` and compares against the committed baseline, so a regression in
candidates/sec is a CI failure rather than a surprise three PRs later.

Wall-clock metrics on the pinned acceptance workload
(7B / H20 / p=8 / 64k; ``--smoke`` shrinks it to 1.3B / H20 / p=4 / 8k
for seconds-fast CI):

``candidates_per_s``
    Cold-cache serial :func:`repro.tuner.autotune` sweep with admissible
    pruning and incremental re-simulation on (the default path) -- the
    headline number.
``build_candidates_per_s`` / ``simulate_candidates_per_s``
    The same sweep decomposed by phase via
    :class:`~repro.tuner.telemetry.SweepTelemetry`: schedules built per
    second of build-phase wall, and candidates simulated per second of
    simulate-phase wall.  Gated separately so a regression confined to
    one phase cannot hide behind an improvement in the other.
``single_sim_s``
    One helix build's event-driven simulation (``verify=False``,
    ``record_trace=False``), best of several runs -- isolates the
    engine from builders and pruning.
``warm_sweep_s``
    The same sweep served entirely from a warm :class:`CostCache` --
    the incremental-sweep experience ``tune --cache`` gives.

Every run also performs the equivalence checks the acceptance criterion
demands: the best :class:`PlanResult` of the default sweep must equal
(dataclass field equality, hence byte-identical metrics) both the best
of the ``prune=False, incremental=False`` exhaustive sweep and the best
of the pruned ``incremental=False`` sweep -- pruning and incremental
re-simulation are pure optimisations, never a different answer.

The full per-phase breakdown of the fastest default sweep lands in the
payload's ``phases`` section (build/bound/simulate/cache seconds plus
the build-cache and incremental-resimulation counters).  ``--profile``
additionally cProfiles one extra sweep (after the timed ones, so the
metrics stay unprofiled) and embeds the top functions by cumulative
time.

Timings are best-of-``repeats`` minima: the minimum of repeated runs
estimates the noise-free cost, which is the stable statistic for
regression gating (means drift with machine load).
"""

from __future__ import annotations

import cProfile
import datetime
import io
import json
import platform
import pstats
import subprocess
import time
from typing import Any, Callable

from repro.schedules.registry import get_schedule, workload_option_defaults
from repro.sim import simulate
from repro.tuner import CostCache, SweepTelemetry, autotune
from repro.workloads import Workload

__all__ = [
    "bench_workload",
    "run_bench",
    "compare_bench",
    "default_out_name",
    "git_rev",
]

#: Metrics gated by :func:`compare_bench` (name, higher_is_better).
#: End-to-end candidates/sec plus its two phase decompositions hard-fail
#: CI per the tracked-baseline policy; the others are reported for the
#: trajectory but machine noise on a microsecond-scale single
#: simulation would make them flaky gates.
GATED_METRICS: tuple[tuple[str, bool], ...] = (
    ("candidates_per_s", True),
    ("build_candidates_per_s", True),
    ("simulate_candidates_per_s", True),
)


def bench_workload(smoke: bool = False) -> Workload:
    """The pinned bench workload (the ISSUE's acceptance grid)."""
    if smoke:
        return Workload.paper("1.3B", "H20", 4, 8192)
    return Workload.paper("7B", "H20", 8, 65536)


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def default_out_name(smoke: bool = False) -> str:
    rev = git_rev()
    return f"BENCH_smoke_{rev}.json" if smoke else f"BENCH_{rev}.json"


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(min wall seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return best, result


def _single_sim_s(wl: Workload, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one helix simulation."""
    spec = get_schedule("helix")
    opts = workload_option_defaults(spec, wl)
    m = spec.round_micro_batches(wl.num_micro_batches, wl.p, **opts)
    m = m or spec.micro_batch_divisor(wl.p, **opts)
    sched = spec.build(
        (wl.p, m), wl.costs(spec.default_recompute), verify=False, **opts
    )
    static = wl.static_memory()
    best, _ = _best_of(
        repeats,
        lambda: simulate(
            sched,
            wl.cluster,
            static_memory_bytes=static,
            verify=False,
            record_trace=False,
        ),
    )
    return best


def _profile_sweep(wl: Workload, top: int) -> dict[str, Any]:
    """cProfile one cold default sweep; top-``top`` by cumulative time.

    Runs after (never instead of) the timed sweeps: profiling overhead
    would contaminate the gated metrics.
    """
    profiler = cProfile.Profile()
    cache = CostCache()
    profiler.enable()
    autotune(wl, cache=cache)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream).sort_stats("cumulative")
    entries: list[dict[str, Any]] = []
    for func in stats.fcn_list[: max(1, top)]:  # (file, line, name)
        cc, nc, tt, ct, _ = stats.stats[func]
        filename, line, name = func
        entries.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    return {"sort": "cumulative", "top": entries}


def run_bench(
    smoke: bool = False,
    repeats: int = 3,
    profile: bool = False,
    profile_top: int = 25,
) -> dict[str, Any]:
    """Run the full harness and return the ``BENCH_*.json`` payload."""
    wl = bench_workload(smoke)

    # Cold default sweep (pruning + incremental re-simulation on) --
    # fresh cost cache and telemetry per run; the per-phase breakdown
    # kept is the fastest run's (same best-of-minima discipline as the
    # end-to-end number, so phases and total describe the same run).
    sweep_s = float("inf")
    pruned_rows: list[Any] = []
    tel_best = SweepTelemetry()
    pruned_stats: Any = None
    warm_cache = CostCache()
    for _ in range(max(1, repeats)):
        cache = CostCache()
        tel = SweepTelemetry()
        t0 = time.perf_counter()
        rows = autotune(wl, cache=cache, telemetry=tel)
        dt = time.perf_counter() - t0
        if dt < sweep_s:
            sweep_s = dt
            pruned_rows = rows
            tel_best = tel
            # Snapshot the cold-sweep counters now: the warm sweeps
            # below reuse this cache, and pruned candidates (never
            # cached) re-prune there.
            pruned_stats = cache.stats
            warm_cache = cache
    n = len(pruned_rows)
    simulated_count = pruned_stats.misses
    pruned_count = pruned_stats.pruned

    # Cold exhaustive non-incremental sweep -- the equivalence
    # reference (every candidate built and fully simulated from
    # scratch); one run is enough for the check, but time it too for
    # the trajectory.
    def cold_exhaustive():
        return autotune(wl, cache=CostCache(), prune=False, incremental=False)

    exhaustive_s, exhaustive_rows = _best_of(1, cold_exhaustive)

    # Pruned full-resimulation sweep: isolates the incremental layer
    # (same pruning, no timeline reuse) for its own equivalence check.
    noninc_s, noninc_rows = _best_of(
        1, lambda: autotune(wl, cache=CostCache(), incremental=False)
    )

    # Warm sweep: every candidate served from the populated cache.
    warm_s, _ = _best_of(repeats, lambda: autotune(wl, cache=warm_cache))

    single_s = _single_sim_s(wl, max(repeats, 5))

    pruned_best = next((r for r in pruned_rows if r.feasible), None)
    exhaustive_best = next((r for r in exhaustive_rows if r.feasible), None)
    noninc_best = next((r for r in noninc_rows if r.feasible), None)
    # Dataclass equality over every field (candidate, metrics, reason):
    # equal here means the serialised plans are byte-identical.
    best_identical = pruned_best == exhaustive_best
    inc_identical = pruned_best == noninc_best

    phases = tel_best.as_dict()
    build_s = phases["build_s"]
    simulate_s = phases["simulate_s"]

    payload: dict[str, Any] = {
        "schema": 2,
        "mode": "smoke" if smoke else "full",
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "machine": platform.platform(),
        "repeats": repeats,
        "workload": {
            "model": wl.model.name,
            "gpu": wl.cluster.node.gpu.name,
            "p": wl.p,
            "seq_len": wl.seq_len,
            "micro_batch": wl.micro_batch,
            "num_micro_batches": wl.num_micro_batches,
        },
        "counts": {
            "candidates": n,
            "simulated": simulated_count,
            "pruned": pruned_count,
        },
        "metrics": {
            "candidates_per_s": n / sweep_s if sweep_s > 0 else float("inf"),
            "sweep_s": sweep_s,
            "build_candidates_per_s": (
                phases["built"] / build_s if build_s > 0 else float("inf")
            ),
            "simulate_candidates_per_s": (
                phases["simulated"] / simulate_s
                if simulate_s > 0
                else float("inf")
            ),
            "exhaustive_candidates_per_s": (
                n / exhaustive_s if exhaustive_s > 0 else float("inf")
            ),
            "exhaustive_sweep_s": exhaustive_s,
            "prune_speedup": exhaustive_s / sweep_s if sweep_s > 0 else 0.0,
            "noninc_sweep_s": noninc_s,
            "incremental_speedup": noninc_s / sweep_s if sweep_s > 0 else 0.0,
            "warm_sweep_s": warm_s,
            "single_sim_s": single_s,
        },
        "phases": phases,
        "equivalence": {
            "pruned_best_equals_exhaustive": best_identical,
            "incremental_best_equals_full": inc_identical,
            "best_label": pruned_best.label if pruned_best else None,
            "best_tokens_per_s": (
                pruned_best.tokens_per_s if pruned_best else None
            ),
        },
    }
    if profile:
        payload["profile"] = _profile_sweep(wl, profile_top)
    return payload


def compare_bench(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.25,
) -> list[str]:
    """Regression report vs a committed baseline; empty means clean.

    Gates only :data:`GATED_METRICS` (end-to-end plus build-phase and
    simulate-phase candidates/sec must not drop more than
    ``max_regression`` relative to the baseline; a phase metric absent
    from either payload -- e.g. a schema-1 baseline -- is skipped) plus
    the structural invariants: same mode, and the default sweep's best
    plan must still be identical to both the exhaustive and the
    non-incremental sweeps'.
    """
    failures: list[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current {current.get('mode')!r} vs baseline "
            f"{baseline.get('mode')!r} -- compare like with like"
        )
    if not current.get("equivalence", {}).get("pruned_best_equals_exhaustive"):
        failures.append(
            "pruned sweep no longer reproduces the exhaustive best plan"
        )
    # Default True so schema-1 payloads (no incremental layer) pass.
    if not current.get("equivalence", {}).get(
        "incremental_best_equals_full", True
    ):
        failures.append(
            "incremental sweep no longer reproduces the full-resim best plan"
        )
    cur_metrics = current.get("metrics", {})
    base_metrics = baseline.get("metrics", {})
    for name, higher_is_better in GATED_METRICS:
        cur = cur_metrics.get(name)
        base = base_metrics.get(name)
        if cur is None or base is None or base <= 0:
            continue
        ratio = cur / base if higher_is_better else base / cur
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name} regressed {100.0 * (1.0 - ratio):.0f}%: "
                f"{cur:.1f} vs baseline {base:.1f} "
                f"(allowed: {100.0 * max_regression:.0f}%)"
            )
    return failures


def save_bench(payload: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
