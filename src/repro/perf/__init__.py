"""Tracked performance harness for the tuner hot path (``repro bench``)."""

from repro.perf.bench import (
    bench_workload,
    compare_bench,
    default_out_name,
    run_bench,
)

__all__ = [
    "bench_workload",
    "compare_bench",
    "default_out_name",
    "run_bench",
]
