"""Workload presets, shape parsing and token-budget grids.

The single source of truth for how a paper workload cell is named and
resolved: model presets (:data:`repro.model.config.MODEL_PRESETS`) x GPU
cluster presets (:data:`GPU_CLUSTERS`) x pipeline size x sequence
length.  The CLI, the experiment registry and the auto-tuner all resolve
workloads through this module, so ``--model 7B --gpu H20 -p 8
--seq-len 64k`` means the same cell everywhere.

Two layers live here:

- :class:`Workload` -- one experiment cell, carrying the model/cluster
  objects plus sequence length and micro-batch budget, with helpers to
  derive cost providers and build schedules through the registry.
- :class:`WorkloadGrid` -- the paper's Section 3.1 planning axis: a set
  of ``seq_len x pipeline_size`` points under a fixed token budget per
  iteration (production training fixes tokens/iteration, so longer
  sequences mean fewer micro batches).  Points whose budget cannot fit
  even one micro batch are enumerated as *infeasible points with a
  reason*, never silently dropped -- the same reporting discipline the
  tuner applies to divisor-precluded candidates.

Shape strings accept binary suffixes: ``64k`` == 65536 sequence tokens,
``--budget-tokens 1M`` == ``1 << 20`` tokens per iteration (matching the
paper's "4M-token" Llama-style budgets, spelled ``4M``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cluster.topology import ClusterSpec, a800_cluster, h20_cluster
from repro.costmodel.memory import RecomputeStrategy, model_state_bytes_per_stage
from repro.model.config import MODEL_PRESETS, ModelConfig
from repro.schedules.costs import PipelineCosts
from repro.schedules.ir import Schedule
from repro.schedules.registry import (
    available_schedules,
    get_schedule,
    workload_option_defaults,
)

__all__ = [
    "GPU_CLUSTERS",
    "SEQ_LENS",
    "Workload",
    "WorkloadPoint",
    "WorkloadGrid",
    "parse_seq_len",
    "parse_seq_lens",
    "parse_token_budget",
    "parse_int_list",
    "format_seq_len",
]

#: Sequence lengths of the paper's evaluation (Section 5.1).
SEQ_LENS: tuple[int, ...] = (32768, 65536, 98304, 131072)

#: GPU preset name -> cluster factory, shared by :meth:`Workload.paper`
#: and the ``python -m repro`` CLI so the two resolve identically.
GPU_CLUSTERS = {"H20": h20_cluster, "A800": a800_cluster}

_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "b": 1 << 30}


def _parse_suffixed(text: str, what: str, example: str) -> int:
    """Parse a positive integer with an optional binary k/M/G suffix."""
    raw = text.strip()
    scale = 1
    if raw[-1:].lower() in _SUFFIX:
        scale = _SUFFIX[raw[-1:].lower()]
        raw = raw[:-1]
    try:
        value = int(raw) * scale
    except ValueError:
        raise ValueError(f"invalid {what} {text!r} (try {example})") from None
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {text!r}")
    return value


def parse_seq_len(text: str) -> int:
    """Parse a sequence length, accepting a ``k`` suffix (``64k`` == 65536)."""
    return _parse_suffixed(text, "sequence length", "65536 or 64k")


def parse_token_budget(text: str) -> int:
    """Parse a per-iteration token budget (``1M`` == ``1 << 20``, ``4M``...)."""
    return _parse_suffixed(text, "token budget", "4M or 1048576")


def parse_seq_lens(text: str) -> tuple[int, ...]:
    """Parse a comma-separated sequence-length list (``16k,32k,64k``)."""
    items = [s for s in (t.strip() for t in text.split(",")) if s]
    if not items:
        raise ValueError(f"empty sequence-length list {text!r}")
    return tuple(parse_seq_len(s) for s in items)


def parse_int_list(text: str) -> tuple[int, ...]:
    """Parse a comma-separated integer list (``4,8``)."""
    try:
        items = tuple(int(s) for s in text.split(",") if s.strip())
    except ValueError:
        raise ValueError(f"invalid integer list {text!r} (try 4,8)") from None
    if not items:
        raise ValueError(f"empty integer list {text!r}")
    return items


def format_seq_len(seq_len: int) -> str:
    """``65536`` -> ``"64k"`` (falls back to the plain number)."""
    if seq_len % 1024 == 0:
        return f"{seq_len // 1024}k"
    return str(seq_len)


@dataclass
class Workload:
    """One experiment cell: model x cluster x sequence length x pipeline size.

    Encodes the evaluation protocol of Section 5.1: one pipeline stage
    per node, Megatron sequence parallelism across the node's GPUs,
    micro-batch size 1 and a global batch of ``2 x pipeline size`` micro
    batches unless overridden.
    """

    model: ModelConfig
    cluster: ClusterSpec
    seq_len: int
    micro_batch: int = 1
    num_micro_batches: int | None = None  # default: 2 x pipeline size

    def __post_init__(self) -> None:
        if self.num_micro_batches is None:
            self.num_micro_batches = 2 * self.cluster.num_stages

    @classmethod
    def paper(
        cls,
        model_name: str,
        gpu: str,
        num_stages: int,
        seq_len: int,
        micro_batch: int = 1,
        num_micro_batches: int | None = None,
    ) -> "Workload":
        cluster = GPU_CLUSTERS[gpu](num_stages)
        return cls(
            model=MODEL_PRESETS[model_name],
            cluster=cluster,
            seq_len=seq_len,
            micro_batch=micro_batch,
            num_micro_batches=num_micro_batches,
        )

    @property
    def p(self) -> int:
        return self.cluster.num_stages

    @property
    def tokens_per_iteration(self) -> float:
        return float(self.num_micro_batches) * self.micro_batch * self.seq_len

    def costs(self, recompute: RecomputeStrategy, **kw) -> PipelineCosts:
        return PipelineCosts(
            model=self.model,
            cluster=self.cluster,
            micro_batch=self.micro_batch,
            seq_len=self.seq_len,
            recompute=recompute,
            **kw,
        )

    def static_memory(self) -> float:
        return model_state_bytes_per_stage(
            self.model, self.p, sp=self.cluster.sequence_parallel_size
        )

    def build(self, method: str, **kw) -> Schedule:
        """Build one method's schedule under the paper's settings.

        ``method`` is resolved through the schedule registry
        (:mod:`repro.schedules.registry`); the spec supplies the
        recomputation strategy it is designed around (baselines run
        without recomputation, Section 5.1; HelixPipe with
        recomputation-without-attention) and any workload-derived
        options it needs (AdaPipe plans under the GPU memory cap).
        Pass ``recompute=...`` or any spec option to override.
        """
        try:
            spec = get_schedule(method)
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; registered: {available_schedules()}"
            ) from None
        recompute = kw.pop("recompute", spec.default_recompute)
        opts = dict(kw)
        for name, value in workload_option_defaults(spec, self).items():
            opts.setdefault(name, value)
        return spec.build(
            (self.p, self.num_micro_batches), self.costs(recompute), **opts
        )


@dataclass(frozen=True)
class WorkloadPoint:
    """One enumerated grid point: a workload shape or an infeasibility.

    ``num_micro_batches`` is the point's micro-batch budget (rounded
    down from the grid's token budget when one is set); ``reason`` is
    ``None`` for real points and explains why the point cannot run at
    all otherwise (e.g. the token budget is below one micro batch of
    tokens).  Infeasible points never build a :class:`Workload`.
    """

    model: str
    gpu: str
    p: int
    seq_len: int
    micro_batch: int = 1
    num_micro_batches: int = 0
    reason: str | None = None

    @property
    def feasible(self) -> bool:
        return self.reason is None

    @property
    def label(self) -> str:
        return f"{self.model}/{self.gpu} p={self.p} s={format_seq_len(self.seq_len)}"

    def workload(self) -> Workload:
        """Resolve the point to a :class:`Workload` (feasible points only)."""
        if not self.feasible:
            raise ValueError(f"infeasible workload point {self.label}: {self.reason}")
        return Workload.paper(
            self.model,
            self.gpu,
            self.p,
            self.seq_len,
            micro_batch=self.micro_batch,
            num_micro_batches=self.num_micro_batches,
        )


@dataclass(frozen=True)
class WorkloadGrid:
    """A ``seq_len x pipeline_size`` sweep under a fixed token budget.

    The paper's Section 3.1 planning problem: tokens per iteration are
    fixed by the training recipe, so each ``(seq_len, p)`` point runs
    ``budget_tokens // (seq_len * micro_batch)`` micro batches.  With
    ``budget_tokens=None`` every point uses the protocol default of
    ``2 x p`` micro batches instead.

    Enumeration is total: a point whose budget cannot fit a single
    micro batch is yielded with an infeasibility reason rather than
    omitted, so downstream sweeps (and their reports) account for every
    requested cell.
    """

    model: str = "7B"
    gpu: str = "H20"
    seq_lens: tuple[int, ...] = SEQ_LENS
    pipeline_sizes: tuple[int, ...] = (4, 8)
    micro_batch: int = 1
    budget_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_PRESETS:
            raise ValueError(
                f"unknown model preset {self.model!r}; "
                f"available: {sorted(MODEL_PRESETS)}"
            )
        if self.gpu not in GPU_CLUSTERS:
            raise ValueError(
                f"unknown GPU preset {self.gpu!r}; "
                f"available: {sorted(GPU_CLUSTERS)}"
            )
        if not self.seq_lens:
            raise ValueError("WorkloadGrid needs at least one sequence length")
        if not self.pipeline_sizes:
            raise ValueError("WorkloadGrid needs at least one pipeline size")
        if any(s <= 0 for s in self.seq_lens):
            raise ValueError(f"sequence lengths must be positive: {self.seq_lens}")
        if any(p <= 0 for p in self.pipeline_sizes):
            raise ValueError(f"pipeline sizes must be positive: {self.pipeline_sizes}")
        if self.micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        if self.budget_tokens is not None and self.budget_tokens <= 0:
            raise ValueError("budget_tokens must be positive")

    def __len__(self) -> int:
        return len(self.seq_lens) * len(self.pipeline_sizes)

    @property
    def label(self) -> str:
        budget = (
            f"budget {self.budget_tokens} tokens"
            if self.budget_tokens is not None
            else "budget 2p micro-batches"
        )
        seqs = ",".join(format_seq_len(s) for s in self.seq_lens)
        ps = ",".join(str(p) for p in self.pipeline_sizes)
        return f"{self.model}/{self.gpu} s in {{{seqs}}} x p in {{{ps}}}, {budget}"

    def points(self) -> list["WorkloadPoint"]:
        return list(self.iter_points())

    def iter_points(self) -> Iterator["WorkloadPoint"]:
        """Yield every grid point in (seq_len, p) order, infeasible included."""
        for seq_len in self.seq_lens:
            for p in self.pipeline_sizes:
                if self.budget_tokens is None:
                    m = 2 * p
                    reason = None
                else:
                    m = self.budget_tokens // (seq_len * self.micro_batch)
                    reason = (
                        None
                        if m >= 1
                        else (
                            f"token budget {self.budget_tokens} < one "
                            f"micro batch of {seq_len * self.micro_batch} tokens"
                        )
                    )
                yield WorkloadPoint(
                    model=self.model,
                    gpu=self.gpu,
                    p=p,
                    seq_len=seq_len,
                    micro_batch=self.micro_batch,
                    num_micro_batches=m if reason is None else 0,
                    reason=reason,
                )
