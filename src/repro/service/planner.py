"""Planner core of the service: request parsing, dedup, background sweeps.

:class:`PlannerService` answers "best schedule for (model, gpu, p,
seq_len, token budget)" from a warm shared :class:`~repro.tuner.cache.
CostCache` -- the serving-side counterpart of the offline schedule
search.  It is transport-agnostic: the HTTP layer
(:mod:`repro.service.api`) translates requests to the three entry
points :meth:`~PlannerService.plan`, :meth:`~PlannerService.start_sweep`
and :meth:`~PlannerService.stats`, and tests drive them directly.

Three properties make it a service rather than a loop around
:func:`~repro.tuner.autotune`:

- **Request dedup.**  Identical in-flight plan requests coalesce onto
  one evaluation: the first arrival (the *leader*) runs the sweep, every
  concurrent identical request waits on the leader's event and shares
  its result.  The dedup key is the workload cache key
  (:func:`repro.schedules.registry.workload_cache_key`) plus the
  sweep-shaping parameters -- response shaping (``top``) is per-request
  and never splits the key.  N identical concurrent requests therefore
  trigger exactly one cold evaluation; arrivals after the leader
  finishes are served warm from the cost cache.
- **Serialized evaluation.**  One sweep runs at a time
  (``_eval_lock``): the tuner's IR cache and telemetry are
  single-writer structures, and a plan sweep is CPU-bound anyway --
  concurrency buys throughput through the shared cache, not through
  parallel sweeps.  ``workers=N`` still parallelises *within* a sweep.
- **Background sweeps.**  :meth:`start_sweep` pre-fills a workload
  neighbourhood (a :class:`~repro.workloads.WorkloadGrid`) on a daemon
  thread through :func:`~repro.tuner.grid.tune_grid` into the same
  cache, so the named plan queries it anticipates are answered warm.

Every response is canonical JSON-ready data; notably
:func:`plan_payload` is the single serialisation of a
:class:`~repro.tuner.autotune.PlanResult`, so a service answer can be
compared byte-for-byte against a direct :func:`autotune` run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.model.config import MODEL_PRESETS
from repro.schedules.registry import workload_cache_key
from repro.tuner.autotune import PlanResult, autotune
from repro.tuner.cache import CostCache
from repro.tuner.grid import tune_grid
from repro.tuner.ircache import ScheduleIRCache
from repro.tuner.telemetry import SweepTelemetry
from repro.service.telemetry import ServiceTelemetry
from repro.workloads import (
    GPU_CLUSTERS,
    Workload,
    WorkloadGrid,
    parse_seq_len,
    parse_token_budget,
)

__all__ = ["PlanQuery", "PlannerService", "parse_plan_request", "plan_payload"]

_GIB = float(1 << 30)

#: Fields a ``POST /v1/plan`` body may carry.
_PLAN_FIELDS = frozenset(
    {
        "model",
        "gpu",
        "p",
        "seq_len",
        "micro_batch",
        "num_micro_batches",
        "schedules",
        "memory_cap_gib",
        "options",
        "prune",
        "top",
    }
)

#: Fields a ``POST /v1/sweep`` body may carry.
_SWEEP_FIELDS = frozenset(
    {
        "model",
        "gpu",
        "seq_lens",
        "pipeline_sizes",
        "micro_batch",
        "budget_tokens",
        "schedules",
        "options",
    }
)


def _parse_int(payload: Mapping[str, Any], name: str, default: int) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name!r} must be a positive integer, got {value!r}")
    return value


def _parse_seq(value: Any, name: str = "seq_len") -> int:
    """A sequence length given as an int or a k-suffixed string."""
    if isinstance(value, str):
        return parse_seq_len(value)
    if isinstance(value, int) and not isinstance(value, bool) and value > 0:
        return value
    raise ValueError(
        f"{name!r} must be a positive integer or a k-suffixed string "
        f"(e.g. '64k'), got {value!r}"
    )


def _parse_schedules(payload: Mapping[str, Any]) -> tuple[str, ...] | None:
    value = payload.get("schedules")
    if value is None:
        return None
    if isinstance(value, str):
        value = [s.strip() for s in value.split(",") if s.strip()]
    if not isinstance(value, (list, tuple)) or not value or not all(
        isinstance(s, str) for s in value
    ):
        raise ValueError(
            f"'schedules' must be a non-empty list of names, got {value!r}"
        )
    return tuple(value)


def _check_fields(
    payload: Mapping[str, Any], allowed: frozenset[str], what: str
) -> None:
    if not isinstance(payload, Mapping):
        raise ValueError(f"{what} request body must be a JSON object")
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {what} request field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class PlanQuery:
    """One normalized plan request.

    ``top`` shapes the response only (how many ranked rows to return);
    it is excluded from :meth:`dedup_key`, so requests differing only in
    ``top`` coalesce onto the same evaluation.
    """

    model: str
    gpu: str
    p: int
    seq_len: int
    micro_batch: int = 1
    num_micro_batches: int | None = None
    schedules: tuple[str, ...] | None = None
    memory_cap_gib: float | None = None
    options: bool = True
    prune: bool = True
    top: int | None = None

    def workload(self) -> Workload:
        return Workload.paper(
            self.model,
            self.gpu,
            self.p,
            self.seq_len,
            micro_batch=self.micro_batch,
            num_micro_batches=self.num_micro_batches,
        )

    def memory_cap_bytes(self, workload: Workload) -> float:
        if self.memory_cap_gib is not None:
            return float(self.memory_cap_gib) * _GIB
        return float(workload.cluster.node.gpu.hbm_bytes)

    def dedup_key(self, workload: Workload) -> tuple:
        return (
            workload_cache_key(workload),
            self.memory_cap_bytes(workload),
            self.schedules,
            self.options,
            self.prune,
        )


def parse_plan_request(payload: Mapping[str, Any]) -> PlanQuery:
    """Validate a ``POST /v1/plan`` body into a :class:`PlanQuery`.

    Raises :class:`ValueError` with a pointed message on unknown fields,
    unknown presets or malformed values -- the HTTP layer maps those to
    400 responses verbatim.
    """
    _check_fields(payload, _PLAN_FIELDS, "plan")
    model = payload.get("model", "7B")
    if model not in MODEL_PRESETS:
        raise ValueError(
            f"unknown model preset {model!r}; available: {sorted(MODEL_PRESETS)}"
        )
    gpu = payload.get("gpu", "H20")
    if gpu not in GPU_CLUSTERS:
        raise ValueError(
            f"unknown GPU preset {gpu!r}; available: {sorted(GPU_CLUSTERS)}"
        )
    num_micro_batches = payload.get("num_micro_batches")
    if num_micro_batches is not None:
        num_micro_batches = _parse_int(payload, "num_micro_batches", 0)
    cap = payload.get("memory_cap_gib")
    if cap is not None and (
        isinstance(cap, bool) or not isinstance(cap, (int, float)) or cap < 0
    ):
        raise ValueError(
            f"'memory_cap_gib' must be a non-negative number, got {cap!r}"
        )
    top = payload.get("top")
    if top is not None:
        top = _parse_int(payload, "top", 0)
    for flag in ("options", "prune"):
        if not isinstance(payload.get(flag, True), bool):
            raise ValueError(
                f"{flag!r} must be a boolean, got {payload[flag]!r}"
            )
    return PlanQuery(
        model=model,
        gpu=gpu,
        p=_parse_int(payload, "p", 8),
        seq_len=_parse_seq(payload.get("seq_len", 65536)),
        micro_batch=_parse_int(payload, "micro_batch", 1),
        num_micro_batches=num_micro_batches,
        schedules=_parse_schedules(payload),
        memory_cap_gib=None if cap is None else float(cap),
        options=payload.get("options", True),
        prune=payload.get("prune", True),
        top=top,
    )


def plan_payload(plan: PlanResult) -> dict[str, Any]:
    """The canonical JSON-ready form of one :class:`PlanResult` row.

    This is the byte-level contract of the service: serialising a
    direct :func:`~repro.tuner.autotune` result through this function
    yields exactly the rows ``POST /v1/plan`` returns for the same
    workload (deterministic evaluation + shared cache records).
    """
    cand = plan.candidate
    return {
        "schedule": cand.schedule,
        "recompute": cand.recompute.value,
        "num_micro_batches": cand.num_micro_batches,
        "options": {name: value for name, value in cand.options},
        "label": plan.label,
        "feasible": plan.feasible,
        "reason": plan.reason,
        "iteration_time": plan.iteration_time,
        "tokens_per_s": plan.tokens_per_s,
        "peak_memory_bytes": plan.peak_memory_bytes,
        "bubble_fraction": plan.bubble_fraction,
    }


@dataclass
class _Inflight:
    """One in-progress plan evaluation awaited by coalesced requests."""

    done: threading.Event = field(default_factory=threading.Event)
    plans: list[PlanResult] | None = None
    cold: bool = False
    error: BaseException | None = None
    waiters: int = 0


class PlannerService:
    """Long-running planner over one shared cost cache.

    Parameters
    ----------
    cache:
        The shared :class:`CostCache` (typically sqlite-backed via
        :meth:`CostCache.open`, so evaluations persist and concurrent
        processes share them).  Defaults to a fresh in-memory cache.
    workers:
        Process-pool size for cold candidate evaluation *within* one
        sweep (``autotune(..., workers=N)``); None evaluates serially.
    save_path, save_backend:
        When set, :meth:`save_cache` persists the cache there -- the
        HTTP layer calls it on shutdown, and background sweeps call it
        on completion (for the JSON backend; a sqlite store persists
        continuously through write-through).
    """

    def __init__(
        self,
        cache: CostCache | None = None,
        *,
        workers: int | None = None,
        save_path: str | None = None,
        save_backend: str | None = None,
    ) -> None:
        self.cache = cache if cache is not None else CostCache()
        self.workers = workers
        self.save_path = save_path
        self.save_backend = save_backend
        self.telemetry = ServiceTelemetry()
        self.sweep_telemetry = SweepTelemetry()
        self.started_at = time.time()
        self._ir_cache = ScheduleIRCache()
        self._eval_lock = threading.Lock()
        self._inflight_lock = threading.Lock()
        self._inflight: dict[tuple, _Inflight] = {}  # guarded-by: _inflight_lock
        self._sweeps: dict[str, dict[str, Any]] = {}  # guarded-by: _inflight_lock
        self._sweep_seq = 0  # guarded-by: _inflight_lock
        self._threads: list[threading.Thread] = []  # guarded-by: _inflight_lock
        self._closed = False  # guarded-by: _inflight_lock
        self._save_lock = threading.Lock()

    # -- planning ---------------------------------------------------------

    def _evaluate(self, query: PlanQuery, workload: Workload) -> tuple[list[PlanResult], bool]:
        """Run the sweep for ``query``; returns (plans, ran_cold_evals)."""
        # _eval_lock exists to serialize evaluation; see the class docstring.
        with self._eval_lock:  # lint-code: allow(blocking-under-lock) -- deliberate serialization
            misses_before = self.cache.stats.misses
            plans = autotune(
                workload,
                query.memory_cap_bytes(workload),
                schedules=list(query.schedules) if query.schedules else None,
                option_grids=None if query.options else {},
                cache=self.cache,
                workers=self.workers,
                prune=query.prune,
                ir_cache=self._ir_cache,
                telemetry=self.sweep_telemetry,
            )
            cold = self.cache.stats.misses > misses_before
        return plans, cold

    def plan(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one plan request (the ``POST /v1/plan`` body)."""
        t0 = time.perf_counter()
        query = parse_plan_request(payload)
        workload = query.workload()
        key = query.dedup_key(workload)

        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Inflight()
            else:
                flight.waiters += 1

        if leader:
            try:
                flight.plans, flight.cold = self._evaluate(query, workload)
            except BaseException as err:
                flight.error = err
                raise
            finally:
                with self._inflight_lock:
                    del self._inflight[key]
                flight.done.set()
            outcome = "cold" if flight.cold else "warm"
        else:
            flight.done.wait()
            if flight.error is not None:
                # The leader's failure is this request's failure too --
                # same query, same deterministic evaluation.
                raise ValueError(str(flight.error))
            outcome = "coalesced"

        plans = flight.plans
        assert plans is not None
        elapsed = time.perf_counter() - t0
        self.telemetry.record_plan(outcome, elapsed)

        feasible = [r for r in plans if r.feasible]
        shown = plans if query.top is None else plans[: query.top]
        stats = self.cache.stats
        return {
            "workload": {
                "model": query.model,
                "gpu": query.gpu,
                "p": workload.p,
                "seq_len": workload.seq_len,
                "micro_batch": workload.micro_batch,
                "num_micro_batches": workload.num_micro_batches,
                "memory_cap_bytes": query.memory_cap_bytes(workload),
            },
            "best": plan_payload(feasible[0]) if feasible else None,
            "plans": [plan_payload(r) for r in shown],
            "plan_count": len(plans),
            "feasible_count": len(feasible),
            "outcome": outcome,
            "coalesced": outcome == "coalesced",
            "elapsed_s": round(elapsed, 6),
            "cache": {
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "pruned": stats.pruned,
                "entries": len(self.cache),
            },
        }

    # -- background sweeps ------------------------------------------------

    def start_sweep(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Launch a background neighbourhood pre-fill (``POST /v1/sweep``).

        The body names a workload neighbourhood -- ``seq_lens`` x
        ``pipeline_sizes`` under an optional ``budget_tokens`` -- which
        a daemon thread sweeps through :func:`tune_grid` into the shared
        cache.  Returns immediately with the sweep's id and shape;
        progress is visible under ``/v1/sweeps`` (and in ``/v1/stats``).
        """
        _check_fields(payload, _SWEEP_FIELDS, "sweep")
        seq_lens = payload.get("seq_lens", [65536])
        if not isinstance(seq_lens, (list, tuple)) or not seq_lens:
            raise ValueError(
                f"'seq_lens' must be a non-empty list, got {seq_lens!r}"
            )
        pipeline_sizes = payload.get("pipeline_sizes", [8])
        if not isinstance(pipeline_sizes, (list, tuple)) or not pipeline_sizes:
            raise ValueError(
                f"'pipeline_sizes' must be a non-empty list, got {pipeline_sizes!r}"
            )
        budget = payload.get("budget_tokens")
        if isinstance(budget, str):
            budget = parse_token_budget(budget)
        grid = WorkloadGrid(
            model=payload.get("model", "7B"),
            gpu=payload.get("gpu", "H20"),
            seq_lens=tuple(_parse_seq(s, "seq_lens") for s in seq_lens),
            pipeline_sizes=tuple(int(p) for p in pipeline_sizes),
            micro_batch=_parse_int(payload, "micro_batch", 1),
            budget_tokens=budget,
        )
        schedules = _parse_schedules(payload)
        options = payload.get("options", True)
        if not isinstance(options, bool):
            raise ValueError(f"'options' must be a boolean, got {options!r}")

        with self._inflight_lock:
            if self._closed:
                raise ValueError("service is shutting down")
            self._sweep_seq += 1
            sweep_id = f"sweep-{self._sweep_seq}"
        record: dict[str, Any] = {
            "id": sweep_id,
            "state": "running",
            "grid": grid.label,
            "points": len(grid),
            "candidates": None,
            "error": None,
            "started_s": round(time.time() - self.started_at, 3),
            "elapsed_s": None,
        }
        thread = threading.Thread(
            target=self._run_sweep,
            args=(record, grid, schedules, options),
            name=sweep_id,
            daemon=True,
        )
        with self._inflight_lock:
            self._sweeps[sweep_id] = record
            # Drop finished sweep threads so the list stays bounded; the
            # records themselves are kept for /v1/sweeps history.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
        self.telemetry.record_sweep("started")
        thread.start()
        return {"sweep": sweep_id, "state": "running", "points": len(grid)}

    def _run_sweep(
        self,
        record: dict[str, Any],
        grid: WorkloadGrid,
        schedules: tuple[str, ...] | None,
        options: bool,
    ) -> None:
        t0 = time.perf_counter()
        try:
            with self._eval_lock:  # lint-code: allow(blocking-under-lock) -- deliberate serialization
                plans = tune_grid(
                    grid,
                    schedules=list(schedules) if schedules else None,
                    option_grids=None if options else {},
                    cache=self.cache,
                    workers=self.workers,
                    ir_cache=self._ir_cache,
                    telemetry=self.sweep_telemetry,
                )
            record["candidates"] = len(plans)
            record["state"] = "done"
            self.telemetry.record_sweep("completed")
            self.save_cache()
        except Exception as err:  # surfaced via /v1/sweeps, not a crash
            record["error"] = str(err)
            record["state"] = "failed"
            self.telemetry.record_sweep("failed")
        finally:
            record["elapsed_s"] = round(time.perf_counter() - t0, 3)

    def sweeps(self) -> list[dict[str, Any]]:
        """Every sweep launched by this process, oldest first."""
        with self._inflight_lock:
            return [dict(r) for r in self._sweeps.values()]

    # -- lifecycle --------------------------------------------------------

    def close(self, timeout: float | None = 30.0) -> int | None:
        """Drain background work and release resources, deterministically.

        Rejects new sweeps, joins every live sweep thread (bounded by
        ``timeout`` seconds each -- sweeps are daemon threads, so a
        stuck one is abandoned rather than hanging shutdown forever),
        persists the cache a final time and closes the store's sqlite
        connections.  Idempotent; the HTTP layer calls it from signal
        handling so a SIGTERM'd service never dies mid-write.  Returns
        the final save's entry count (None without a ``save_path``).
        """
        with self._inflight_lock:
            self._closed = True
            threads = list(self._threads)
            self._threads = []
        for thread in threads:
            thread.join(timeout)
        saved = self.save_cache()
        self.cache.close()
        return saved

    # -- introspection ----------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "cache_entries": len(self.cache),
        }

    def stats(self) -> dict[str, Any]:
        stats = self.cache.stats
        store = self.cache.store
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "telemetry": self.telemetry.as_dict(),
            "cache": {
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "pruned": stats.pruned,
                "hit_rate": stats.hit_rate,
                "entries": len(self.cache),
                "backend": "sqlite" if store is not None else "memory/json",
                "path": store.path if store is not None else self.save_path,
            },
            "sweep_telemetry": self.sweep_telemetry.as_dict(),
            "sweeps": self.sweeps(),
        }

    def save_cache(self) -> int | None:
        """Persist the cache to ``save_path`` (no-op without one).

        The sqlite backend persists continuously through write-through;
        this explicitly flushes adopted/merged entries too, and is what
        gives the JSON backend its durability (shutdown + post-sweep).
        """
        if not self.save_path:
            return None
        with self._save_lock:  # lint-code: allow(blocking-under-lock) -- serializes whole-store rewrites
            return self.cache.save(self.save_path, backend=self.save_backend)
