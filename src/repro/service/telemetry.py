"""Per-request rate/usage telemetry for the planner service.

:class:`ServiceTelemetry` is the request-side companion of
:class:`repro.tuner.telemetry.SweepTelemetry` and follows the same
shape discipline -- a flat counter dataclass with ``as_dict()`` /
``reset()`` -- so the ``/v1/stats`` payload nests both without
translation: request counters here, per-phase sweep wall-clock there.

Unlike its tuner sibling (which is fed by one serial sweep at a time),
this object is incremented from every handler thread of the
:class:`http.server.ThreadingHTTPServer`, so mutations go through the
small internal lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["ServiceTelemetry"]


@dataclass
class ServiceTelemetry:
    """Thread-safe request counters for one planner service process."""

    requests: int = 0  # guarded-by: _lock
    errors: int = 0  # guarded-by: _lock
    #: Plan requests, split by how they were served: a *cold* request
    #: ran at least one candidate evaluation; a *warm* one was answered
    #: entirely from the cost cache; a *coalesced* one piggybacked on an
    #: identical in-flight evaluation (plans == cold + warm + coalesced).
    plans: int = 0  # guarded-by: _lock
    plans_cold: int = 0  # guarded-by: _lock
    plans_warm: int = 0  # guarded-by: _lock
    plans_coalesced: int = 0  # guarded-by: _lock
    #: Total wall-clock seconds spent answering plan requests.
    plan_s: float = 0.0  # guarded-by: _lock
    sweeps_started: int = 0  # guarded-by: _lock
    sweeps_completed: int = 0  # guarded-by: _lock
    sweeps_failed: int = 0  # guarded-by: _lock
    by_endpoint: dict = field(default_factory=dict)  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests += 1
            self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_plan(self, outcome: str, elapsed_s: float) -> None:
        """Count one answered plan request.

        ``outcome`` is ``"cold"``, ``"warm"`` or ``"coalesced"``.
        """
        field_name = f"plans_{outcome}"
        with self._lock:
            self.plans += 1
            setattr(self, field_name, getattr(self, field_name) + 1)
            self.plan_s += elapsed_s

    def record_sweep(self, outcome: str) -> None:
        """Count one background sweep ``"started"``/``"completed"``/``"failed"``."""
        field_name = f"sweeps_{outcome}"
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + 1)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (``/v1/stats`` embeds this)."""
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "plans": self.plans,
                "plans_cold": self.plans_cold,
                "plans_warm": self.plans_warm,
                "plans_coalesced": self.plans_coalesced,
                "plan_s": self.plan_s,
                "sweeps_started": self.sweeps_started,
                "sweeps_completed": self.sweeps_completed,
                "sweeps_failed": self.sweeps_failed,
                "by_endpoint": dict(self.by_endpoint),
            }

    def reset(self) -> None:
        with self._lock:
            self.requests = self.errors = 0
            self.plans = self.plans_cold = 0
            self.plans_warm = self.plans_coalesced = 0
            self.plan_s = 0.0
            self.sweeps_started = self.sweeps_completed = self.sweeps_failed = 0
            self.by_endpoint.clear()
