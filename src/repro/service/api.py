"""Stdlib HTTP/JSON transport for the planner service.

A thin :class:`http.server.ThreadingHTTPServer` front end over
:class:`repro.service.planner.PlannerService` -- every concern beyond
"decode JSON, dispatch, encode JSON" (dedup, sweeps, telemetry) lives in
the planner, so tests exercise the logic without sockets and this
module stays boring.  Endpoints:

====================  =====================================================
``GET /v1/healthz``   Liveness: status, uptime, cache entry count.
``GET /v1/stats``     Request telemetry + cache hit/miss split + sweeps.
``GET /v1/sweeps``    Background sweeps launched by this process.
``POST /v1/plan``     Resolve a workload to ranked plans (coalescing).
``POST /v1/sweep``    Launch a background neighbourhood pre-fill.
====================  =====================================================

Errors are JSON too: a malformed or unresolvable request gets ``400``
with the validator's message, unknown paths ``404``, wrong methods
``405``.  The server is threaded with daemon handler threads, so slow
plan evaluations never block health checks and Ctrl-C exits promptly.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.planner import PlannerService

__all__ = ["PlannerAPIHandler", "PlannerServer", "create_server"]

#: Largest request body the server will read, to bound a hostile or
#: buggy client (a plan request is a few hundred bytes).
_MAX_BODY_BYTES = 1 << 20


class PlannerServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`PlannerService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PlannerService) -> None:
        super().__init__(address, PlannerAPIHandler)
        self.service = service


class PlannerAPIHandler(BaseHTTPRequestHandler):
    """Route table and JSON encode/decode for :class:`PlannerServer`."""

    server: PlannerServer
    protocol_version = "HTTP/1.1"
    #: Routes as ``(method, path) -> handler-method name``.
    ROUTES = {
        ("GET", "/v1/healthz"): "_handle_healthz",
        ("GET", "/v1/stats"): "_handle_stats",
        ("GET", "/v1/sweeps"): "_handle_sweeps",
        ("POST", "/v1/plan"): "_handle_plan",
        ("POST", "/v1/sweep"): "_handle_sweep",
    }

    # -- plumbing ---------------------------------------------------------

    @property
    def service(self) -> PlannerService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; telemetry (not stderr) is the access record.
        pass

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self.service.telemetry.record_error()
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as err:
            raise ValueError(f"request body is not valid JSON: {err}") from None

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        name = self.ROUTES.get((method, path))
        if name is None:
            known = {p for (_, p) in self.ROUTES}
            if path in known:
                self._send_error_json(405, f"{method} not allowed on {path}")
            else:
                self._send_error_json(404, f"unknown endpoint {path}")
            return
        self.service.telemetry.record_request(path)
        try:
            getattr(self, name)()
        except ValueError as err:
            self._send_error_json(400, str(err))
        except Exception as err:  # keep the server up; report the request
            self._send_error_json(500, f"{type(err).__name__}: {err}")

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        self._dispatch("POST")

    # -- endpoints --------------------------------------------------------

    def _handle_healthz(self) -> None:
        self._send_json(200, self.service.healthz())

    def _handle_stats(self) -> None:
        self._send_json(200, self.service.stats())

    def _handle_sweeps(self) -> None:
        self._send_json(200, {"sweeps": self.service.sweeps()})

    def _handle_plan(self) -> None:
        self._send_json(200, self.service.plan(self._read_body()))

    def _handle_sweep(self) -> None:
        self._send_json(202, self.service.start_sweep(self._read_body()))


def create_server(
    host: str, port: int, service: PlannerService
) -> PlannerServer:
    """Bind a :class:`PlannerServer`; ``port=0`` picks a free port."""
    return PlannerServer((host, port), service)
