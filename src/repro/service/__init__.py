"""Planner-as-a-service: an HTTP plan API over the shared cost cache.

The offline story -- ``repro tune`` sweeping a grid, saving a cost
cache -- answers "which schedule should *this* job use" one shell
invocation at a time.  This package turns the same tuner into a
long-running service: ``repro serve`` starts a stdlib HTTP/JSON server
(:mod:`repro.service.api`) whose ``POST /v1/plan`` resolves a workload
(preset names + shape) through :func:`repro.tuner.autotune` against one
shared, typically sqlite-backed :class:`~repro.tuner.cache.CostCache`.
Identical in-flight requests coalesce onto a single evaluation
(:mod:`repro.service.planner`), background sweeps pre-fill workload
neighbourhoods, and ``GET /v1/stats`` exposes per-request telemetry
(:mod:`repro.service.telemetry`) alongside the cache's hit/miss split.

>>> from repro.service import PlannerService, create_server
>>> from repro.tuner import CostCache
>>> service = PlannerService(CostCache.open("plans.sqlite"))
>>> server = create_server("127.0.0.1", 0, service)   # port 0 = ephemeral
>>> server.serve_forever()                            # doctest: +SKIP

The service adds no dependencies: transport is
:class:`http.server.ThreadingHTTPServer`, storage is :mod:`sqlite3`.
"""

from repro.service.api import PlannerAPIHandler, PlannerServer, create_server
from repro.service.planner import (
    PlannerService,
    PlanQuery,
    parse_plan_request,
    plan_payload,
)
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "PlannerAPIHandler",
    "PlannerServer",
    "PlannerService",
    "PlanQuery",
    "ServiceTelemetry",
    "create_server",
    "parse_plan_request",
    "plan_payload",
]
