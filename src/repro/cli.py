"""Registry-driven command line for the HelixPipe reproduction.

``python -m repro`` exposes the schedule registry, the discrete-event
simulator and the auto-tuner without writing a script.  Workloads are
resolved from the paper's presets (:data:`repro.model.config.MODEL_PRESETS`
models x :data:`repro.experiments.common.GPU_CLUSTERS` clusters), so an
experiment cell is four flags.

Commands
--------
``list``
    Every registered schedule with family, tunability and description::

        python -m repro list

``describe SCHEDULE``
    One spec in full: option schema with defaults, the tuner's option
    grid, admissible recompute strategies, micro-batch divisor::

        python -m repro describe helix -p 8

``build SCHEDULE``
    Build (and verify) one schedule for a workload and report its
    shape::

        python -m repro build helix --model 7B --gpu H20 -p 8 --seq-len 64k

``simulate SCHEDULE``
    Build + simulate one schedule; prints iteration time, throughput,
    peak memory and bubble fraction::

        python -m repro simulate zb1p --model 7B --gpu H20 -p 8 --seq-len 64k

``lint``
    Static analysis over the schedule IR: build every registered
    schedule (or ``--schedules A,B``) at each ``-p`` and run the full
    pass pipeline -- executability, communication-hazard, static
    peak-memory and dead-code analyses -- without simulating.  Exits
    non-zero on ERROR findings; ``--strict`` fails on warnings too::

        python -m repro lint
        python -m repro lint --schedules helix,zb1p -p 2,4 --json

``lint-code``
    The same idea pointed at the repo's own sources: the concurrency
    lint (:mod:`repro.devtools.concurrency`) sweeps the threaded
    packages (default ``src/repro/service`` + ``src/repro/tuner``) and
    runs the lock-discipline passes -- guarded-by fields, lock-order
    cycles, blocking calls under locks, thread lifecycle hygiene.
    Exits non-zero on ERROR findings; ``--strict`` fails on warnings
    too::

        python -m repro lint-code
        python -m repro lint-code --strict --json --paths src/repro

``tune``
    Run :func:`repro.tuner.autotune` over the full candidate grid and
    print the ranked plan table.  ``--workers N`` evaluates cold
    candidates in a process pool; ``--cache PATH`` loads a persisted
    cost cache before the sweep and saves it after, so repeated sweeps
    (and sweeps from other processes) reuse every evaluation::

        python -m repro tune --model 7B --gpu H20 -p 8 --seq-len 64k \\
            --workers 4 --cache sweep.json

    Passing several sequence lengths or pipeline sizes -- or a token
    budget -- turns the sweep into workload-grid planning
    (:func:`repro.tuner.grid.tune_grid`): every ``seq_len x p`` point
    runs the schedule grid at the micro-batch count its token budget
    allows, and one ranking across all points answers "which shape
    *and* schedule should this run use"::

        python -m repro tune --budget-tokens 1M --seq-lens 16k,32k,64k -p 4,8

    ``--smoke`` shrinks the grid to a seconds-fast sanity sweep for CI.

    ``--cache`` selects its store backend by suffix: ``.json`` is the
    eager atomic-rewrite store, ``.sqlite``/``.sqlite3``/``.db`` the
    lazy indexed store that supports concurrent writers; ``--backend``
    overrides the suffix.

``serve``
    Run the planner as a long-lived HTTP/JSON service over a shared
    cost cache (:mod:`repro.service`): ``POST /v1/plan`` resolves a
    workload through the tuner (identical in-flight requests coalesce
    onto one evaluation), ``POST /v1/sweep`` pre-fills a workload
    neighbourhood in the background, ``GET /v1/stats`` reports request
    telemetry and the cache hit/miss split::

        python -m repro serve --cache plans.sqlite --port 8642
        curl -s localhost:8642/v1/plan -d '{"model":"7B","p":8,"seq_len":"64k"}'

``cache info|migrate``
    Store utilities: ``info`` prints a store's backend, entry count and
    cost-model fingerprint freshness; ``migrate`` copies a store across
    backends (e.g. a JSON sweep cache into the sqlite store the service
    reads)::

        python -m repro cache info sweep.json
        python -m repro cache migrate sweep.json plans.sqlite

``bench``
    Measure the tuner hot path -- candidates/sec (pruned and
    exhaustive) with a per-phase build/simulate/bound/cache breakdown,
    single-simulation wall time, warm-cache sweep time -- on the pinned
    acceptance workload and write a tracked ``BENCH_<rev>.json``.
    ``--compare`` gates against a committed baseline and fails on an
    end-to-end, build-phase or simulate-phase candidates/sec
    regression; ``--profile`` additionally cProfiles one sweep and
    embeds/prints the top functions::

        python -m repro bench
        python -m repro bench --profile --top 15
        python -m repro bench --smoke \\
            --compare benchmarks/perf/BENCH_smoke_baseline.json

``experiment list|describe|run``
    The registered paper experiments (every figure/table module) behind
    one driver: ``list`` the registry, ``describe`` one spec's
    parameter schema, ``run`` an experiment and print its rows as a
    table -- or emit machine-readable artifacts::

        python -m repro experiment run fig8_throughput --smoke --json
        python -m repro experiment run table2 -P p=8 --csv --out results/

    ``--smoke`` applies the spec's fast parameter set; ``-P name=value``
    overrides individual parameters (Python literals).

``experiment diff|verify``
    The golden-baseline regression harness
    (:mod:`repro.experiments.diffing`): ``diff`` compares two artifact
    files row-by-row under numeric tolerances, ``verify`` runs every
    registered spec against the goldens committed under
    ``tests/golden/`` and fails with a per-cell delta report on drift.
    ``verify --update`` regenerates the goldens after an intentional
    cost-model change::

        python -m repro experiment diff before.json after.json --rtol 0.01
        python -m repro experiment verify --smoke
        python -m repro experiment verify --smoke --update

Sequence lengths accept a ``k`` suffix (``64k`` == 65536); token
budgets accept ``k``/``M``/``G`` (``1M`` == 1048576 tokens).  Schedule
options are passed as repeated ``-o name=value`` flags with Python
literal values (``-o fold=1``, ``-o include_head=False``).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import time
from typing import Any, Sequence

from repro.analysis.report import format_table
from repro.analysis.tuner_view import format_grid_table, format_plan_table
from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.common import run_method
from repro.experiments.diffing import (
    DEFAULT_GOLDEN_DIR,
    Tolerance,
    diff_files,
    format_verify_report,
    verify_experiments,
)
from repro.experiments.registry import available_experiments, get_experiment
from repro.model.config import MODEL_PRESETS
from repro.schedules.registry import (
    ScheduleBuildError,
    available_schedules,
    get_schedule,
)
from repro.tuner import CostCache, autotune, tune_grid
from repro.tuner.store import BACKENDS
from repro.workloads import (
    GPU_CLUSTERS,
    Workload,
    WorkloadGrid,
    parse_int_list,
    parse_seq_len,
    parse_seq_lens,
    parse_token_budget,
)

__all__ = ["main"]

_GIB = float(1 << 30)


# -- argument helpers --------------------------------------------------------


def _argtype(parse):
    """Wrap a ``repro.workloads`` parser into an argparse type."""

    def typed(text: str):
        try:
            return parse(text)
        except ValueError as err:
            raise argparse.ArgumentTypeError(str(err)) from None

    typed.__name__ = parse.__name__
    return typed


_seq_len = _argtype(parse_seq_len)
_seq_lens = _argtype(parse_seq_lens)
_int_list = _argtype(parse_int_list)
_token_budget = _argtype(parse_token_budget)


def _option(text: str) -> tuple[str, Any]:
    """Parse one ``name=value`` schedule option with a literal value."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"invalid option {text!r} (expected name=value)"
        )
    try:
        value: Any = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw  # plain strings need no quoting
    return name, value


def _add_workload_args(parser: argparse.ArgumentParser, grid: bool = False) -> None:
    g = parser.add_argument_group("workload (paper presets)")
    g.add_argument(
        "--model",
        choices=sorted(MODEL_PRESETS),
        default="7B",
        help="model preset (default: %(default)s)",
    )
    g.add_argument(
        "--gpu",
        choices=sorted(GPU_CLUSTERS),
        default="H20",
        help="GPU/cluster preset (default: %(default)s)",
    )
    if grid:
        g.add_argument(
            "-p",
            "--pipeline-size",
            "--pipeline-sizes",
            type=_int_list,
            default=None,
            metavar="P[,P...]",
            help="pipeline size(s); several turn the sweep into a "
            "workload grid (default: 8; 4 with --smoke)",
        )
        g.add_argument(
            "--seq-len",
            "--seq-lens",
            dest="seq_len",
            type=_seq_lens,
            default=None,
            metavar="S[,S...]",
            help="sequence length(s), k suffix ok; several turn the "
            "sweep into a workload grid (default: 64k; 32k with --smoke)",
        )
        g.add_argument(
            "--budget-tokens",
            type=_token_budget,
            default=None,
            metavar="N",
            help="fixed tokens per iteration (k/M/G suffix ok); each grid "
            "point runs as many micro batches as the budget allows "
            "(default: the 2p-micro-batch protocol)",
        )
    else:
        g.add_argument(
            "-p",
            "--pipeline-size",
            type=int,
            default=None,
            metavar="P",
            help="pipeline stages == nodes (default: 8; 4 with --smoke)",
        )
        g.add_argument(
            "--seq-len",
            type=_seq_len,
            default=None,
            metavar="S",
            help="sequence length, k suffix ok (default: 64k; 32k with --smoke)",
        )
    g.add_argument(
        "--micro-batch",
        type=int,
        default=1,
        metavar="B",
        help="micro-batch size (default: %(default)s)",
    )
    g.add_argument(
        "-m",
        "--num-micro-batches",
        type=int,
        default=None,
        metavar="M",
        help="micro-batch budget per iteration (default: 2 x pipeline size"
        + ("; incompatible with a workload grid)" if grid else ")"),
    )


def _workload(args: argparse.Namespace, smoke: bool = False) -> Workload:
    p = args.pipeline_size if args.pipeline_size is not None else (4 if smoke else 8)
    seq = args.seq_len if args.seq_len is not None else (32768 if smoke else 65536)
    return Workload.paper(
        args.model,
        args.gpu,
        p,
        seq,
        micro_batch=args.micro_batch,
        num_micro_batches=args.num_micro_batches,
    )


def _describe_workload(wl: Workload) -> str:
    return (
        f"{wl.model.name} on {wl.cluster.node.gpu.name} x {wl.p}, "
        f"seq {wl.seq_len}, micro-batch {wl.micro_batch}, "
        f"budget {wl.num_micro_batches} micro-batches, "
        f"HBM {wl.cluster.node.gpu.hbm_bytes / _GIB:.0f} GiB"
    )


# -- commands ----------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_schedules():
        spec = get_schedule(name)
        rows.append(
            {
                "name": name,
                "family": spec.family or "-",
                "tunable": "yes" if spec.tunable else "no",
                "recompute": spec.default_recompute.value,
                "description": spec.description,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = get_schedule(args.schedule)
    p = args.pipeline_size or 8
    print(f"{spec.name}: {spec.description}")
    print(f"  family:            {spec.family or '-'}")
    print(f"  tunable:           {spec.tunable}")
    print(f"  default recompute: {spec.default_recompute.value}")
    print(
        "  recompute choices: "
        + ", ".join(s.value for s in spec.recompute_choices)
    )
    print(f"  micro-batch divisor (p={p}): {spec.micro_batch_divisor(p)}")
    print("  options:")
    for name, default in sorted(spec.options.items()):
        print(f"    {name} = {default!r}")
    grid = spec.option_grid(p)
    if grid:
        print(f"  tuner option grid (p={p}):")
        for name, values in sorted(grid.items()):
            print(f"    {name} in {list(values)!r}")
    if spec.workload_options:
        print(
            "  workload-derived options: "
            + ", ".join(spec.workload_options)
        )
    return 0


def _resolve_build_kw(args: argparse.Namespace) -> dict[str, Any]:
    kw: dict[str, Any] = dict(args.option or [])
    if args.recompute is not None:
        kw["recompute"] = RecomputeStrategy(args.recompute)
    return kw


def _schedule_workload(args: argparse.Namespace) -> Workload:
    """Workload for build/simulate, budget rounded onto the spec's grid."""
    wl = _workload(args)
    spec = get_schedule(args.schedule)
    if args.num_micro_batches is None:
        # Round the default budget onto the schedule's own grid so
        # `build helix -p 8` works out of the box.  -o overrides can
        # change the divisor (helix fold), so they feed the rounding;
        # when even one round exceeds the default budget, run the
        # minimum feasible count instead of failing.
        opts = {
            k: v for k, v in (args.option or []) if k in spec.options
        }
        rounded = spec.round_micro_batches(wl.num_micro_batches, wl.p, **opts)
        wl.num_micro_batches = rounded or spec.micro_batch_divisor(
            wl.p, **opts
        )
    print(f"workload: {_describe_workload(wl)}")
    return wl


def _cmd_build(args: argparse.Namespace) -> int:
    wl = _schedule_workload(args)
    sched = wl.build(args.schedule, **_resolve_build_kw(args))
    n_instr = sum(len(prog) for prog in sched.programs)
    print(
        f"built {sched.name}: p={sched.num_stages}, "
        f"m={sched.num_micro_batches}, {n_instr} instructions "
        "(verification passes clean)"
    )
    if sched.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(sched.meta.items()))
        print(f"meta: {meta}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    wl = _schedule_workload(args)
    result = run_method(wl, args.schedule, **_resolve_build_kw(args))
    tokens = wl.tokens_per_iteration
    print(f"simulated {result.schedule_name}:")
    print(f"  iteration time: {result.makespan:.3f} s")
    print(f"  throughput:     {tokens / result.makespan:.0f} tokens/s")
    print(f"  peak memory:    {result.max_peak_memory_bytes / _GIB:.1f} GiB")
    print(f"  bubble:         {100.0 * result.bubble_fraction:.1f} %")
    return 0


def _load_cache(path: str | None, backend: str | None = None) -> CostCache:
    """A CostCache bound to ``path`` (either backend), fresh when missing.

    Backend selection follows the path suffix unless ``--backend`` says
    otherwise (:func:`repro.tuner.store.detect_backend`).  A sqlite path
    attaches the store for lazy lookup + write-through; a JSON path is
    loaded eagerly when it exists.  Missing files (and missing parent
    directories) are fine -- save creates both.
    """
    if not path:
        return CostCache()
    cache = CostCache.open(path, backend=backend)
    if cache.store is not None:
        print(
            f"cache: attached sqlite store {path} "
            f"({len(cache.store)} entries)"
        )
    elif os.path.exists(path):
        print(f"cache: loaded {len(cache)} entries from {path}")
    return cache


def _print_plan_report(
    plans,
    args: argparse.Namespace,
    cache: CostCache,
    *,
    formatter,
    best_summary,
    none_message: str,
    sweep_summary: str,
) -> bool:
    """Shared ranked-table + best-plan + sweep-stats output of ``tune``.

    Filters for display only (``--no-infeasible``/``--top``), so the
    sweep count in ``sweep_summary`` stays honest.  Returns whether any
    feasible plan exists (the command's exit status).
    """
    rows = [r for r in plans if r.feasible] if args.no_infeasible else plans
    shown = rows if args.top is None else rows[: args.top]
    print(formatter(shown))
    dropped = len(rows) - len(shown)
    if dropped > 0:
        print(f"... {dropped} more row(s); raise --top to see them")

    feasible = [r for r in plans if r.feasible]
    if feasible:
        print(f"\nbest plan: {best_summary(feasible[0])}")
    else:
        print(f"\n{none_message}")
    print(
        f"{sweep_summary} "
        f"({cache.stats}, hit rate {cache.stats.hit_rate:.0%})"
    )
    return bool(feasible)


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint import lint_schedules
    from repro.schedules.analysis import available_passes

    if args.list_passes:
        from repro.schedules.analysis import get_pass

        rows = []
        for name in available_passes():
            ap = get_pass(name)
            rows.append(
                {
                    "pass": name,
                    "category": ap.category,
                    "requires": ", ".join(ap.requires) or "-",
                    "description": ap.description,
                }
            )
        print(format_table(rows))
        return 0

    schedules = None
    if args.schedules:
        schedules = [s.strip() for s in args.schedules.split(",") if s.strip()]
    passes = None
    if args.passes:
        passes = [s.strip() for s in args.passes.split(",") if s.strip()]

    report = lint_schedules(
        schedules=schedules,
        pp_sizes=args.pipeline_size or (2, 4),
        num_micro_batches=args.num_micro_batches,
        model=args.model,
        gpu=args.gpu,
        seq_len=args.seq_len if args.seq_len is not None else 8192,
        passes=passes,
        strict=args.strict,
    )
    text = (
        _json.dumps(report.to_json_dict(), indent=2)
        if args.json
        else report.format(verbose=args.verbose)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"lint report written to {args.out}")
        if not args.json:
            print(text)
    else:
        print(text)
    return 0 if report.ok else 1


def _cmd_lint_code(args: argparse.Namespace) -> int:
    import json as _json

    from repro.devtools.concurrency import (
        available_code_passes,
        get_code_pass,
        lint_code,
        report_passes_gate,
    )

    if args.list_passes:
        rows = []
        for name in available_code_passes():
            cp = get_code_pass(name)
            rows.append(
                {
                    "pass": name,
                    "category": cp.category,
                    "requires": ", ".join(cp.requires) or "-",
                    "description": cp.description,
                }
            )
        print(format_table(rows))
        return 0

    passes = None
    if args.passes:
        passes = [s.strip() for s in args.passes.split(",") if s.strip()]
    paths = args.paths or None

    report, _model = lint_code(paths, passes=passes)
    ok = report_passes_gate(report, strict=args.strict)
    if args.json:
        payload = report.to_json_dict()
        payload["strict"] = args.strict
        payload["ok"] = ok
        text = _json.dumps(payload, indent=2)
    else:
        text = report.format()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"code lint report written to {args.out}")
        if not args.json:
            print(text)
    else:
        print(text)
    return 0 if ok else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    pp_sizes = (
        args.pipeline_size
        if args.pipeline_size is not None
        else ((4,) if args.smoke else (8,))
    )
    seq_lens = (
        args.seq_len
        if args.seq_len is not None
        else ((32768,) if args.smoke else (65536,))
    )
    grid_mode = (
        args.budget_tokens is not None or len(pp_sizes) > 1 or len(seq_lens) > 1
    )

    schedules: Sequence[str] | None = None
    if args.schedules:
        schedules = [s.strip() for s in args.schedules.split(",") if s.strip()]
    elif args.smoke:
        schedules = ["1f1b", "helix"]

    cache = _load_cache(args.cache, args.backend)

    kwargs: dict[str, Any] = {"prune": not args.no_prune}
    if args.no_options or args.smoke:
        kwargs["option_grids"] = {}  # disable the option axis
    cap = (
        args.memory_cap_gib * _GIB
        if args.memory_cap_gib is not None  # 0 is a real (tiny) cap
        else None
    )

    if grid_mode:
        if args.num_micro_batches is not None:
            print(
                "error: -m/--num-micro-batches is incompatible with a "
                "workload grid (the token budget sets the count per point)",
                file=sys.stderr,
            )
            return 1
        grid = WorkloadGrid(
            model=args.model,
            gpu=args.gpu,
            seq_lens=tuple(seq_lens),
            pipeline_sizes=tuple(pp_sizes),
            micro_batch=args.micro_batch,
            budget_tokens=args.budget_tokens,
        )
        print(f"workload grid: {grid.label}")
        t0 = time.perf_counter()
        plans = tune_grid(
            grid,
            cap,
            schedules=schedules,
            cache=cache,
            workers=args.workers,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        found = _print_plan_report(
            plans,
            args,
            cache,
            formatter=format_grid_table,
            best_summary=lambda best: (
                f"{best.label} -- {best.plan.iteration_time:.2f} s/iter, "
                f"{best.tokens_per_s:.0f} tokens/s, "
                f"peak {best.plan.peak_memory_bytes / _GIB:.1f} GiB"
            ),
            none_message="no feasible plan across the workload grid",
            sweep_summary=f"swept {len(plans)} candidates over {len(grid)} "
            f"workload points in {elapsed:.2f} s",
        )
    else:
        wl = Workload.paper(
            args.model,
            args.gpu,
            pp_sizes[0],
            seq_lens[0],
            micro_batch=args.micro_batch,
            num_micro_batches=args.num_micro_batches,
        )
        print(f"workload: {_describe_workload(wl)}")
        t0 = time.perf_counter()
        plans = autotune(
            wl,
            cap,
            schedules=schedules,
            cache=cache,
            workers=args.workers,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        found = _print_plan_report(
            plans,
            args,
            cache,
            formatter=format_plan_table,
            best_summary=lambda best: (
                f"{best.label} -- {best.iteration_time:.2f} s/iter, "
                f"{best.tokens_per_s:.0f} tokens/s, "
                f"peak {best.peak_memory_bytes / _GIB:.1f} GiB"
            ),
            none_message="no feasible plan under the memory cap",
            sweep_summary=f"swept {len(plans)} candidates in {elapsed:.2f} s",
        )

    if args.cache:
        saved = cache.save(args.cache, backend=args.backend)
        print(f"cache: saved {saved} entries to {args.cache}")
    return 0 if found else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import PlannerService, create_server

    cache = _load_cache(args.cache, args.backend)
    service = PlannerService(
        cache,
        workers=args.workers,
        save_path=args.cache,
        save_backend=args.backend,
    )
    server = create_server(args.host, args.port, service)
    host, port = server.server_address[:2]
    print(f"planner service listening on http://{host}:{port}")
    print(
        "endpoints: GET /v1/healthz /v1/stats /v1/sweeps, "
        "POST /v1/plan /v1/sweep"
    )

    # SIGTERM (systemd stop, docker stop, CI teardown) must go through
    # the same graceful path as Ctrl-C: raising SystemExit unwinds
    # serve_forever via the try/finally below instead of killing the
    # process with daemon sweep threads mid-write.
    def _terminate(signum, frame):
        raise SystemExit(128 + signum)

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("\nshutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        # Drains background sweeps, persists the cache and closes the
        # store's sqlite connections.
        saved = service.close()
        if saved is not None:
            print(f"cache: saved {saved} entries to {args.cache}")
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    import json as _json
    import sqlite3

    from repro.tuner import costmodel_fingerprint
    from repro.tuner.store import detect_backend

    backend = detect_backend(args.path, args.backend)
    current = costmodel_fingerprint()
    if backend == "sqlite":
        # Inspect the file directly: opening a SqliteCostStore would
        # clear-and-restamp a stale store, and info must be read-only.
        if not os.path.exists(args.path):
            raise FileNotFoundError(
                f"sqlite cost cache store {args.path!r} does not exist"
            )
        conn = sqlite3.connect(args.path)
        try:
            meta = dict(conn.execute("SELECT key, value FROM meta"))
            entries = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        except sqlite3.DatabaseError as err:
            raise ValueError(
                f"{args.path!r} is not a sqlite cost cache store ({err})"
            ) from None
        finally:
            conn.close()
        stamped = meta.get("costmodel")
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            payload = _json.load(fh)
        if not isinstance(payload, dict) or "entries" not in payload:
            print(
                f"error: {args.path!r} is not a cost cache store",
                file=sys.stderr,
            )
            return 1
        entries, stamped = len(payload["entries"]), payload.get("costmodel")
    print(f"path:        {args.path}")
    print(f"backend:     {backend}")
    print(f"entries:     {entries}")
    print(f"costmodel:   {stamped}")
    fresh = stamped == current
    print(f"fingerprint: {'current' if fresh else f'STALE (running {current})'}")
    return 0 if fresh else 1


def _cmd_cache_migrate(args: argparse.Namespace) -> int:
    from repro.tuner.store import detect_backend

    src_backend = detect_backend(args.src, args.src_backend)
    dst_backend = detect_backend(args.dst, args.dst_backend)
    cache = CostCache()
    cache.load(args.src, backend=src_backend)
    if cache.store is not None:
        # A sqlite source is attached lazily; materialise it so the
        # destination gets every entry (and detach, so an sqlite->sqlite
        # copy writes the destination file rather than the source).
        for key, value in cache.store.items():
            cache.adopt(key, value)
        cache.store = None
    count = sum(1 for _ in cache.entries())
    print(f"cache: loaded {count} entries from {args.src} ({src_backend})")
    saved = cache.save(args.dst, backend=dst_backend)
    print(f"cache: wrote {saved} entries to {args.dst} ({dst_backend})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        compare_bench,
        default_out_name,
        load_bench,
        run_bench,
        save_bench,
    )

    payload = run_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        profile=args.profile,
        profile_top=args.top,
    )
    w = payload["workload"]
    metrics = payload["metrics"]
    counts = payload["counts"]
    phases = payload["phases"]
    print(
        f"bench workload: {w['model']} on {w['gpu']} x {w['p']}, "
        f"seq {w['seq_len']} ({payload['mode']})"
    )
    print(
        f"  candidates/sec:  {metrics['candidates_per_s']:.1f}  "
        f"({counts['candidates']} candidates in {metrics['sweep_s']:.3f} s; "
        f"{counts['simulated']} simulated, {counts['pruned']} pruned)"
    )
    print(
        f"  phases:          build {1e3 * phases['build_s']:.1f} ms "
        f"({phases['built']} built, {phases['build_cache_hits']} cached) | "
        f"simulate {1e3 * phases['simulate_s']:.1f} ms "
        f"({phases['incremental_hits']} incremental, "
        f"{phases['incremental_fallbacks']} fallback) | "
        f"bound {1e3 * phases['bound_s']:.1f} ms | "
        f"cache {1e3 * phases['cache_s']:.1f} ms"
    )
    print(
        f"  build phase:     {metrics['build_candidates_per_s']:.1f} "
        f"builds/sec | simulate phase: "
        f"{metrics['simulate_candidates_per_s']:.1f} sims/sec"
    )
    print(
        f"  exhaustive:      {metrics['exhaustive_candidates_per_s']:.1f} "
        f"candidates/sec ({metrics['exhaustive_sweep_s']:.3f} s; pruning "
        f"speedup {metrics['prune_speedup']:.2f}x, incremental speedup "
        f"{metrics['incremental_speedup']:.2f}x)"
    )
    print(f"  single sim:      {1e3 * metrics['single_sim_s']:.3f} ms")
    print(f"  warm-cache sweep: {1e3 * metrics['warm_sweep_s']:.2f} ms")
    eq = payload["equivalence"]
    print(
        "  pruned best == exhaustive best: "
        f"{'yes' if eq['pruned_best_equals_exhaustive'] else 'NO'}"
        + (f" ({eq['best_label']})" if eq["best_label"] else "")
    )
    print(
        "  incremental best == full-resim best: "
        f"{'yes' if eq['incremental_best_equals_full'] else 'NO'}"
    )
    if args.profile:
        print(f"  profile (top {args.top} by cumulative time):")
        for entry in payload["profile"]["top"]:
            where = f"{entry['file']}:{entry['line']}"
            print(
                f"    {1e3 * entry['cumtime_s']:8.1f} ms cum "
                f"{1e3 * entry['tottime_s']:8.1f} ms self "
                f"{entry['ncalls']:>9} calls  {entry['function']} ({where})"
            )

    out = args.out or default_out_name(args.smoke)
    save_bench(payload, out)
    print(f"wrote {out}")

    ok = eq["pruned_best_equals_exhaustive"] and eq[
        "incremental_best_equals_full"
    ]
    if not ok:
        print(
            "error: an optimisation changed the winning plan -- the sweep "
            "is no longer equivalence-preserving",
            file=sys.stderr,
        )
    if args.compare:
        failures = compare_bench(
            payload, load_bench(args.compare), args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"regression: {failure}", file=sys.stderr)
            ok = False
        else:
            print(f"no regression vs {args.compare}")
    return 0 if ok else 1


# -- experiment commands -----------------------------------------------------


def _cmd_experiment_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_experiments():
        spec = get_experiment(name)
        rows.append(
            {
                "name": name,
                "params": len(spec.params),
                "smoke": "yes" if spec.smoke_params else "-",
                "render": "yes" if spec.renderer is not None else "-",
                "description": spec.description,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_experiment_describe(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    print(f"{spec.name}: {spec.description}")
    print("  parameters (paper-protocol defaults):")
    for name, default in spec.params.items():
        print(f"    {name} = {default!r}")
    if spec.smoke_params:
        print("  smoke overrides (--smoke):")
        for name, value in spec.smoke_params.items():
            print(f"    {name} = {value!r}")
    print(f"  renderer: {'yes (--render)' if spec.renderer else 'no'}")
    return 0


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    if args.render and spec.renderer is None:
        print(
            f"error: experiment {spec.name!r} has no renderer",
            file=sys.stderr,
        )
        return 1
    if not args.out:
        # Without --out, exactly one stream goes to stdout; mixing two
        # formats (or a rendering after a payload) would corrupt it for
        # any consumer parsing the output.
        if args.json and args.csv:
            print(
                "error: --json and --csv both print to stdout; pick one "
                "or write files with --out DIR",
                file=sys.stderr,
            )
            return 1
        if args.render and (args.json or args.csv):
            print(
                "error: --render would corrupt the --json/--csv stream; "
                "use --out DIR to write the payload to files instead",
                file=sys.stderr,
            )
            return 1
    overrides = dict(args.param or [])

    t0 = time.perf_counter()
    result = spec.run(smoke=args.smoke, **overrides)
    elapsed = time.perf_counter() - t0

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        # Explicit format flags select the artifacts; bare --out writes
        # both, as documented.
        want_json = args.json or not args.csv
        want_csv = args.csv or not args.json
        artifacts = []
        if want_json:
            artifacts.append(("json", result.to_json() + "\n"))
        if want_csv:
            artifacts.append(("csv", result.to_csv()))
        for ext, payload in artifacts:
            path = os.path.join(args.out, f"{spec.name}.{ext}")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
            print(f"wrote {len(result.rows)} rows to {path}")
    elif args.json:
        print(result.to_json())
    elif args.csv:
        print(result.to_csv(), end="")
    else:
        print(f"experiment {spec.name}: {len(result.rows)} rows in {elapsed:.2f} s")
        print(format_table(result.rows))
    if args.render:
        print(spec.render())
    return 0


def _cmd_experiment_diff(args: argparse.Namespace) -> int:
    keys = None
    if args.key:
        keys = [k.strip() for k in args.key.split(",") if k.strip()]
    report = diff_files(
        args.baseline,
        args.candidate,
        tolerance=Tolerance(atol=args.atol, rtol=args.rtol),
        key_columns=keys,
    )
    print(report.to_json() if args.json else report.format())
    return 0 if report.clean else 1


def _cmd_experiment_verify(args: argparse.Namespace) -> int:
    names = None
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
    if args.golden == DEFAULT_GOLDEN_DIR and not os.path.isdir(
        os.path.dirname(args.golden)
    ):
        # The default dir is repo-relative.  With no tests/ directory
        # here at all this is almost certainly the wrong cwd -- and in
        # update mode, proceeding would create a stray golden tree that
        # silently bypasses the committed baselines.
        print(
            "error: no tests/ directory here; run from the repository "
            "root (the committed baselines live in tests/golden/) or "
            "point --golden at them",
            file=sys.stderr,
        )
        return 1
    if not args.update and not os.path.isdir(args.golden):
        print(
            f"error: golden directory {args.golden!r} does not exist; "
            "generate baselines first with: python -m repro experiment "
            f"verify --smoke --update --golden {args.golden}",
            file=sys.stderr,
        )
        return 1
    outcomes = verify_experiments(
        args.golden,
        names,
        smoke=args.smoke,
        update=args.update,
        tolerance=Tolerance(atol=args.atol, rtol=args.rtol),
    )
    text = format_verify_report(outcomes, args.golden)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.report}")
    return 0 if all(o.ok for o in outcomes) else 1


# -- entry point -------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Schedule registry, simulator and auto-tuner CLI "
        "for the HelixPipe reproduction.",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="let exceptions propagate with a full traceback instead of "
        "the one-line 'error: ...' summary",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered schedules")
    p_list.set_defaults(fn=_cmd_list)

    p_desc = sub.add_parser("describe", help="show one schedule spec in full")
    p_desc.add_argument("schedule", help="registered schedule name")
    p_desc.add_argument(
        "-p",
        "--pipeline-size",
        type=int,
        default=None,
        metavar="P",
        help="pipeline size to resolve grids/divisors against (default: 8)",
    )
    p_desc.set_defaults(fn=_cmd_describe)

    for name, fn, help_ in (
        ("build", _cmd_build, "build + verify one schedule for a workload"),
        ("simulate", _cmd_simulate, "build + simulate one schedule"),
    ):
        p_cmd = sub.add_parser(name, help=help_)
        p_cmd.add_argument("schedule", help="registered schedule name")
        _add_workload_args(p_cmd)
        p_cmd.add_argument(
            "--recompute",
            choices=[s.value for s in RecomputeStrategy],
            default=None,
            help="recompute strategy (default: the spec's own)",
        )
        p_cmd.add_argument(
            "-o",
            "--option",
            type=_option,
            action="append",
            metavar="NAME=VALUE",
            help="schedule option override (repeatable)",
        )
        p_cmd.set_defaults(fn=fn)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis over registered schedules (no simulation)",
    )
    p_lint.add_argument(
        "--schedules",
        default=None,
        metavar="A,B,...",
        help="comma-separated schedule names (default: every registered one)",
    )
    p_lint.add_argument(
        "-p",
        "--pipeline-size",
        "--pipeline-sizes",
        type=_int_list,
        default=None,
        metavar="P[,P...]",
        help="pipeline size(s) to lint at (default: 2,4)",
    )
    p_lint.add_argument(
        "-m",
        "--num-micro-batches",
        type=int,
        default=None,
        metavar="M",
        help="micro-batch count (default: 2p rounded onto each "
        "schedule's divisor grid)",
    )
    p_lint.add_argument(
        "--model",
        choices=sorted(MODEL_PRESETS),
        default="1.3B",
        help="model preset for costs/memory context (default: %(default)s)",
    )
    p_lint.add_argument(
        "--gpu",
        choices=sorted(GPU_CLUSTERS),
        default="H20",
        help="GPU/cluster preset (default: %(default)s)",
    )
    p_lint.add_argument(
        "--seq-len",
        type=_seq_len,
        default=None,
        metavar="S",
        help="sequence length, k suffix ok (default: 8k)",
    )
    p_lint.add_argument(
        "--passes",
        default=None,
        metavar="A,B,...",
        help="run only these analysis passes (default: all registered)",
    )
    p_lint.add_argument(
        "--list-passes",
        action="store_true",
        help="list the registered analysis passes and exit",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to failures (exit 1 on any finding)",
    )
    p_lint.add_argument(
        "--verbose",
        action="store_true",
        help="show warning/info findings in the table, not just errors",
    )
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable lint report instead of tables",
    )
    p_lint.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the report to PATH (CI uploads it on failure)",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_lint_code = sub.add_parser(
        "lint-code",
        help="concurrency lint over the repo's own threaded sources",
    )
    p_lint_code.add_argument(
        "--paths",
        nargs="+",
        default=None,
        metavar="PATH",
        help="files/directories to sweep (default: src/repro/service "
        "and src/repro/tuner)",
    )
    p_lint_code.add_argument(
        "--passes",
        default=None,
        metavar="A,B,...",
        help="run only these code passes (default: all registered)",
    )
    p_lint_code.add_argument(
        "--list-passes",
        action="store_true",
        help="list the registered code passes and exit",
    )
    p_lint_code.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to failures (exit 1 on any finding)",
    )
    p_lint_code.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    p_lint_code.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the report to PATH (CI uploads it on failure)",
    )
    p_lint_code.set_defaults(fn=_cmd_lint_code)

    p_tune = sub.add_parser(
        "tune",
        help="auto-tune the schedule for a workload (or a workload grid)",
    )
    _add_workload_args(p_tune, grid=True)
    p_tune.add_argument(
        "--schedules",
        default=None,
        metavar="A,B,...",
        help="comma-separated schedule names (default: every tunable one)",
    )
    p_tune.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate cold candidates in a process pool of N workers",
    )
    p_tune.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent cost cache: loaded before the sweep, saved after; "
        "a .sqlite/.db suffix selects the lazy sqlite store",
    )
    p_tune.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="cost cache store backend (default: by --cache suffix)",
    )
    p_tune.add_argument(
        "--memory-cap-gib",
        type=float,
        default=None,
        metavar="G",
        help="per-GPU memory cap in GiB (default: the GPU's HBM size)",
    )
    p_tune.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="show only the first K rows of the ranked table",
    )
    p_tune.add_argument(
        "--no-options",
        action="store_true",
        help="skip the schedule-option grid axis",
    )
    p_tune.add_argument(
        "--no-infeasible",
        action="store_true",
        help="drop infeasible candidates from the table",
    )
    p_tune.add_argument(
        "--no-prune",
        action="store_true",
        help="exhaustive sweep: disable the admissible lower-bound "
        "pruning of provably-losing candidates",
    )
    p_tune.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-fast CI sweep: p=4 / 32k defaults, 1f1b + helix, "
        "no option axis",
    )
    p_tune.set_defaults(fn=_cmd_tune)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP planner service over a shared cost cache",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: %(default)s)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8642,
        metavar="N",
        help="bind port; 0 picks a free one (default: %(default)s)",
    )
    p_serve.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="shared cost cache store; a .sqlite/.db suffix selects the "
        "lazy concurrent sqlite backend (recommended for serving)",
    )
    p_serve.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="cost cache store backend (default: by --cache suffix)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate cold candidates in a process pool of N workers",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="cost cache store utilities (info, migrate)"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    pc_info = cache_sub.add_parser(
        "info",
        help="show a store's backend, entry count and fingerprint "
        "freshness (exit 1 when stale)",
    )
    pc_info.add_argument("path", help="cost cache store path")
    pc_info.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="store backend (default: by suffix)",
    )
    pc_info.set_defaults(fn=_cmd_cache_info)

    pc_migrate = cache_sub.add_parser(
        "migrate",
        help="copy a cost cache store between backends "
        "(e.g. sweep.json -> plans.sqlite)",
    )
    pc_migrate.add_argument("src", help="source store path")
    pc_migrate.add_argument("dst", help="destination store path")
    pc_migrate.add_argument(
        "--src-backend",
        choices=BACKENDS,
        default=None,
        help="source backend (default: by suffix)",
    )
    pc_migrate.add_argument(
        "--dst-backend",
        choices=BACKENDS,
        default=None,
        help="destination backend (default: by suffix)",
    )
    pc_migrate.set_defaults(fn=_cmd_cache_migrate)

    p_bench = sub.add_parser(
        "bench",
        help="measure the tuner hot path and emit a BENCH_*.json",
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-fast CI workload (1.3B / H20 / p=4 / 8k) instead "
        "of the pinned acceptance grid (7B / H20 / p=8 / 64k)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="best-of-N timing runs per metric (default: %(default)s)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output JSON path (default: BENCH_<rev>.json, "
        "BENCH_smoke_<rev>.json with --smoke)",
    )
    p_bench.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="committed baseline BENCH_*.json to gate against; a "
        "candidates/sec drop beyond --max-regression fails the run",
    )
    p_bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="F",
        help="allowed fractional candidates/sec regression vs the "
        "--compare baseline (default: %(default)s)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one extra sweep after the timed runs and embed "
        "the top functions by cumulative time in the payload",
    )
    p_bench.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="number of profile entries to keep with --profile "
        "(default: %(default)s)",
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_exp = sub.add_parser(
        "experiment", help="run the registered paper experiments"
    )
    exp_sub = p_exp.add_subparsers(dest="exp_command", required=True)

    pe_list = exp_sub.add_parser("list", help="list registered experiments")
    pe_list.set_defaults(fn=_cmd_experiment_list)

    pe_desc = exp_sub.add_parser(
        "describe", help="show one experiment's parameter schema"
    )
    pe_desc.add_argument("experiment", help="registered experiment name")
    pe_desc.set_defaults(fn=_cmd_experiment_describe)

    pe_run = exp_sub.add_parser(
        "run", help="run one experiment and print/serialise its rows"
    )
    pe_run.add_argument("experiment", help="registered experiment name")
    pe_run.add_argument(
        "--smoke",
        action="store_true",
        help="apply the spec's fast (CI) parameter overrides",
    )
    pe_run.add_argument(
        "-P",
        "--param",
        type=_option,
        action="append",
        metavar="NAME=VALUE",
        help="parameter override with a Python literal value (repeatable)",
    )
    pe_run.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (params + rows) instead of an aligned table "
        "(with --out: write only the .json artifact)",
    )
    pe_run.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV rows instead of an aligned table "
        "(with --out: write only the .csv artifact)",
    )
    pe_run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write <experiment>.json and .csv artifact files into DIR "
        "(created if missing) instead of printing; --json/--csv "
        "restrict which of the two are written",
    )
    pe_run.add_argument(
        "--render",
        action="store_true",
        help="also print the experiment's ASCII rendering, if it has one",
    )
    pe_run.set_defaults(fn=_cmd_experiment_run)

    default_tol = Tolerance()  # the library defaults, single-sourced

    def add_tolerance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--atol",
            type=float,
            default=default_tol.atol,
            metavar="F",
            help="absolute tolerance for numeric cells (default: %(default)s)",
        )
        p.add_argument(
            "--rtol",
            type=float,
            default=default_tol.rtol,
            metavar="F",
            help="relative tolerance for numeric cells, vs the baseline "
            "(default: %(default)s)",
        )

    pe_diff = exp_sub.add_parser(
        "diff",
        help="compare two experiment artifacts with per-row deltas",
    )
    pe_diff.add_argument("baseline", help="baseline artifact (.json)")
    pe_diff.add_argument("candidate", help="candidate artifact (.json)")
    add_tolerance_args(pe_diff)
    pe_diff.add_argument(
        "--key",
        default=None,
        metavar="A,B,...",
        help="row-matching key columns (default: inferred -- every "
        "non-float column)",
    )
    pe_diff.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable DiffReport instead of the table",
    )
    pe_diff.set_defaults(fn=_cmd_experiment_diff)

    pe_verify = exp_sub.add_parser(
        "verify",
        help="run every registered experiment against its golden baseline",
    )
    pe_verify.add_argument(
        "--smoke",
        action="store_true",
        help="run the specs' fast (CI) parameter sets -- the mode the "
        "committed goldens were generated with",
    )
    pe_verify.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden artifacts instead of comparing "
        "(the reviewed workflow for intentional cost-model changes)",
    )
    pe_verify.add_argument(
        "--golden",
        default=DEFAULT_GOLDEN_DIR,
        metavar="DIR",
        help="golden artifact directory (default: %(default)s)",
    )
    pe_verify.add_argument(
        "--only",
        default=None,
        metavar="A,B,...",
        help="verify only these experiments (default: every registered one)",
    )
    add_tolerance_args(pe_verify)
    pe_verify.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the rendered report to PATH (CI uploads it on "
        "failure)",
    )
    pe_verify.set_defaults(fn=_cmd_experiment_verify)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.debug:
        return args.fn(args)
    try:
        return args.fn(args)
    # TypeError included: a mistyped -o value (e.g. max_outstanding=none,
    # which parses as the string 'none') surfaces from deep inside a
    # builder and should exit cleanly, not with a traceback.
    except (ScheduleBuildError, KeyError, ValueError, TypeError, OSError) as err:
        # str(KeyError) is the repr of its argument -- unwrap so the
        # registry's "unknown schedule ..." message prints unquoted.
        msg = err.args[0] if isinstance(err, KeyError) and err.args else err
        print(f"error: {msg}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
