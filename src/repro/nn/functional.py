"""Primitive neural-net ops with exact hand-written backward passes.

All tensors follow the paper's ``[s, b, h]`` layout (sequence, micro
batch, hidden).  Computation is float64 so the runtime-equivalence tests
can assert gradient equality between pipeline schedules and the
single-device reference at ~1e-10 tolerance.

Each ``*_fwd`` returns ``(out, ctx)`` where ``ctx`` is exactly what the
matching ``*_bwd`` needs -- this explicit contract is what the
recomputation strategies manipulate (drop the ctx, re-create it later).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

__all__ = [
    "linear_fwd",
    "linear_bwd",
    "layer_norm_fwd",
    "layer_norm_bwd",
    "gelu_fwd",
    "gelu_bwd",
    "causal_attention_fwd",
    "causal_attention_bwd",
    "embedding_fwd",
    "embedding_bwd",
    "cross_entropy_fwd",
    "cross_entropy_bwd",
    "softmax",
]

_SQRT2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


# -- linear ------------------------------------------------------------------


def linear_fwd(x: np.ndarray, w: np.ndarray, b: np.ndarray):
    """``y = x @ w + b`` with ``x: [s, b, in]``, ``w: [in, out]``."""
    return x @ w + b, (x, w)


def linear_bwd(ctx, dout: np.ndarray):
    """Returns ``(dx, dw, db)``."""
    x, w = ctx
    dx = dout @ w.T
    dw = np.einsum("sbi,sbo->io", x, dout)
    db = dout.sum(axis=(0, 1))
    return dx, dw, db


# -- layer norm ---------------------------------------------------------------


def layer_norm_fwd(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5):
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    rstd = 1.0 / np.sqrt(var + eps)
    xhat = (x - mu) * rstd
    return xhat * gamma + beta, (xhat, rstd, gamma)


def layer_norm_bwd(ctx, dout: np.ndarray):
    """Returns ``(dx, dgamma, dbeta)``."""
    xhat, rstd, gamma = ctx
    h = xhat.shape[-1]
    dgamma = (dout * xhat).sum(axis=(0, 1))
    dbeta = dout.sum(axis=(0, 1))
    dxhat = dout * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * rstd
    return dx, dgamma, dbeta


# -- GeLU ----------------------------------------------------------------------


def gelu_fwd(x: np.ndarray):
    """Exact (erf) GeLU."""
    return 0.5 * x * (1.0 + erf(x / _SQRT2)), (x,)


def gelu_bwd(ctx, dout: np.ndarray):
    (x,) = ctx
    cdf = 0.5 * (1.0 + erf(x / _SQRT2))
    pdf = _INV_SQRT_2PI * np.exp(-0.5 * x * x)
    return dout * (cdf + x * pdf)


# -- attention ------------------------------------------------------------------


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def _split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """[s, b, h] -> [b, heads, s, hd]."""
    s, b, h = x.shape
    hd = h // num_heads
    return x.reshape(s, b, num_heads, hd).transpose(1, 2, 0, 3)


def _merge_heads(x: np.ndarray) -> np.ndarray:
    """[b, heads, s, hd] -> [s, b, h]."""
    b, nh, s, hd = x.shape
    return x.transpose(2, 0, 1, 3).reshape(s, b, nh * hd)


def causal_attention_fwd(qkv: np.ndarray, num_heads: int):
    """Causal multi-head self-attention over fused ``qkv: [s, b, 3h]``.

    The returned ctx keeps ``(qkv, probs)`` -- the flash-attention analog
    would keep only ``qkv`` plus the softmax statistics, which is what the
    ``3bsh`` Table 1 rounding models; numerically the result is identical,
    so we keep the simpler form.
    """
    s, b, three_h = qkv.shape
    h = three_h // 3
    q, k, v = qkv[..., :h], qkv[..., h : 2 * h], qkv[..., 2 * h :]
    qh = _split_heads(q, num_heads)
    kh = _split_heads(k, num_heads)
    vh = _split_heads(v, num_heads)
    scale = 1.0 / np.sqrt(h // num_heads)
    scores = (qh @ kh.transpose(0, 1, 3, 2)) * scale
    mask = np.triu(np.ones((s, s), dtype=bool), k=1)
    scores = np.where(mask, -np.inf, scores)
    probs = softmax(scores, axis=-1)
    ctx_out = _merge_heads(probs @ vh)
    return ctx_out, (qkv, probs, num_heads)


def causal_attention_bwd(ctx, dout: np.ndarray):
    """Returns ``dqkv: [s, b, 3h]``."""
    qkv, probs, num_heads = ctx
    s, b, three_h = qkv.shape
    h = three_h // 3
    q, k, v = qkv[..., :h], qkv[..., h : 2 * h], qkv[..., 2 * h :]
    qh = _split_heads(q, num_heads)
    kh = _split_heads(k, num_heads)
    vh = _split_heads(v, num_heads)
    scale = 1.0 / np.sqrt(h // num_heads)

    do = _split_heads(dout, num_heads)  # [b, nh, s, hd]
    dv = probs.transpose(0, 1, 3, 2) @ do
    dprobs = do @ vh.transpose(0, 1, 3, 2)
    # softmax backward (rows sum to 1): dS = P * (dP - sum(dP * P))
    dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
    dscores *= scale
    dq = dscores @ kh
    dk = dscores.transpose(0, 1, 3, 2) @ qh
    dqkv = np.concatenate(
        [_merge_heads(dq), _merge_heads(dk), _merge_heads(dv)], axis=-1
    )
    return dqkv


# -- embedding -------------------------------------------------------------------


def embedding_fwd(tokens: np.ndarray, wte: np.ndarray, wpe: np.ndarray):
    """``tokens: [s, b]`` ints -> ``[s, b, h]`` word + position embeddings."""
    s, b = tokens.shape
    out = wte[tokens] + wpe[:s, None, :]
    return out, (tokens, wte.shape, wpe.shape)


def embedding_bwd(ctx, dout: np.ndarray):
    """Returns ``(dwte, dwpe)``."""
    tokens, wte_shape, wpe_shape = ctx
    s, b = tokens.shape
    dwte = np.zeros(wte_shape, dtype=dout.dtype)
    np.add.at(dwte, tokens.reshape(-1), dout.reshape(s * b, -1))
    dwpe = np.zeros(wpe_shape, dtype=dout.dtype)
    dwpe[:s] = dout.sum(axis=1)
    return dwte, dwpe


# -- loss -----------------------------------------------------------------------


def cross_entropy_fwd(logits: np.ndarray, targets: np.ndarray):
    """Mean token-level cross entropy.  ``logits: [s, b, V]``."""
    s, b, v = logits.shape
    z = logits - logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=-1)) + logits.max(axis=-1)
    picked = np.take_along_axis(logits, targets[..., None], axis=-1)[..., 0]
    loss = (logsumexp - picked).mean()
    return loss, (logits, targets)


def cross_entropy_bwd(ctx, dloss: float = 1.0):
    """Returns ``dlogits``."""
    logits, targets = ctx
    s, b, v = logits.shape
    probs = softmax(logits, axis=-1)
    np.subtract.at(probs, (*np.indices(targets.shape), targets), 1.0)
    return probs * (dloss / (s * b))
