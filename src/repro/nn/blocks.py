"""Transformer layer phases exactly as HelixPipe partitions them (Fig. 1).

* ``pre_attention``: LayerNorm (+ QKV linear unless it is *shipped* to the
  attention stage, Section 4.2).
* ``attention``: causal multi-head attention (+ the shipped QKV linear).
* ``post_attention``: output linear + residual, LayerNorm + MLP + residual.

Each phase is a pure function pair ``(fwd, bwd)`` over a parameter dict,
so the single-device reference model and every pipeline executor run the
*same arithmetic* -- gradient equality between them is then a test of the
schedules, not of duplicated math.

Parameter names per layer: ``ln1_g ln1_b w_qkv b_qkv w_o b_o ln2_g ln2_b
w_fc1 b_fc1 w_fc2 b_fc2``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = [
    "init_layer_params",
    "init_embed_params",
    "init_head_params",
    "pre_attention_fwd",
    "pre_attention_bwd",
    "attention_fwd",
    "attention_bwd",
    "post_attention_fwd",
    "post_attention_bwd",
    "embed_fwd",
    "embed_bwd",
    "head_fwd",
    "head_bwd",
]

Params = dict[str, np.ndarray]


def init_layer_params(rng: np.random.Generator, h: int, ffn_mult: int = 4) -> Params:
    """GPT-2 style initialisation (scaled normal weights, zero biases)."""
    std = 0.02
    return {
        "ln1_g": np.ones(h),
        "ln1_b": np.zeros(h),
        "w_qkv": rng.normal(0, std, (h, 3 * h)),
        "b_qkv": np.zeros(3 * h),
        "w_o": rng.normal(0, std, (h, h)),
        "b_o": np.zeros(h),
        "ln2_g": np.ones(h),
        "ln2_b": np.zeros(h),
        "w_fc1": rng.normal(0, std, (h, ffn_mult * h)),
        "b_fc1": np.zeros(ffn_mult * h),
        "w_fc2": rng.normal(0, std, (ffn_mult * h, h)),
        "b_fc2": np.zeros(h),
    }


def init_embed_params(
    rng: np.random.Generator, vocab: int, h: int, max_seq: int
) -> Params:
    return {
        "wte": rng.normal(0, 0.02, (vocab, h)),
        "wpe": rng.normal(0, 0.01, (max_seq, h)),
    }


def init_head_params(rng: np.random.Generator, vocab: int, h: int) -> Params:
    return {
        "lnf_g": np.ones(h),
        "lnf_b": np.zeros(h),
        "w_head": rng.normal(0, 0.02, (h, vocab)),
        "b_head": np.zeros(vocab),
    }


# -- pre-attention ---------------------------------------------------------------


def pre_attention_fwd(params: Params, a: np.ndarray, ship_qkv: bool):
    """Input ``a`` is the residual stream entering the layer.

    Returns ``(x, ctx)`` where ``x`` is the LayerNorm output when QKV is
    shipped (the attention stage applies the linear) or the fused ``qkv``
    tensor otherwise.
    """
    x, ln_ctx = F.layer_norm_fwd(a, params["ln1_g"], params["ln1_b"])
    if ship_qkv:
        return x, ("ship", ln_ctx)
    qkv, lin_ctx = F.linear_fwd(x, params["w_qkv"], params["b_qkv"])
    return qkv, ("local", ln_ctx, lin_ctx)


def pre_attention_bwd(ctx, dout: np.ndarray):
    """Returns ``(da, grads)`` -- gradient w.r.t. the residual input and a
    param-grad dict (empty qkv entries when shipped)."""
    if ctx[0] == "ship":
        _, ln_ctx = ctx
        da, dg, db = F.layer_norm_bwd(ln_ctx, dout)
        return da, {"ln1_g": dg, "ln1_b": db}
    _, ln_ctx, lin_ctx = ctx
    dx, dw, dbias = F.linear_bwd(lin_ctx, dout)
    da, dg, db = F.layer_norm_bwd(ln_ctx, dx)
    return da, {"ln1_g": dg, "ln1_b": db, "w_qkv": dw, "b_qkv": dbias}


# -- attention ---------------------------------------------------------------------


def attention_fwd(
    x: np.ndarray,
    num_heads: int,
    shipped_w: tuple[np.ndarray, np.ndarray] | None = None,
):
    """``x`` is qkv (local mode) or the LN output plus shipped ``(w, b)``."""
    if shipped_w is not None:
        w, b = shipped_w
        qkv, lin_ctx = F.linear_fwd(x, w, b)
    else:
        qkv, lin_ctx = x, None
    out, attn_ctx = F.causal_attention_fwd(qkv, num_heads)
    return out, (attn_ctx, lin_ctx)


def attention_bwd(ctx, dout: np.ndarray):
    """Returns ``(dx, qkv_grads)`` where ``qkv_grads`` is ``(dw, db)`` when
    the QKV linear ran here (weight shipping) else ``None``."""
    attn_ctx, lin_ctx = ctx
    dqkv = F.causal_attention_bwd(attn_ctx, dout)
    if lin_ctx is None:
        return dqkv, None
    dx, dw, db = F.linear_bwd(lin_ctx, dqkv)
    return dx, (dw, db)


# -- post-attention ------------------------------------------------------------------


def post_attention_fwd(params: Params, attn_out: np.ndarray, a: np.ndarray):
    """O linear + residual; LN2 + MLP + residual.  Returns ``(z, ctx)``."""
    o, o_ctx = F.linear_fwd(attn_out, params["w_o"], params["b_o"])
    y = a + o
    ln, ln_ctx = F.layer_norm_fwd(y, params["ln2_g"], params["ln2_b"])
    h1, fc1_ctx = F.linear_fwd(ln, params["w_fc1"], params["b_fc1"])
    g, g_ctx = F.gelu_fwd(h1)
    h2, fc2_ctx = F.linear_fwd(g, params["w_fc2"], params["b_fc2"])
    z = y + h2
    return z, (o_ctx, ln_ctx, fc1_ctx, g_ctx, fc2_ctx)


def post_attention_bwd(ctx, dz: np.ndarray):
    """Returns ``(d_attn_out, da, grads)``."""
    o_ctx, ln_ctx, fc1_ctx, g_ctx, fc2_ctx = ctx
    dg, dw2, db2 = F.linear_bwd(fc2_ctx, dz)
    dh1 = F.gelu_bwd(g_ctx, dg)
    dln, dw1, db1 = F.linear_bwd(fc1_ctx, dh1)
    dy_ln, dg2, dbeta2 = F.layer_norm_bwd(ln_ctx, dln)
    dy = dz + dy_ln  # residual join
    d_attn, dwo, dbo = F.linear_bwd(o_ctx, dy)
    grads = {
        "w_o": dwo,
        "b_o": dbo,
        "ln2_g": dg2,
        "ln2_b": dbeta2,
        "w_fc1": dw1,
        "b_fc1": db1,
        "w_fc2": dw2,
        "b_fc2": db2,
    }
    return d_attn, dy, grads


# -- embedding / head -----------------------------------------------------------------


def embed_fwd(params: Params, tokens: np.ndarray):
    return F.embedding_fwd(tokens, params["wte"], params["wpe"])


def embed_bwd(ctx, dout: np.ndarray):
    dwte, dwpe = F.embedding_bwd(ctx, dout)
    return {"wte": dwte, "wpe": dwpe}


def head_fwd(params: Params, z: np.ndarray, targets: np.ndarray):
    """Final LayerNorm + LM head + mean cross entropy.  Returns
    ``(loss, ctx)``."""
    ln, ln_ctx = F.layer_norm_fwd(z, params["lnf_g"], params["lnf_b"])
    logits, lin_ctx = F.linear_fwd(ln, params["w_head"], params["b_head"])
    loss, ce_ctx = F.cross_entropy_fwd(logits, targets)
    return loss, (ln_ctx, lin_ctx, ce_ctx)


def head_bwd(ctx, dloss: float = 1.0):
    """Returns ``(dz, grads)``."""
    ln_ctx, lin_ctx, ce_ctx = ctx
    dlogits = F.cross_entropy_bwd(ce_ctx, dloss)
    dln, dw, db = F.linear_bwd(lin_ctx, dlogits)
    dz, dg, dbeta = F.layer_norm_bwd(ln_ctx, dln)
    return dz, {"lnf_g": dg, "lnf_b": dbeta, "w_head": dw, "b_head": db}
