"""Single-device GPT reference model built from the phase blocks.

This is the ground truth the pipeline executors are checked against:
same parameters, same micro batches, gradients accumulated over the
batch -- any schedule that claims unchanged computation semantics
(paper Section 4.1) must match its loss and every parameter gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.config import ModelConfig
from repro.nn import blocks

__all__ = ["GPTModel", "GPTGradients"]


@dataclass
class GPTGradients:
    """Parameter gradients keyed like the parameters."""

    embed: dict[str, np.ndarray]
    layers: list[dict[str, np.ndarray]]
    head: dict[str, np.ndarray]

    def flat(self) -> dict[str, np.ndarray]:
        out = {f"embed.{k}": v for k, v in self.embed.items()}
        for i, lg in enumerate(self.layers):
            out.update({f"layer{i}.{k}": v for k, v in lg.items()})
        out.update({f"head.{k}": v for k, v in self.head.items()})
        return out


@dataclass
class GPTModel:
    """A complete GPT model with explicit forward/backward.

    Parameters live in plain dicts so virtual devices can hold shards of
    them without any framework machinery.
    """

    config: ModelConfig
    max_seq: int
    embed: dict[str, np.ndarray] = field(default_factory=dict)
    layers: list[dict[str, np.ndarray]] = field(default_factory=list)
    head: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def init(cls, config: ModelConfig, max_seq: int, seed: int = 0) -> "GPTModel":
        rng = np.random.default_rng(seed)
        embed = blocks.init_embed_params(rng, config.vocab_size, config.hidden_size, max_seq)
        layers = [
            blocks.init_layer_params(rng, config.hidden_size, config.ffn_multiplier)
            for _ in range(config.num_layers)
        ]
        head = blocks.init_head_params(rng, config.vocab_size, config.hidden_size)
        return cls(config=config, max_seq=max_seq, embed=embed, layers=layers, head=head)

    def zero_grads(self) -> GPTGradients:
        return GPTGradients(
            embed={k: np.zeros_like(v) for k, v in self.embed.items()},
            layers=[
                {k: np.zeros_like(v) for k, v in lp.items()} for lp in self.layers
            ],
            head={k: np.zeros_like(v) for k, v in self.head.items()},
        )

    # -- forward/backward for one micro batch ------------------------------------

    def forward_backward_micro_batch(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        grads: GPTGradients,
        ship_qkv: bool = False,
    ) -> float:
        """Accumulate this micro batch's gradients into ``grads``.

        ``ship_qkv`` selects the mathematically-identical formulation in
        which the QKV linear is computed 'inside' the attention phase --
        used to confirm the weight-shipping optimisation is semantics-
        preserving even on a single device.
        """
        cfg = self.config
        a, embed_ctx = blocks.embed_fwd(self.embed, tokens)
        layer_ctxs = []
        for lp in self.layers:
            x, pre_ctx = blocks.pre_attention_fwd(lp, a, ship_qkv)
            shipped = (lp["w_qkv"], lp["b_qkv"]) if ship_qkv else None
            attn_out, attn_ctx = blocks.attention_fwd(x, cfg.num_heads, shipped)
            z, post_ctx = blocks.post_attention_fwd(lp, attn_out, a)
            layer_ctxs.append((pre_ctx, attn_ctx, post_ctx))
            a = z
        loss, head_ctx = blocks.head_fwd(self.head, a, targets)

        dz, head_grads = blocks.head_bwd(head_ctx)
        _acc(grads.head, head_grads)
        for i in range(cfg.num_layers - 1, -1, -1):
            pre_ctx, attn_ctx, post_ctx = layer_ctxs[i]
            d_attn, da_resid, post_grads = blocks.post_attention_bwd(post_ctx, dz)
            _acc(grads.layers[i], post_grads)
            dx, qkv_grads = blocks.attention_bwd(attn_ctx, d_attn)
            if qkv_grads is not None:
                dw, db = qkv_grads
                grads.layers[i]["w_qkv"] += dw
                grads.layers[i]["b_qkv"] += db
            da_pre, pre_grads = blocks.pre_attention_bwd(pre_ctx, dx)
            _acc(grads.layers[i], pre_grads)
            dz = da_pre + da_resid
        embed_grads = blocks.embed_bwd(embed_ctx, dz)
        _acc(grads.embed, embed_grads)
        return float(loss)

    def forward_backward_batch(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        ship_qkv: bool = False,
    ) -> tuple[list[float], GPTGradients]:
        """Run every micro batch (leading axis) and sum gradients.

        ``tokens``/``targets``: ``[m, s, b]`` integer arrays.
        """
        grads = self.zero_grads()
        losses = [
            self.forward_backward_micro_batch(tokens[i], targets[i], grads, ship_qkv)
            for i in range(tokens.shape[0])
        ]
        return losses, grads


def _acc(into: dict[str, np.ndarray], from_: dict[str, np.ndarray]) -> None:
    for k, v in from_.items():
        into[k] += v
