"""Optimizers over nested parameter dicts (for the convergence examples)."""

from __future__ import annotations

import numpy as np

from repro.nn.transformer import GPTGradients, GPTModel

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain SGD with optional momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._vel: dict[str, np.ndarray] = {}

    def step(self, model: GPTModel, grads: GPTGradients) -> None:
        for name, p, g in _walk(model, grads):
            if self.momentum > 0:
                v = self._vel.setdefault(name, np.zeros_like(p))
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class Adam:
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self.t = 0
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def step(self, model: GPTModel, grads: GPTGradients) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        c1 = 1.0 - b1**self.t
        c2 = 1.0 - b2**self.t
        for name, p, g in _walk(model, grads):
            m = self._m.setdefault(name, np.zeros_like(p))
            v = self._v.setdefault(name, np.zeros_like(p))
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / c1) / (np.sqrt(v / c2) + self.eps)


def _walk(model: GPTModel, grads: GPTGradients):
    for k in model.embed:
        yield f"embed.{k}", model.embed[k], grads.embed[k]
    for i, lp in enumerate(model.layers):
        for k in lp:
            yield f"layer{i}.{k}", lp[k], grads.layers[i][k]
    for k in model.head:
        yield f"head.{k}", model.head[k], grads.head[k]
