"""Numpy transformer substrate with exact hand-written backward passes."""

from repro.nn.optim import Adam, SGD
from repro.nn.transformer import GPTGradients, GPTModel

__all__ = ["GPTModel", "GPTGradients", "Adam", "SGD"]
