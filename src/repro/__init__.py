"""HelixPipe reproduction: attention parallel pipeline parallelism.

Subpackages
-----------
cluster / costmodel / model / comm
    Simulated hardware and analytic cost substrates.
schedules / core
    Schedule IR, baselines (1F1B, GPipe, ZB1P, AdaPipe) and the paper's
    contribution (attention parallel partition + FILO schedules).
sim / runtime / memsim
    The three executors: discrete-event timing, functional numpy math,
    caching-allocator memory.
analysis / experiments
    Closed-form formulas, reporting, and one module per paper figure.
"""

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "comm",
    "costmodel",
    "model",
    "schedules",
    "core",
    "sim",
    "runtime",
    "memsim",
    "nn",
    "analysis",
    "experiments",
]
