"""HelixPipe reproduction: attention parallel pipeline parallelism.

Subpackages
-----------
cluster / costmodel / model / comm
    Simulated hardware and analytic cost substrates.
workloads
    Workload presets and shape parsing (one resolution path for the
    CLI, tuner and experiments) plus token-budget ``WorkloadGrid``
    planning axes.
schedules / core
    Schedule IR, verification passes, the schedule registry, baselines
    (1F1B, GPipe, ZB1P, AdaPipe) and the paper's contribution
    (attention parallel partition + FILO schedules).
tuner
    Auto-tuning planner: searches the registered schedule space for the
    fastest plan under a memory cap; ``tune_grid`` adds the workload
    grid itself as a search axis.
sim / runtime / memsim
    The three executors: discrete-event timing, functional numpy math,
    caching-allocator memory.
analysis / experiments
    Closed-form formulas, reporting, and the experiment registry with
    one registered spec per paper figure/table.

Registry quickstart
-------------------
Schedules are registered by name and built through one uniform
signature; every build runs the verification pass pipeline (SEND/RECV
tag matching, static deadlock-freedom, program order, stash balance):

>>> from repro.schedules import available_schedules, build_schedule, UnitCosts
>>> available_schedules()
['1f1b', 'adapipe', 'gpipe', 'helix', 'helix-naive', ...]
>>> sched = build_schedule("helix", (4, 8), UnitCosts(num_layers=4))

New schedules self-register with the decorator::

    from repro.schedules import register_schedule

    @register_schedule("my-sched", family="layerwise",
                       options={"include_embed": True, "include_head": True},
                       divisor=lambda p, opts: p)
    def build_my_sched(num_stages, num_micro_batches, costs, **options):
        ...

Tuner quickstart
----------------
:func:`repro.tuner.autotune` sweeps registered schedules x recompute
strategies x feasible micro-batch counts x each schedule's option grid,
evaluates each candidate with the discrete-event simulator behind a
memoizing cost cache, and returns ranked plans with per-candidate
infeasibility reasons.  Large grids evaluate in a process pool
(``workers=N``) and the cache persists to disk:

>>> from repro.experiments import Workload
>>> from repro.tuner import CostCache, autotune
>>> from repro.analysis import format_plan_table
>>> cache = CostCache()
>>> plans = autotune(Workload.paper("7B", "H20", 8, 65536),
...                  cache=cache, workers=4)
>>> print(format_plan_table(plans[:5]))
>>> cache.save("sweep-cache.json")   # later: CostCache.from_file(...)

See ``examples/autotune_demo.py`` for a runnable walkthrough.

Command line
------------
Everything above is also reachable without a script through the
registry-driven CLI (:mod:`repro.cli`)::

    python -m repro list
    python -m repro describe helix -p 8
    python -m repro build helix --model 7B --gpu H20 -p 8 --seq-len 64k
    python -m repro simulate zb1p --model 7B --gpu H20 -p 8 --seq-len 64k
    python -m repro tune --model 7B --gpu H20 -p 8 --seq-len 64k \\
        --workers 4 --cache sweep-cache.json
    python -m repro tune --budget-tokens 1M --seq-lens 16k,32k,64k -p 4,8
    python -m repro experiment run fig8_throughput --smoke --json --out out/
"""

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "comm",
    "costmodel",
    "model",
    "workloads",
    "schedules",
    "core",
    "tuner",
    "sim",
    "runtime",
    "memsim",
    "nn",
    "analysis",
    "experiments",
]
