"""HelixPipe reproduction: attention parallel pipeline parallelism.

Subpackages
-----------
cluster / costmodel / model / comm
    Simulated hardware and analytic cost substrates.
schedules / core
    Schedule IR, verification passes, the schedule registry, baselines
    (1F1B, GPipe, ZB1P, AdaPipe) and the paper's contribution
    (attention parallel partition + FILO schedules).
tuner
    Auto-tuning planner: searches the registered schedule space for the
    fastest plan under a memory cap.
sim / runtime / memsim
    The three executors: discrete-event timing, functional numpy math,
    caching-allocator memory.
analysis / experiments
    Closed-form formulas, reporting, and one module per paper figure.

Registry quickstart
-------------------
Schedules are registered by name and built through one uniform
signature; every build runs the verification pass pipeline (SEND/RECV
tag matching, static deadlock-freedom, program order, stash balance):

>>> from repro.schedules import available_schedules, build_schedule, UnitCosts
>>> available_schedules()
['1f1b', 'adapipe', 'gpipe', 'helix', 'helix-naive', ...]
>>> sched = build_schedule("helix", (4, 8), UnitCosts(num_layers=4))

New schedules self-register with the decorator::

    from repro.schedules import register_schedule

    @register_schedule("my-sched", family="layerwise",
                       options={"include_embed": True, "include_head": True},
                       divisor=lambda p, opts: p)
    def build_my_sched(num_stages, num_micro_batches, costs, **options):
        ...

Tuner quickstart
----------------
:func:`repro.tuner.autotune` sweeps registered schedules x recompute
strategies x feasible micro-batch counts, evaluates each candidate with
the discrete-event simulator behind a memoizing cost cache, and returns
ranked plans with per-candidate infeasibility reasons:

>>> from repro.experiments import Workload
>>> from repro.tuner import autotune
>>> from repro.analysis import format_plan_table
>>> plans = autotune(Workload.paper("7B", "H20", 8, 65536))
>>> print(format_plan_table(plans[:5]))

See ``examples/autotune_demo.py`` for a runnable walkthrough.
"""

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "comm",
    "costmodel",
    "model",
    "schedules",
    "core",
    "tuner",
    "sim",
    "runtime",
    "memsim",
    "nn",
    "analysis",
    "experiments",
]
