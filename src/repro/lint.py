"""Registry-wide static analysis sweep behind ``repro lint``.

:func:`lint_schedules` builds every requested registered schedule for a
preset workload at each pipeline size, runs the full analysis pipeline
(:func:`repro.schedules.analysis.run_analysis`) with the workload's
static memory and HBM cap as context, and aggregates the findings into
one :class:`LintReport`.  The CLI renders it as aligned tables or JSON;
exit status is non-zero only on ERROR findings (``strict=True`` promotes
warnings to failures).

A registered schedule whose micro-batch divisor precludes the requested
count is recorded as a *skipped* cell with its build reason -- the same
policy the tuner uses for infeasible candidates -- rather than a lint
failure: lint checks schedules, not workload shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.schedules.analysis import (
    AnalysisContext,
    AnalysisReport,
    format_issue_table,
    run_analysis,
    static_peak_memory,
)
from repro.schedules.registry import (
    ScheduleBuildError,
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.workloads import Workload

__all__ = ["LintCell", "LintReport", "lint_schedules", "default_micro_batches"]

_GIB = float(1 << 30)


def default_micro_batches(spec: Any, p: int) -> int:
    """The 2p protocol budget rounded up onto the spec's divisor grid."""
    d = spec.micro_batch_divisor(p)
    return ((2 * p + d - 1) // d) * d


@dataclass
class LintCell:
    """One analyzed (schedule, p, m, recompute) cell of the sweep."""

    schedule: str
    p: int
    m: int
    recompute: str
    report: AnalysisReport | None = None
    static_peaks: list[float] = field(default_factory=list)
    skip_reason: str | None = None

    @property
    def errors(self) -> int:
        return 0 if self.report is None else len(self.report.errors)

    @property
    def warnings(self) -> int:
        return 0 if self.report is None else len(self.report.warnings)

    @property
    def peak_gib(self) -> float | None:
        return max(self.static_peaks) / _GIB if self.static_peaks else None

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schedule": self.schedule,
            "p": self.p,
            "m": self.m,
            "recompute": self.recompute,
        }
        if self.skip_reason is not None:
            out["skipped"] = self.skip_reason
            return out
        assert self.report is not None
        out.update(self.report.to_json_dict())
        out["static_peak_bytes"] = list(self.static_peaks)
        return out


@dataclass
class LintReport:
    """The aggregated result of one :func:`lint_schedules` sweep."""

    cells: list[LintCell]
    workload_label: str
    strict: bool = False

    @property
    def total_errors(self) -> int:
        return sum(c.errors for c in self.cells)

    @property
    def total_warnings(self) -> int:
        return sum(c.warnings for c in self.cells)

    @property
    def ok(self) -> bool:
        """Gate status: errors always fail; warnings only under strict."""
        if self.total_errors:
            return False
        return not (self.strict and self.total_warnings)

    def format(self, verbose: bool = False) -> str:
        lines = [f"lint sweep: {self.workload_label}"]
        width = max(len(c.schedule) for c in self.cells) if self.cells else 8
        for c in self.cells:
            head = f"  {c.schedule:<{width}}  p={c.p} m={c.m:<3d} {c.recompute:<14}"
            if c.skip_reason is not None:
                lines.append(f"{head} skipped: {c.skip_reason}")
                continue
            peak = f"peak {c.peak_gib:6.2f} GiB" if c.peak_gib is not None else ""
            status = "ok" if not c.errors else f"{c.errors} ERROR(S)"
            if c.warnings:
                status += f", {c.warnings} warning(s)"
            lines.append(f"{head} {peak}  {status}")
            assert c.report is not None
            shown = c.report.issues if verbose else c.report.errors
            if not verbose and self.strict:
                shown = c.report.issues
            if shown:
                table = format_issue_table(
                    sorted(shown, key=lambda i: (-i.severity.rank,))
                )
                lines.extend("    " + ln for ln in table.splitlines())
        gate = "strict (warnings fail)" if self.strict else "errors fail"
        lines.append(
            f"lint: {self.total_errors} error(s), "
            f"{self.total_warnings} warning(s) across {len(self.cells)} "
            f"cell(s) [{gate}] -> {'PASS' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload_label,
            "strict": self.strict,
            "ok": self.ok,
            "errors": self.total_errors,
            "warnings": self.total_warnings,
            "cells": [c.to_json_dict() for c in self.cells],
        }


def lint_schedules(
    schedules: Sequence[str] | None = None,
    pp_sizes: Sequence[int] = (2, 4),
    num_micro_batches: int | None = None,
    model: str = "1.3B",
    gpu: str = "H20",
    seq_len: int = 8192,
    passes: Sequence[str] | None = None,
    strict: bool = False,
) -> LintReport:
    """Run the analysis pipeline over registered schedules x ``pp_sizes``.

    ``num_micro_batches=None`` gives every schedule the 2p-protocol
    budget rounded onto its own divisor grid; an explicit count is used
    verbatim (schedules it precludes become skipped cells).  ``passes``
    restricts the pipeline to the named passes (default: all).
    """
    names = list(schedules) if schedules else available_schedules()
    cells: list[LintCell] = []
    for p in pp_sizes:
        wl = Workload.paper(model, gpu, p, seq_len)
        static = wl.static_memory()
        context = AnalysisContext(
            static_memory_bytes=static,
            memory_cap_bytes=wl.cluster.node.gpu.hbm_bytes,
        )
        for name in names:
            spec = get_schedule(name)
            m = (
                num_micro_batches
                if num_micro_batches is not None
                else default_micro_batches(spec, p)
            )
            cell = LintCell(
                schedule=name, p=p, m=m, recompute=spec.default_recompute.value
            )
            opts = workload_option_defaults(spec, wl)
            try:
                # verify=False: the analysis pipeline *contains* the
                # verification passes; running them twice per cell would
                # only slow the sweep, and a failing schedule should
                # produce a report, not a build exception.
                sched = spec.build(
                    (p, m), wl.costs(spec.default_recompute), verify=False, **opts
                )
            except ScheduleBuildError as err:
                cell.skip_reason = str(err)
                cells.append(cell)
                continue
            cell.report = run_analysis(sched, passes=passes, context=context)
            cell.static_peaks = static_peak_memory(sched, static)
            cells.append(cell)
    label = (
        f"{model} on {gpu}, seq {seq_len}, "
        f"p in {{{', '.join(str(p) for p in pp_sizes)}}}, "
        f"{len(names)} schedule(s)"
    )
    return LintReport(cells=cells, workload_label=label, strict=strict)
