"""Allocation traces for the chunked-MLP fragmentation study (Section 4.4.2).

The paper observed "severe memory fragmentation due to irregular
allocations in MLP computations, worsened by long sequences and the
two-fold FILO schedule".  We regenerate that workload synthetically: a
training phase alternates long-lived activation stashes (FILO order:
allocated through the forward, freed in reverse through the backward)
with large transient MLP buffers whose sizes vary per layer-phase.

* **Unchunked**: each MLP forward allocates one ``[s, b, 4h]`` transient
  (plus odd-sized all-gather workspaces), a different size every time
  once sequence-parallel gather sizes and recompute re-runs interleave --
  these irregular blocks land between long-lived stashes and pin whole
  segments.
* **Chunked** (:func:`chunked_mlp_trace`): the same bytes flow through
  ``ceil(s / c)`` equal chunks plus two pre-allocated communication
  buffers that are reused for the entire run.

Replaying both traces through :class:`~repro.memsim.allocator.CachingAllocator`
yields the reserved-vs-allocated gap the paper calls fragmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.allocator import CachingAllocator

__all__ = ["TraceEvent", "mlp_phase_trace", "chunked_mlp_trace", "replay"]


@dataclass(frozen=True)
class TraceEvent:
    """``op`` is "malloc" or "free"; ``name`` identifies the buffer."""

    op: str
    name: str
    size: int = 0


def _stash_events(layer: int, mb: int, stash_bytes: int) -> TraceEvent:
    return TraceEvent("malloc", f"stash:L{layer}:mb{mb}", stash_bytes)


def _mlp_transients(tag: str, s: int, b: int, h: int, elem: int, pad: int):
    """Unchunked MLP dataflow: overlapping transients of mixed sizes.

    all-gather out [s,b,h] -> fc1 out [s,b,4h] -> gelu out [s,b,4h] ->
    fc2 out [s,b,h] -> reduce-scatter; consecutive buffers overlap in
    lifetime (producer still live while consumer output is allocated),
    which is what splits segments around the long-lived stashes.
    """
    small = s * b * h * elem + pad
    big = 4 * s * b * h * elem + pad
    return [
        TraceEvent("malloc", f"{tag}:ag", small),
        TraceEvent("malloc", f"{tag}:fc1", big),
        TraceEvent("free", f"{tag}:ag"),
        TraceEvent("malloc", f"{tag}:gelu", big),
        TraceEvent("free", f"{tag}:fc1"),
        TraceEvent("malloc", f"{tag}:fc2", small),
        TraceEvent("free", f"{tag}:gelu"),
    ], TraceEvent("free", f"{tag}:fc2")


def mlp_phase_trace(
    num_layers: int,
    num_micro_batches: int,
    s: int,
    b: int,
    h: int,
    elem: int = 2,
    jitter_seed: int = 0,
) -> list[TraceEvent]:
    """FILO schedule with *unchunked* MLP transients.

    Transient sizes vary with an irregular per-phase pad (sequence
    remainders, attention workspaces), and the long-lived stash of each
    (layer, micro batch) is allocated between them -- it lands inside
    holes left by freed transients, pinning segments exactly as the paper
    describes.
    """
    rng = np.random.default_rng(jitter_seed)
    stash = s * b * h * elem  # per-phase share of the w/o-attention stash
    events: list[TraceEvent] = []
    for mb in range(num_micro_batches):
        for layer in range(num_layers):
            pad = int(rng.integers(0, s)) * b * elem * 4
            pre, last_free = _mlp_transients(f"mlp:L{layer}:mb{mb}", s, b, h, elem, pad)
            events.extend(pre)
            events.append(_stash_events(layer, mb, stash))
            events.append(last_free)
    for mb in reversed(range(num_micro_batches)):
        for layer in reversed(range(num_layers)):
            pad = int(rng.integers(0, s)) * b * elem * 4
            pre, last_free = _mlp_transients(f"mlpb:L{layer}:mb{mb}", s, b, h, elem, pad)
            events.extend(pre)
            events.append(TraceEvent("free", f"stash:L{layer}:mb{mb}"))
            events.append(last_free)
    return events


def chunked_mlp_trace(
    num_layers: int,
    num_micro_batches: int,
    s: int,
    b: int,
    h: int,
    chunk_rows: int = 2048,
    elem: int = 2,
) -> list[TraceEvent]:
    """Same workload with chunked MLP + pre-allocated comm buffers.

    Chunks are equal-sized and processed one at a time, so every free
    block is immediately reusable by the next chunk; the two
    communication buffers are allocated once up front (Section 4.4.2
    "pre-allocating reusable buffers ... eliminating dynamic memory
    overhead").
    """
    stash = s * b * h * elem
    chunk = 4 * chunk_rows * b * h * elem
    n_chunks = (s + chunk_rows - 1) // chunk_rows
    events: list[TraceEvent] = [
        TraceEvent("malloc", "comm:all_gather", s * b * h * elem),
        TraceEvent("malloc", "comm:reduce_scatter", s * b * h * elem),
    ]

    def run_chunks(tag: str) -> None:
        for c in range(n_chunks):
            events.append(TraceEvent("malloc", f"{tag}:c{c}", chunk))
            events.append(TraceEvent("free", f"{tag}:c{c}"))

    for mb in range(num_micro_batches):
        for layer in range(num_layers):
            run_chunks(f"mlp:L{layer}:mb{mb}")
            events.append(_stash_events(layer, mb, stash))
    for mb in reversed(range(num_micro_batches)):
        for layer in reversed(range(num_layers)):
            run_chunks(f"mlpb:L{layer}:mb{mb}")
            events.append(TraceEvent("free", f"stash:L{layer}:mb{mb}"))
    events.append(TraceEvent("free", "comm:all_gather"))
    events.append(TraceEvent("free", "comm:reduce_scatter"))
    return events


def replay(events: list[TraceEvent], allocator: CachingAllocator):
    """Run a trace through ``allocator``.

    Returns ``(final_stats, max_fragmentation_bytes)`` where the second
    value is the largest reserved-minus-allocated gap observed at any
    point of the replay -- the fragmentation the paper fights.
    """
    handles: dict[str, int] = {}
    max_frag = 0
    for ev in events:
        if ev.op == "malloc":
            if ev.name in handles:
                raise ValueError(f"double malloc of {ev.name}")
            handles[ev.name] = allocator.malloc(ev.size)
        elif ev.op == "free":
            allocator.free(handles.pop(ev.name))
        else:
            raise ValueError(f"unknown trace op {ev.op!r}")
        max_frag = max(max_frag, allocator.reserved - allocator.allocated)
    return allocator.stats(), max_frag
