"""Caching-allocator simulator and fragmentation traces (Section 4.4.2)."""

from repro.memsim.allocator import AllocatorStats, CachingAllocator, OutOfMemoryError
from repro.memsim.trace import TraceEvent, chunked_mlp_trace, mlp_phase_trace, replay

__all__ = [
    "CachingAllocator",
    "AllocatorStats",
    "OutOfMemoryError",
    "TraceEvent",
    "mlp_phase_trace",
    "chunked_mlp_trace",
    "replay",
]
