"""A PyTorch-style caching allocator simulator.

Reproduces the memory-fragmentation mechanics behind the paper's
chunked-MLP design (Section 4.4.2) and its use of
``PYTORCH_CUDA_ALLOC_CONF=expandable_segments`` (Section 5.1):

* the allocator reserves device memory in **segments** (cudaMalloc) and
  carves **blocks** out of them with best-fit + split/coalesce;
* a request that fits in no cached block reserves a new segment; when the
  device cannot serve it, that's an OOM even though *allocated* bytes may
  be far below capacity -- the difference is fragmentation;
* ``expandable_segments`` lets the last segment grow in place (virtual
  memory stitching a la GMLake), which mitigates -- but does not
  eliminate -- fragmentation from irregularly-sized transient buffers.

Chunked MLP replaces one huge transient ``[s, b, 4h]`` buffer of a
different size per phase with many equal-sized ``[c, b, 4h]`` chunks that
recycle perfectly through the free list, plus pre-allocated communication
buffers; the fragmentation benchmark measures exactly this effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CachingAllocator", "OutOfMemoryError", "AllocatorStats"]


class OutOfMemoryError(RuntimeError):
    """Reserved + requested bytes exceed device capacity."""


@dataclass
class _Block:
    offset: int
    size: int
    free: bool = True


@dataclass
class _Segment:
    base: int
    size: int
    blocks: list[_Block] = field(default_factory=list)

    def free_bytes(self) -> int:
        return sum(b.size for b in self.blocks if b.free)


@dataclass(frozen=True)
class AllocatorStats:
    """Point-in-time allocator statistics (bytes)."""

    allocated: int
    reserved: int
    peak_allocated: int
    peak_reserved: int
    num_segments: int

    @property
    def fragmentation(self) -> int:
        """Reserved-but-unallocated bytes (PyTorch's 'reserved - allocated')."""
        return self.reserved - self.allocated

    @property
    def fragmentation_ratio(self) -> float:
        return self.fragmentation / self.reserved if self.reserved else 0.0


class CachingAllocator:
    """Best-fit caching allocator over a fixed-capacity device.

    Parameters
    ----------
    capacity:
        Device memory in bytes.
    segment_granularity:
        Segments are rounded up to this multiple (cudaMalloc granularity;
        PyTorch uses 2 MiB buckets for small allocations -- we use one
        knob for simplicity).
    expandable_segments:
        Grow the most recent segment in place instead of reserving a new
        one when the request does not fit in any cached block.
    """

    def __init__(
        self,
        capacity: int,
        segment_granularity: int = 2 << 20,
        expandable_segments: bool = False,
    ) -> None:
        if capacity <= 0 or segment_granularity <= 0:
            raise ValueError("capacity and granularity must be positive")
        self.capacity = int(capacity)
        self.granularity = int(segment_granularity)
        self.expandable = expandable_segments
        self.segments: list[_Segment] = []
        self._live: dict[int, tuple[_Segment, _Block]] = {}
        self._next_handle = 0
        self._next_base = 0
        self.allocated = 0
        self.reserved = 0
        self.peak_allocated = 0
        self.peak_reserved = 0

    # -- public API --------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns an opaque handle."""
        if size <= 0:
            raise ValueError("size must be positive")
        size = int(size)
        found = self._best_fit(size)
        if found is None:
            self._reserve_for(size)
            found = self._best_fit(size)
            if found is None:  # pragma: no cover - reserve guarantees fit
                raise OutOfMemoryError(f"no block for {size} after reserve")
        seg, block = found
        if block.size > size:
            rest = _Block(offset=block.offset + size, size=block.size - size)
            idx = seg.blocks.index(block)
            seg.blocks.insert(idx + 1, rest)
            block.size = size
        block.free = False
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = (seg, block)
        self.allocated += size
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        return handle

    def free(self, handle: int) -> None:
        """Return a block to the cache (memory stays reserved)."""
        seg, block = self._live.pop(handle)
        block.free = True
        self.allocated -= block.size
        self._coalesce(seg)

    def stats(self) -> AllocatorStats:
        return AllocatorStats(
            allocated=self.allocated,
            reserved=self.reserved,
            peak_allocated=self.peak_allocated,
            peak_reserved=self.peak_reserved,
            num_segments=len(self.segments),
        )

    def empty_cache(self) -> None:
        """Release fully-free segments back to the device (torch.cuda.empty_cache)."""
        keep: list[_Segment] = []
        for seg in self.segments:
            if all(b.free for b in seg.blocks):
                self.reserved -= seg.size
            else:
                keep.append(seg)
        self.segments = keep

    # -- internals ----------------------------------------------------------------

    def _best_fit(self, size: int) -> tuple[_Segment, _Block] | None:
        best: tuple[_Segment, _Block] | None = None
        for seg in self.segments:
            for block in seg.blocks:
                if block.free and block.size >= size:
                    if best is None or block.size < best[1].size:
                        best = (seg, block)
        return best

    def _round_up(self, size: int) -> int:
        g = self.granularity
        return ((size + g - 1) // g) * g

    def _reserve_for(self, size: int) -> None:
        need = self._round_up(size)
        if self.expandable and self.segments:
            # Grow the last segment in place if its tail block is free.
            seg = self.segments[-1]
            tail = seg.blocks[-1]
            grow = need if not tail.free else self._round_up(size - tail.size)
            if self.reserved + grow > self.capacity:
                raise OutOfMemoryError(
                    f"cannot grow segment by {grow} (reserved {self.reserved}, "
                    f"capacity {self.capacity})"
                )
            if tail.free:
                tail.size += grow
            else:
                seg.blocks.append(_Block(offset=seg.base + seg.size, size=grow))
            seg.size += grow
            self.reserved += grow
        else:
            if self.reserved + need > self.capacity:
                raise OutOfMemoryError(
                    f"cannot reserve {need} bytes (reserved {self.reserved}, "
                    f"allocated {self.allocated}, capacity {self.capacity})"
                )
            seg = _Segment(base=self._next_base, size=need)
            self._next_base += need
            seg.blocks.append(_Block(offset=seg.base, size=need))
            self.segments.append(seg)
            self.reserved += need
        self.peak_reserved = max(self.peak_reserved, self.reserved)

    @staticmethod
    def _coalesce(seg: _Segment) -> None:
        merged: list[_Block] = []
        for block in seg.blocks:
            if merged and merged[-1].free and block.free:
                merged[-1].size += block.size
            else:
                merged.append(block)
        seg.blocks = merged
