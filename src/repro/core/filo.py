"""HelixPipe FILO micro-batch schedule (paper Sections 4.2-4.4).

One generator covers both schedules of the paper:

* ``fold=1``: the **naive FILO** schedule (Figure 7a).  Micro batches are
  admitted in loops of ``p``; each layer's pre-attention runs sequentially
  on the owner stage while the attention of the loop's ``p`` micro batches
  runs in parallel, one per stage.
* ``fold=2``: the **two-fold FILO** schedule (Figure 7b).  Loops admit
  ``2p`` micro batches; pairs of consecutive micro batches share an
  attention stage, so while one micro batch of the pair computes, the
  other's boundary transfer proceeds behind it, hiding the communication
  (Section 4.3.2).

Backward traverses loops and micro batches in reverse (first-in,
last-out), which equalises the number of stashed micro batches across
stages -- the memory-balance property of Table 2.  When
``recompute=WITHOUT_ATTENTION`` an explicit ``RC`` instruction
re-materialises the pre/post intermediates right before each backward
step while the attention backward consumes its flash-attention stash
directly (Section 4.4.1).

Data flow per layer ``l`` and micro batch ``i`` (weight shipping per
Section 4.2):

.. code-block:: none

   owner(l) --[LN-out + residual (+W_qkv)]--> attn_stage(l, i)
   attn_stage(l, i) --[attn-out + residual]--> owner(l+1)

and the mirrored gradients in backward, with the shipped QKV weight
gradient returning to the owner.

**Program ordering.**  Consecutive loops pipeline into each other: while
a stage waits for the attention outputs of one loop it computes the
pre-attentions of the next, keeping the bubble independent of the number
of loops (the figure-7a packing).  The builder derives each stage's
instruction order with a deterministic list-scheduling pass over the task
DAG -- exactly what a static pipeline runtime does -- and then emits
RECVs immediately before the consuming compute and SENDs immediately
after the producer, so the event-driven executors can overlap transfers
behind independent compute.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.partition import attention_stage, helix_partition, owner_segment, owner_stage
from repro.model.partition import Segment, SegmentKind
from repro.schedules.costs import CostProvider
from repro.schedules.ir import (
    ComputeInstr,
    Instr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.planner import PlannedTask, critical_path_levels, list_schedule
from repro.schedules.registry import register_schedule

__all__ = ["build_helix_filo", "HelixFiloBuilder"]


def _helix_divisor(p: int, opts) -> int:
    """Loop size ``fold * p`` (a single stage accepts any micro count)."""
    return opts.get("fold", 2) * p if p > 1 else 1


@dataclass
class HelixFiloBuilder:
    """Materialise the HelixPipe FILO schedule.

    Parameters
    ----------
    num_stages, num_micro_batches:
        ``num_micro_batches`` must be a multiple of ``fold * num_stages``
        (the loop size; paper Section 4.3.1).
    costs:
        Cost provider; its ``recompute`` strategy decides whether RC
        instructions are emitted.
    fold:
        1 for the naive schedule, 2 for the two-fold schedule.
    include_embed, include_head:
        Model the embedding and LM head on stage 0 (Section 4.6).
    """

    num_stages: int
    num_micro_batches: int
    costs: CostProvider
    fold: int = 2
    include_embed: bool = True
    include_head: bool = True
    #: List-scheduling priority: "filo" (loop/position order; default --
    #: reproduces the paper's figures exactly for single-loop runs and
    #: keeps the two-fold bubble independent of the loop count), "hlf"
    #: (highest critical-path level first) or "hybrid" (level within
    #: loop).  The alternatives are kept as ablation knobs.
    priority: str = "filo"

    def __post_init__(self) -> None:
        p, m, f = self.num_stages, self.num_micro_batches, self.fold
        if p <= 0 or m <= 0 or f <= 0:
            raise ValueError("num_stages, num_micro_batches and fold must be positive")
        loop = f * p if p > 1 else m
        if p > 1 and m % loop != 0:
            raise ValueError(
                f"num_micro_batches ({m}) must be a multiple of fold*p ({loop})"
            )
        self.loop_size = loop
        self.L = self.costs.num_layers
        self.partition = helix_partition(self.L, p)
        # Per-build constants hoisted off the emission hot path: boundary
        # payload sizes, the attention segment of each layer, and the
        # owner forward/backward/recompute durations per helix position.
        self._pre_to_attn = self.costs.boundary_bytes("pre_to_attn")
        self._attn_to_post = self.costs.boundary_bytes("attn_to_post")
        self._attn_seg = tuple(
            Segment(SegmentKind.ATTN, layer=l) for l in range(self.L)
        )
        self._owner_costs = tuple(
            self._owner_cost(pos) for pos in range(self.L + 1)
        )

    # -- helpers -----------------------------------------------------------------

    def _owner(self, pos: int) -> int:
        return owner_stage(pos, self.num_stages, self.L)

    def _attn_stage(self, layer: int, mb: int) -> int:
        return attention_stage(layer, mb, self.num_stages, self.fold)

    @staticmethod
    def _tag(kind: str, layer: int, mb: int) -> str:
        return f"h.{kind}:L{layer}:mb{mb}"

    def _owner_cost(self, pos: int) -> tuple[float, float, float]:
        """(forward, backward incl. head/embed, recompute) duration at pos."""
        f = b = rc = 0.0
        for seg in owner_segment(pos, self.L):
            c = self.costs.segment_cost(seg)
            f += c.f
            b += c.b
            rc += c.rc
        if pos == 0 and self.include_embed:
            c = self.costs.segment_cost(Segment(SegmentKind.EMBED))
            f += c.f
            b += c.b
        if pos == self.L and self.include_head:
            c = self.costs.segment_cost(Segment(SegmentKind.HEAD))
            f += c.f
            b += c.b
        return f, b, rc

    # -- task graph -----------------------------------------------------------------

    def _build_tasks(self) -> list[PlannedTask]:
        p, L, m = self.num_stages, self.L, self.num_micro_batches
        ids = itertools.count()
        tasks: list[PlannedTask] = []
        attn_cost = {
            l: self.costs.segment_cost(self._attn_seg[l]) for l in range(L)
        }
        owner_costs = self._owner_costs
        f_owner: dict[tuple[int, int], int] = {}
        f_attn: dict[tuple[int, int], int] = {}
        b_owner: dict[tuple[int, int], int] = {}
        num_loops = m // self.loop_size

        def loop_of(mb: int) -> int:
            return mb // self.loop_size

        def slot_of(mb: int) -> int:
            return mb % self.loop_size

        # Forward: owner(pos) consumes attention(pos-1); attention(l)
        # consumes owner(l).
        for mb in range(m):
            g, slot = loop_of(mb), slot_of(mb)
            for pos in range(L + 1):
                fdur = owner_costs[pos][0]
                deps = [] if pos == 0 else [f_attn[(pos - 1, mb)]]
                t = PlannedTask(
                    tid=next(ids),
                    stage=self._owner(pos),
                    key=(0, g, pos, 0, slot),
                    duration=fdur,
                    deps=deps,
                    payload=("f_owner", pos, mb),
                )
                tasks.append(t)
                f_owner[(pos, mb)] = t.tid
                if pos < L:
                    a = PlannedTask(
                        tid=next(ids),
                        stage=self._attn_stage(pos, mb),
                        key=(0, g, pos, 1, slot),
                        duration=attn_cost[pos].f,
                        deps=[t.tid],
                        payload=("f_attn", pos, mb),
                    )
                    tasks.append(a)
                    f_attn[(pos, mb)] = a.tid
        # Backward: FILO -- later loops and later micro batches first.  The
        # entry point (position L) is chained in strict reverse micro-batch
        # order so the backward wave is truly first-in-last-out; without
        # this, a work-conserving planner would start micro batch 0's
        # backward the moment its own forward finished.
        prev_entry: int | None = None
        for mb in reversed(range(m)):
            g, slot = loop_of(mb), slot_of(mb)
            rg = num_loops - 1 - g
            rslot = self.loop_size - 1 - slot
            for pos in range(L, -1, -1):
                _, bdur, rcdur = owner_costs[pos]
                rpos = L - pos
                if pos == L:
                    deps = [f_owner[(L, mb)]]
                    if prev_entry is not None:
                        deps.append(prev_entry)
                else:
                    deps = [b_owner.get((pos, mb), -1)]
                t = PlannedTask(
                    tid=next(ids),
                    stage=self._owner(pos),
                    key=(1, rg, rpos, 0, rslot),
                    duration=bdur + rcdur,
                    deps=[d for d in deps if d >= 0],
                    payload=("b_owner", pos, mb),
                )
                tasks.append(t)
                if pos == L:
                    prev_entry = t.tid
                if pos > 0:
                    a = PlannedTask(
                        tid=next(ids),
                        stage=self._attn_stage(pos - 1, mb),
                        key=(1, rg, rpos, 1, rslot),
                        duration=attn_cost[pos - 1].b,
                        deps=[t.tid],
                        payload=("b_attn", pos - 1, mb),
                    )
                    tasks.append(a)
                    # The owner backward below pos consumes this gradient.
                    b_owner[(pos - 1, mb)] = a.tid
        return tasks

    # -- list scheduling ---------------------------------------------------------------

    def _plan(self, tasks: list[PlannedTask]) -> list[list[PlannedTask]]:
        """Apply the priority mode and run the shared list scheduler."""
        if self.priority == "hlf":
            level = critical_path_levels(tasks)
            for t in tasks:
                t.key = (-level[t.tid], *t.key)
        elif self.priority == "hybrid":
            level = critical_path_levels(tasks)
            for t in tasks:
                phase, g, rest = t.key[0], t.key[1], t.key[2:]
                t.key = (phase, g, -level[t.tid], *rest)
        elif self.priority != "filo":
            raise ValueError(f"unknown priority {self.priority!r}")
        return list_schedule(tasks, self.num_stages)

    # -- build -------------------------------------------------------------------

    def build(self) -> Schedule:
        tasks = self._build_tasks()
        order = self._plan(tasks)
        programs: list[list[Instr]] = [[] for _ in range(self.num_stages)]
        for stage, seq in enumerate(order):
            prog = programs[stage]
            for t in seq:
                kind, pos, mb = t.payload
                self._emit_task(prog, kind, pos, mb)
        name = "helix-2fold" if self.fold == 2 else f"helix-filo{self.fold}"
        sched = Schedule(
            name=name,
            num_stages=self.num_stages,
            num_micro_batches=self.num_micro_batches,
            programs=programs,
            meta={
                "family": "helix",
                "fold": self.fold,
                "num_layers": self.L,
                "recompute": self.costs.recompute.value,
            },
        )
        # Verification is the registry's job (spec.build runs the pass
        # pipeline unless verify=False); validating here too would run
        # every pass twice per build on the tuner's hot path.
        return sched

    # -- emission -------------------------------------------------------------------

    def _emit_task(self, prog: list[Instr], kind: str, pos: int, mb: int) -> None:
        if kind == "f_owner":
            self._emit_f_owner(prog, pos, mb)
        elif kind == "f_attn":
            self._emit_f_attn(prog, pos, mb)
        elif kind == "b_owner":
            self._emit_b_owner(prog, pos, mb)
        elif kind == "b_attn":
            self._emit_b_attn(prog, pos, mb)
        else:  # pragma: no cover - exhaustive
            raise ValueError(kind)

    def _compute(
        self, op: OpType, stage: int, mb: int, seg: Segment
    ) -> ComputeInstr:
        c = self.costs.segment_cost(seg)
        if op is OpType.F:
            return ComputeInstr(
                op=op,
                stage=stage,
                micro_batch=mb,
                segment=seg,
                duration=c.f,
                stash_delta=c.stash_bytes,
                workspace=c.workspace_bytes,
            )
        if op is OpType.RC:
            return ComputeInstr(
                op=op,
                stage=stage,
                micro_batch=mb,
                segment=seg,
                duration=c.rc,
                stash_delta=c.rc_extra_stash_bytes,
                workspace=c.workspace_bytes,
            )
        release = c.stash_bytes + (c.rc_extra_stash_bytes if c.rc > 0 else 0.0)
        return ComputeInstr(
            op=OpType.B,
            stage=stage,
            micro_batch=mb,
            segment=seg,
            duration=c.b,
            stash_delta=-release,
            workspace=c.workspace_bytes,
        )

    def _emit_f_owner(self, prog: list[Instr], pos: int, mb: int) -> None:
        stage = self._owner(pos)
        if pos > 0:
            src = self._attn_stage(pos - 1, mb)
            if src != stage:
                prog.append(
                    RecvInstr(
                        stage=stage,
                        peer=src,
                        tag=self._tag("attn_out", pos - 1, mb),
                        nbytes=self._attn_to_post,
                        micro_batch=mb,
                        payload="attn_out",
                    )
                )
        if pos == 0 and self.include_embed:
            prog.append(self._compute(OpType.F, stage, mb, Segment(SegmentKind.EMBED)))
        for seg in owner_segment(pos, self.L):
            prog.append(self._compute(OpType.F, stage, mb, seg))
        if pos == self.L:
            if self.include_head:
                prog.append(
                    self._compute(OpType.F, stage, mb, Segment(SegmentKind.HEAD))
                )
        else:
            dst = self._attn_stage(pos, mb)
            if dst != stage:
                prog.append(
                    SendInstr(
                        stage=stage,
                        peer=dst,
                        tag=self._tag("pre_out", pos, mb),
                        nbytes=self._pre_to_attn,
                        micro_batch=mb,
                        payload="pre_out",
                    )
                )

    def _emit_f_attn(self, prog: list[Instr], layer: int, mb: int) -> None:
        stage = self._attn_stage(layer, mb)
        owner = self._owner(layer)
        if owner != stage:
            prog.append(
                RecvInstr(
                    stage=stage,
                    peer=owner,
                    tag=self._tag("pre_out", layer, mb),
                    nbytes=self._pre_to_attn,
                    micro_batch=mb,
                    payload="pre_out",
                )
            )
        prog.append(
            self._compute(OpType.F, stage, mb, self._attn_seg[layer])
        )
        nxt = self._owner(layer + 1)
        if nxt != stage:
            prog.append(
                SendInstr(
                    stage=stage,
                    peer=nxt,
                    tag=self._tag("attn_out", layer, mb),
                    nbytes=self._attn_to_post,
                    micro_batch=mb,
                    payload="attn_out",
                )
            )

    def _emit_b_owner(self, prog: list[Instr], pos: int, mb: int) -> None:
        stage = self._owner(pos)
        if pos < self.L:
            src = self._attn_stage(pos, mb)
            if src != stage:
                prog.append(
                    RecvInstr(
                        stage=stage,
                        peer=src,
                        tag=self._tag("d_pre_out", pos, mb),
                        nbytes=self._pre_to_attn,
                        micro_batch=mb,
                        payload="d_pre_out",
                    )
                )
        if pos == self.L and self.include_head:
            prog.append(self._compute(OpType.B, stage, mb, Segment(SegmentKind.HEAD)))
        for seg in reversed(owner_segment(pos, self.L)):
            c = self.costs.segment_cost(seg)
            if c.rc > 0.0:
                prog.append(self._compute(OpType.RC, stage, mb, seg))
            prog.append(self._compute(OpType.B, stage, mb, seg))
        if pos > 0:
            dst = self._attn_stage(pos - 1, mb)
            if dst != stage:
                prog.append(
                    SendInstr(
                        stage=stage,
                        peer=dst,
                        tag=self._tag("d_attn_out", pos - 1, mb),
                        nbytes=self._attn_to_post,
                        micro_batch=mb,
                        payload="d_attn_out",
                    )
                )
        if pos == 0 and self.include_embed:
            prog.append(self._compute(OpType.B, stage, mb, Segment(SegmentKind.EMBED)))

    def _emit_b_attn(self, prog: list[Instr], layer: int, mb: int) -> None:
        stage = self._attn_stage(layer, mb)
        src = self._owner(layer + 1)
        if src != stage:
            prog.append(
                RecvInstr(
                    stage=stage,
                    peer=src,
                    tag=self._tag("d_attn_out", layer, mb),
                    nbytes=self._attn_to_post,
                    micro_batch=mb,
                    payload="d_attn_out",
                )
            )
        prog.append(
            self._compute(OpType.B, stage, mb, self._attn_seg[layer])
        )
        dst = self._owner(layer)
        if dst != stage:
            prog.append(
                SendInstr(
                    stage=stage,
                    peer=dst,
                    tag=self._tag("d_pre_out", layer, mb),
                    nbytes=self._pre_to_attn,
                    micro_batch=mb,
                    payload="d_pre_out",
                )
            )


@register_schedule(
    "helix",
    description="HelixPipe two-fold FILO (attention parallel partition)",
    family="helix",
    options={"fold": 2, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.WITHOUT_ATTENTION,
    # HelixPipe never recomputes attention (Section 4.4.1), so only the
    # strategies the builder models faithfully are swept.
    recompute_choices=(
        RecomputeStrategy.NONE,
        RecomputeStrategy.WITHOUT_ATTENTION,
    ),
    divisor=_helix_divisor,
    # Fold 1 is the naive FILO (no transfer hiding); sweeping it lets
    # the tuner quantify what two-fold buys on a given workload.
    tune_options={"fold": (1, 2)},
)
@register_schedule(
    "helix-naive",
    description="HelixPipe naive (fold-1) FILO, no transfer hiding",
    family="helix",
    options={"fold": 1, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.WITHOUT_ATTENTION,
    recompute_choices=(
        RecomputeStrategy.NONE,
        RecomputeStrategy.WITHOUT_ATTENTION,
    ),
    # Alias of helix x fold=1 kept for the experiment method names; the
    # tuner sweeps that combination via the "helix" fold grid.
    tunable=False,
    divisor=_helix_divisor,
)
@register_schedule(
    "helix-no-recompute",
    description="HelixPipe two-fold FILO without recomputation",
    family="helix",
    options={"fold": 2, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.NONE,
    # Alias of helix x RecomputeStrategy.NONE kept for the experiment
    # method names; the tuner sweeps that combination via "helix".
    tunable=False,
    divisor=_helix_divisor,
)
def build_helix_filo(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    fold: int = 2,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """Build the HelixPipe FILO schedule (``fold=1`` naive, ``fold=2`` two-fold)."""
    return HelixFiloBuilder(
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        fold=fold,
        include_embed=include_embed,
        include_head=include_head,
    ).build()
