"""HelixPipe FILO micro-batch schedule (paper Sections 4.2-4.4).

One generator covers both schedules of the paper:

* ``fold=1``: the **naive FILO** schedule (Figure 7a).  Micro batches are
  admitted in loops of ``p``; each layer's pre-attention runs sequentially
  on the owner stage while the attention of the loop's ``p`` micro batches
  runs in parallel, one per stage.
* ``fold=2``: the **two-fold FILO** schedule (Figure 7b).  Loops admit
  ``2p`` micro batches; pairs of consecutive micro batches share an
  attention stage, so while one micro batch of the pair computes, the
  other's boundary transfer proceeds behind it, hiding the communication
  (Section 4.3.2).

Backward traverses loops and micro batches in reverse (first-in,
last-out), which equalises the number of stashed micro batches across
stages -- the memory-balance property of Table 2.  When
``recompute=WITHOUT_ATTENTION`` an explicit ``RC`` instruction
re-materialises the pre/post intermediates right before each backward
step while the attention backward consumes its flash-attention stash
directly (Section 4.4.1).

Data flow per layer ``l`` and micro batch ``i`` (weight shipping per
Section 4.2):

.. code-block:: none

   owner(l) --[LN-out + residual (+W_qkv)]--> attn_stage(l, i)
   attn_stage(l, i) --[attn-out + residual]--> owner(l+1)

and the mirrored gradients in backward, with the shipped QKV weight
gradient returning to the owner.

**Program ordering.**  Consecutive loops pipeline into each other: while
a stage waits for the attention outputs of one loop it computes the
pre-attentions of the next, keeping the bubble independent of the number
of loops (the figure-7a packing).  The builder derives each stage's
instruction order with a deterministic list-scheduling pass over the task
DAG -- exactly what a static pipeline runtime does -- and then emits
RECVs immediately before the consuming compute and SENDs immediately
after the producer, so the event-driven executors can overlap transfers
behind independent compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import attention_stage, helix_partition, owner_segment, owner_stage
from repro.model.partition import Segment, SegmentKind
from repro.schedules.costs import CostProvider
from repro.schedules.ir import (
    ComputeInstr,
    Instr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
    instr_from_proto,
)
from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.planner import PlannedTask, critical_path_levels, list_schedule
from repro.schedules.registry import register_schedule

__all__ = ["build_helix_filo", "HelixFiloBuilder"]


def _helix_divisor(p: int, opts) -> int:
    """Loop size ``fold * p`` (a single stage accepts any micro count)."""
    return opts.get("fold", 2) * p if p > 1 else 1


_new = object.__new__


def _task(tid, stage, key, duration, deps, payload):
    # PlannedTask via direct __dict__ seeding: the builder creates
    # thousands per schedule and the generated dataclass __init__ is the
    # single hottest call in task-graph construction.
    t = _new(PlannedTask)
    t.__dict__ = {
        "tid": tid,
        "stage": stage,
        "key": key,
        "duration": duration,
        "deps": deps,
        "payload": payload,
        "undone_deps": 0,
        "start": 0.0,
    }
    return t


def _comm(cls, stage, peer, tag, nbytes, mb, payload):
    # In-place __dict__ writes: SendInstr/RecvInstr are frozen, so the
    # generated __setattr__ (and plain __dict__ rebinding) would raise.
    inst = _new(cls)
    d = inst.__dict__
    d["stage"] = stage
    d["peer"] = peer
    d["tag"] = tag
    d["nbytes"] = nbytes
    d["micro_batch"] = mb
    d["payload"] = payload
    return inst


def _attn_compute(proto, stage, mb):
    inst = _new(ComputeInstr)
    d = inst.__dict__
    d.update(proto)
    d["stage"] = stage
    d["micro_batch"] = mb
    return inst


@dataclass
class HelixFiloBuilder:
    """Materialise the HelixPipe FILO schedule.

    Parameters
    ----------
    num_stages, num_micro_batches:
        ``num_micro_batches`` must be a multiple of ``fold * num_stages``
        (the loop size; paper Section 4.3.1).
    costs:
        Cost provider; its ``recompute`` strategy decides whether RC
        instructions are emitted.
    fold:
        1 for the naive schedule, 2 for the two-fold schedule.
    include_embed, include_head:
        Model the embedding and LM head on stage 0 (Section 4.6).
    """

    num_stages: int
    num_micro_batches: int
    costs: CostProvider
    fold: int = 2
    include_embed: bool = True
    include_head: bool = True
    #: List-scheduling priority: "filo" (loop/position order; default --
    #: reproduces the paper's figures exactly for single-loop runs and
    #: keeps the two-fold bubble independent of the loop count), "hlf"
    #: (highest critical-path level first) or "hybrid" (level within
    #: loop).  The alternatives are kept as ablation knobs.
    priority: str = "filo"

    def __post_init__(self) -> None:
        p, m, f = self.num_stages, self.num_micro_batches, self.fold
        if p <= 0 or m <= 0 or f <= 0:
            raise ValueError("num_stages, num_micro_batches and fold must be positive")
        loop = f * p if p > 1 else m
        if p > 1 and m % loop != 0:
            raise ValueError(
                f"num_micro_batches ({m}) must be a multiple of fold*p ({loop})"
            )
        self.loop_size = loop
        self.L = self.costs.num_layers
        L = self.L
        self.partition = helix_partition(L, p)
        # Per-build constants hoisted off the emission hot path: boundary
        # payload sizes, the attention segment of each layer, and the
        # owner forward/backward/recompute durations per helix position.
        self._pre_to_attn = self.costs.boundary_bytes("pre_to_attn")
        self._attn_to_post = self.costs.boundary_bytes("attn_to_post")
        self._attn_seg = tuple(
            Segment(SegmentKind.ATTN, layer=l) for l in range(L)
        )
        self._owner_costs = tuple(
            self._owner_cost(pos) for pos in range(L + 1)
        )
        # Dense stage tables: ``owner_stage``/``attention_stage`` are
        # pure in (pos | layer, mb mod fold*p), yet were re-derived per
        # task and per emitted instruction (tens of thousands of calls
        # per build).  One table each covers every lookup.
        self._owner_tbl = tuple(owner_stage(pos, p, L) for pos in range(L + 1))
        amod = self.fold * p
        self._attn_mod = amod
        self._attn_tbl = tuple(
            tuple(attention_stage(l, r, p, self.fold) for r in range(amod))
            for l in range(L)
        )
        # Emission templates: every instruction a (kind, pos) emission
        # produces differs across micro batches only in micro_batch, the
        # attention stage and the tag suffix.  Prototype field dicts
        # (completed per micro batch via ``instr_from_proto``) replace
        # per-instruction cost lookups and dataclass __init__ calls.
        fo_protos: list[tuple[dict, ...]] = []
        bo_protos: list[tuple[dict, ...]] = []
        sc = self.costs.segment_cost
        for pos in range(L + 1):
            stage = self._owner_tbl[pos]
            fwd: list[dict] = []
            bwd: list[dict] = []
            if pos == 0 and self.include_embed:
                fwd.append(self._proto(OpType.F, stage, Segment(SegmentKind.EMBED)))
            for seg in owner_segment(pos, L):
                fwd.append(self._proto(OpType.F, stage, seg))
            if pos == L and self.include_head:
                fwd.append(self._proto(OpType.F, stage, Segment(SegmentKind.HEAD)))
                bwd.append(self._proto(OpType.B, stage, Segment(SegmentKind.HEAD)))
            for seg in reversed(owner_segment(pos, L)):
                if sc(seg).rc > 0.0:
                    bwd.append(self._proto(OpType.RC, stage, seg))
                bwd.append(self._proto(OpType.B, stage, seg))
            if pos == 0 and self.include_embed:
                bwd.append(self._proto(OpType.B, stage, Segment(SegmentKind.EMBED)))
            fo_protos.append(tuple(fwd))
            bo_protos.append(tuple(bwd))
        self._fo_protos = tuple(fo_protos)
        self._bo_protos = tuple(bo_protos)
        # Attention protos carry stage=-1; the emitters overwrite it with
        # the per-micro-batch attention stage.
        self._fa_protos = tuple(
            self._proto(OpType.F, -1, self._attn_seg[l]) for l in range(L)
        )
        self._ba_protos = tuple(
            self._proto(OpType.B, -1, self._attn_seg[l]) for l in range(L)
        )
        self._tag_pre = tuple(f"h.pre_out:L{l}:mb" for l in range(L))
        self._tag_attn = tuple(f"h.attn_out:L{l}:mb" for l in range(L))
        self._tag_dpre = tuple(f"h.d_pre_out:L{l}:mb" for l in range(L))
        self._tag_dattn = tuple(f"h.d_attn_out:L{l}:mb" for l in range(L))

    # -- helpers -----------------------------------------------------------------

    def _owner(self, pos: int) -> int:
        return owner_stage(pos, self.num_stages, self.L)

    def _attn_stage(self, layer: int, mb: int) -> int:
        return attention_stage(layer, mb, self.num_stages, self.fold)

    @staticmethod
    def _tag(kind: str, layer: int, mb: int) -> str:
        return f"h.{kind}:L{layer}:mb{mb}"

    def _owner_cost(self, pos: int) -> tuple[float, float, float]:
        """(forward, backward incl. head/embed, recompute) duration at pos."""
        f = b = rc = 0.0
        for seg in owner_segment(pos, self.L):
            c = self.costs.segment_cost(seg)
            f += c.f
            b += c.b
            rc += c.rc
        if pos == 0 and self.include_embed:
            c = self.costs.segment_cost(Segment(SegmentKind.EMBED))
            f += c.f
            b += c.b
        if pos == self.L and self.include_head:
            c = self.costs.segment_cost(Segment(SegmentKind.HEAD))
            f += c.f
            b += c.b
        return f, b, rc

    def _proto(self, op: OpType, stage: int, seg: Segment) -> dict:
        """Prototype :class:`ComputeInstr` fields (all but micro_batch)."""
        c = self.costs.segment_cost(seg)
        if op is OpType.F:
            duration, stash = c.f, c.stash_bytes
        elif op is OpType.RC:
            duration, stash = c.rc, c.rc_extra_stash_bytes
        else:
            duration = c.b
            stash = -(c.stash_bytes + (c.rc_extra_stash_bytes if c.rc > 0 else 0.0))
        return {
            "op": op,
            "stage": stage,
            "segment": seg,
            "duration": duration,
            "stash_delta": stash,
            "workspace": c.workspace_bytes,
        }

    # -- task graph -----------------------------------------------------------------

    def _build_tasks(self) -> list[PlannedTask]:
        p, L, m = self.num_stages, self.L, self.num_micro_batches
        loop_size = self.loop_size
        num_loops = m // loop_size
        owner_costs = self._owner_costs
        owner_f = tuple(c[0] for c in owner_costs)
        owner_b = tuple(c[1] + c[2] for c in owner_costs)
        attn_f = tuple(
            self.costs.segment_cost(self._attn_seg[l]).f for l in range(L)
        )
        attn_b = tuple(
            self.costs.segment_cost(self._attn_seg[l]).b for l in range(L)
        )
        owner_tbl = self._owner_tbl
        attn_tbl = self._attn_tbl
        amod = self._attn_mod
        tasks: list[PlannedTask] = []
        append = tasks.append
        tid = 0
        # Only the position-L forward needs to be addressable outside its
        # micro batch's own loop iteration; everything else chains
        # through scalars, so no (pos, mb) -> tid dicts are built.
        f_last = [0] * m

        # Forward: owner(pos) consumes attention(pos-1); attention(l)
        # consumes owner(l).
        for mb in range(m):
            g, slot = divmod(mb, loop_size)
            r = mb % amod
            deps: list[int] = []
            fo = 0
            for pos in range(L + 1):
                append(
                    _task(
                        tid,
                        owner_tbl[pos],
                        (0, g, pos, 0, slot),
                        owner_f[pos],
                        deps,
                        ("f_owner", pos, mb),
                    )
                )
                fo = tid
                tid += 1
                if pos < L:
                    append(
                        _task(
                            tid,
                            attn_tbl[pos][r],
                            (0, g, pos, 1, slot),
                            attn_f[pos],
                            [fo],
                            ("f_attn", pos, mb),
                        )
                    )
                    deps = [tid]
                    tid += 1
            f_last[mb] = fo
        # Backward: FILO -- later loops and later micro batches first.  The
        # entry point (position L) is chained in strict reverse micro-batch
        # order so the backward wave is truly first-in-last-out; without
        # this, a work-conserving planner would start micro batch 0's
        # backward the moment its own forward finished.
        prev_entry = -1
        for mb in range(m - 1, -1, -1):
            g, slot = divmod(mb, loop_size)
            rg = num_loops - 1 - g
            rslot = loop_size - 1 - slot
            r = mb % amod
            grad = -1
            for pos in range(L, -1, -1):
                rpos = L - pos
                if pos == L:
                    deps = (
                        [f_last[mb]]
                        if prev_entry < 0
                        else [f_last[mb], prev_entry]
                    )
                else:
                    deps = [grad]
                append(
                    _task(
                        tid,
                        owner_tbl[pos],
                        (1, rg, rpos, 0, rslot),
                        owner_b[pos],
                        deps,
                        ("b_owner", pos, mb),
                    )
                )
                bo = tid
                tid += 1
                if pos == L:
                    prev_entry = bo
                if pos > 0:
                    append(
                        _task(
                            tid,
                            attn_tbl[pos - 1][r],
                            (1, rg, rpos, 1, rslot),
                            attn_b[pos - 1],
                            [bo],
                            ("b_attn", pos - 1, mb),
                        )
                    )
                    # The owner backward below pos consumes this gradient.
                    grad = tid
                    tid += 1
        return tasks

    # -- list scheduling ---------------------------------------------------------------

    def _plan(self, tasks: list[PlannedTask]) -> list[list[PlannedTask]]:
        """Apply the priority mode and run the shared list scheduler."""
        if self.priority == "hlf":
            level = critical_path_levels(tasks)
            for t in tasks:
                t.key = (-level[t.tid], *t.key)
        elif self.priority == "hybrid":
            level = critical_path_levels(tasks)
            for t in tasks:
                phase, g, rest = t.key[0], t.key[1], t.key[2:]
                t.key = (phase, g, -level[t.tid], *rest)
        elif self.priority != "filo":
            raise ValueError(f"unknown priority {self.priority!r}")
        return list_schedule(tasks, self.num_stages)

    # -- build -------------------------------------------------------------------

    def build(self) -> Schedule:
        tasks = self._build_tasks()
        order = self._plan(tasks)
        programs: list[list[Instr]] = [[] for _ in range(self.num_stages)]
        for stage, seq in enumerate(order):
            prog = programs[stage]
            for t in seq:
                kind, pos, mb = t.payload
                self._emit_task(prog, kind, pos, mb)
        name = "helix-2fold" if self.fold == 2 else f"helix-filo{self.fold}"
        sched = Schedule(
            name=name,
            num_stages=self.num_stages,
            num_micro_batches=self.num_micro_batches,
            programs=programs,
            meta={
                "family": "helix",
                "fold": self.fold,
                "num_layers": self.L,
                "recompute": self.costs.recompute.value,
            },
        )
        # Verification is the registry's job (spec.build runs the pass
        # pipeline unless verify=False); validating here too would run
        # every pass twice per build on the tuner's hot path.
        return sched

    # -- emission -------------------------------------------------------------------

    def _emit_task(self, prog: list[Instr], kind: str, pos: int, mb: int) -> None:
        if kind == "f_owner":
            self._emit_f_owner(prog, pos, mb)
        elif kind == "f_attn":
            self._emit_f_attn(prog, pos, mb)
        elif kind == "b_owner":
            self._emit_b_owner(prog, pos, mb)
        elif kind == "b_attn":
            self._emit_b_attn(prog, pos, mb)
        else:  # pragma: no cover - exhaustive
            raise ValueError(kind)

    def _emit_f_owner(self, prog: list[Instr], pos: int, mb: int) -> None:
        stage = self._owner_tbl[pos]
        r = mb % self._attn_mod
        if pos > 0:
            src = self._attn_tbl[pos - 1][r]
            if src != stage:
                prog.append(
                    _comm(
                        RecvInstr,
                        stage,
                        src,
                        self._tag_attn[pos - 1] + str(mb),
                        self._attn_to_post,
                        mb,
                        "attn_out",
                    )
                )
        for proto in self._fo_protos[pos]:
            prog.append(instr_from_proto(ComputeInstr, proto, mb))
        if pos < self.L:
            dst = self._attn_tbl[pos][r]
            if dst != stage:
                prog.append(
                    _comm(
                        SendInstr,
                        stage,
                        dst,
                        self._tag_pre[pos] + str(mb),
                        self._pre_to_attn,
                        mb,
                        "pre_out",
                    )
                )

    def _emit_f_attn(self, prog: list[Instr], layer: int, mb: int) -> None:
        stage = self._attn_tbl[layer][mb % self._attn_mod]
        owner = self._owner_tbl[layer]
        if owner != stage:
            prog.append(
                _comm(
                    RecvInstr,
                    stage,
                    owner,
                    self._tag_pre[layer] + str(mb),
                    self._pre_to_attn,
                    mb,
                    "pre_out",
                )
            )
        prog.append(_attn_compute(self._fa_protos[layer], stage, mb))
        nxt = self._owner_tbl[layer + 1]
        if nxt != stage:
            prog.append(
                _comm(
                    SendInstr,
                    stage,
                    nxt,
                    self._tag_attn[layer] + str(mb),
                    self._attn_to_post,
                    mb,
                    "attn_out",
                )
            )

    def _emit_b_owner(self, prog: list[Instr], pos: int, mb: int) -> None:
        stage = self._owner_tbl[pos]
        r = mb % self._attn_mod
        if pos < self.L:
            src = self._attn_tbl[pos][r]
            if src != stage:
                prog.append(
                    _comm(
                        RecvInstr,
                        stage,
                        src,
                        self._tag_dpre[pos] + str(mb),
                        self._pre_to_attn,
                        mb,
                        "d_pre_out",
                    )
                )
        # The proto sequence bakes the head backward (pos == L), the
        # per-segment RC-before-B pairs, and the embed backward
        # (pos == 0) in emission order; head-send and embed never
        # coexist, so the flat loop preserves the original interleaving.
        for proto in self._bo_protos[pos]:
            prog.append(instr_from_proto(ComputeInstr, proto, mb))
        if pos > 0:
            dst = self._attn_tbl[pos - 1][r]
            if dst != stage:
                prog.append(
                    _comm(
                        SendInstr,
                        stage,
                        dst,
                        self._tag_dattn[pos - 1] + str(mb),
                        self._attn_to_post,
                        mb,
                        "d_attn_out",
                    )
                )

    def _emit_b_attn(self, prog: list[Instr], layer: int, mb: int) -> None:
        stage = self._attn_tbl[layer][mb % self._attn_mod]
        src = self._owner_tbl[layer + 1]
        if src != stage:
            prog.append(
                _comm(
                    RecvInstr,
                    stage,
                    src,
                    self._tag_dattn[layer] + str(mb),
                    self._attn_to_post,
                    mb,
                    "d_attn_out",
                )
            )
        prog.append(_attn_compute(self._ba_protos[layer], stage, mb))
        dst = self._owner_tbl[layer]
        if dst != stage:
            prog.append(
                _comm(
                    SendInstr,
                    stage,
                    dst,
                    self._tag_dpre[layer] + str(mb),
                    self._pre_to_attn,
                    mb,
                    "d_pre_out",
                )
            )


@register_schedule(
    "helix",
    description="HelixPipe two-fold FILO (attention parallel partition)",
    family="helix",
    options={"fold": 2, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.WITHOUT_ATTENTION,
    # HelixPipe never recomputes attention (Section 4.4.1), so only the
    # strategies the builder models faithfully are swept.
    recompute_choices=(
        RecomputeStrategy.NONE,
        RecomputeStrategy.WITHOUT_ATTENTION,
    ),
    divisor=_helix_divisor,
    # Fold 1 is the naive FILO (no transfer hiding); sweeping it lets
    # the tuner quantify what two-fold buys on a given workload.
    tune_options={"fold": (1, 2)},
)
@register_schedule(
    "helix-naive",
    description="HelixPipe naive (fold-1) FILO, no transfer hiding",
    family="helix",
    options={"fold": 1, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.WITHOUT_ATTENTION,
    recompute_choices=(
        RecomputeStrategy.NONE,
        RecomputeStrategy.WITHOUT_ATTENTION,
    ),
    # Alias of helix x fold=1 kept for the experiment method names; the
    # tuner sweeps that combination via the "helix" fold grid.
    tunable=False,
    divisor=_helix_divisor,
)
@register_schedule(
    "helix-no-recompute",
    description="HelixPipe two-fold FILO without recomputation",
    family="helix",
    options={"fold": 2, "include_embed": True, "include_head": True},
    default_recompute=RecomputeStrategy.NONE,
    # Alias of helix x RecomputeStrategy.NONE kept for the experiment
    # method names; the tuner sweeps that combination via "helix".
    tunable=False,
    divisor=_helix_divisor,
)
def build_helix_filo(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    fold: int = 2,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """Build the HelixPipe FILO schedule (``fold=1`` naive, ``fold=2`` two-fold)."""
    return HelixFiloBuilder(
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        fold=fold,
        include_embed=include_embed,
        include_head=include_head,
    ).build()
