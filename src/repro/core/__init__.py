"""The paper's contribution: attention parallel pipeline parallelism."""

from repro.core.filo import HelixFiloBuilder, build_helix_filo
from repro.core.partition import attention_stage, helix_partition, owner_stage

__all__ = [
    "build_helix_filo",
    "HelixFiloBuilder",
    "attention_stage",
    "helix_partition",
    "owner_stage",
]
