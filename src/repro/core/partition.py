"""Attention parallel partition (paper Section 4.2).

HelixPipe breaks the layer boundary: only the *parameterised* phases
(pre-attention, post-attention) are statically mapped to stages, in a
helix pattern --

* the pre-attention of layer 0 goes to stage 0;
* for ``l in [1, L)`` the post-attention of layer ``l-1`` is fused with
  the pre-attention of layer ``l`` and mapped to stage ``l mod p``;
* the post-attention of the last layer (plus the LM head, Section 4.6)
  wraps around to stage 0;
* the **attention** of layer ``l`` for micro batch ``i`` is
  non-parameterised and therefore free to run anywhere: HelixPipe places
  it on stage ``(l + i + 1) mod p`` so that the ``p`` attention
  computations of one layer execute *in parallel* across stages.

The generalisation to the two-fold schedule groups micro batches into
folds of ``fold`` consecutive ids that share an attention stage:
``attention_stage = (l + (i mod fold*p) // fold + 1) mod p``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.model.partition import Segment, SegmentKind

__all__ = [
    "owner_stage",
    "attention_stage",
    "helix_partition",
    "owner_segment",
]


def owner_stage(position: int, num_stages: int, num_layers: int) -> int:
    """Stage owning position ``pos`` of the helix chain.

    Positions ``0 .. L`` walk the parameterised chain: position 0 is the
    pre-attention of layer 0, position ``l`` (0 < l < L) the fused
    post(l-1)+pre(l) block, and position ``L`` the post-attention of the
    last layer plus the head.  With ``L % p == 0`` the wrap-around lands
    on stage 0 exactly as the paper prescribes.
    """
    if not 0 <= position <= num_layers:
        raise ValueError(f"position must be in [0, {num_layers}], got {position}")
    return position % num_stages


def attention_stage(layer: int, micro_batch: int, num_stages: int, fold: int = 1) -> int:
    """Stage executing the attention of ``(layer, micro_batch)``.

    ``fold=1`` is the paper's formula ``(l + i + 1) mod p``; ``fold=2``
    assigns pairs of consecutive micro batches to the same stage for the
    two-fold FILO schedule (Section 4.3.2).
    """
    if fold <= 0:
        raise ValueError("fold must be positive")
    slot = (micro_batch % (fold * num_stages)) // fold
    return (layer + slot + 1) % num_stages


@lru_cache(maxsize=None)
def owner_segment(position: int, num_layers: int) -> tuple[Segment, ...]:
    """Model segments computed at helix position ``position`` (in order).

    Memoized (Segments are frozen): the FILO builder asks for the same
    handful of positions thousands of times per build.
    """
    if position == 0:
        return (Segment(SegmentKind.PRE, layer=0),)
    if position == num_layers:
        return (Segment(SegmentKind.POST, layer=num_layers - 1),)
    return (Segment(SegmentKind.POST_PRE, layer=position),)


def helix_partition(num_layers: int, num_stages: int) -> list[list[Segment]]:
    """Static (parameterised) segments per stage, embedding/head included.

    Attention segments are intentionally absent: they are assigned per
    micro batch by :func:`attention_stage`.
    """
    if num_layers % num_stages != 0:
        raise ValueError(
            f"num_layers ({num_layers}) must be divisible by num_stages "
            f"({num_stages}) for the helix wrap-around to close on stage 0"
        )
    stages: list[list[Segment]] = [[] for _ in range(num_stages)]
    stages[0].append(Segment(SegmentKind.EMBED))
    for pos in range(num_layers + 1):
        stages[owner_stage(pos, num_stages, num_layers)].extend(
            owner_segment(pos, num_layers)
        )
    stages[0].append(Segment(SegmentKind.HEAD))
    return stages
