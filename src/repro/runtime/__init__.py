"""Functional (real-math) execution of pipeline schedules on virtual devices."""

from repro.runtime.executor import PipelineRuntime, RuntimeResult, run_schedule

__all__ = ["PipelineRuntime", "RuntimeResult", "run_schedule"]
