"""Functional pipeline executor: runs schedule IR with real numpy math.

The same :class:`~repro.schedules.ir.Schedule` the discrete-event
simulator times is interpreted here against a real
:class:`~repro.nn.GPTModel`:

* every stage is a *virtual device* with its own activation stash,
  gradient accumulators and message inbox -- stages only exchange data
  through SEND/RECV payloads, so the executor proves the schedule's
  dataflow is complete (nothing reads state it could not have);
* instructions execute in program order per stage, with a round-robin
  driver that blocks stages on missing messages and detects deadlock;
* the paper's correctness claim (Section 4.1: HelixPipe "maintains the
  same computation semantics") becomes a checkable property: losses and
  every parameter gradient must equal the single-device reference.

Supported semantics: layer-wise schedules (1F1B / GPipe / ZB1P, with the
decoupled BI/BW of ZB1P), HelixPipe FILO schedules (naive and two-fold)
with optional QKV-weight shipping (Section 4.2) and
recomputation-without-attention (Section 4.4.1), plus full recomputation
for layer-wise baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.memory import RecomputeStrategy
from repro.model.partition import SegmentKind
from repro.nn import blocks
from repro.nn.transformer import GPTModel
from repro.schedules.ir import ComputeInstr, OpType, RecvInstr, Schedule, SendInstr

__all__ = ["PipelineRuntime", "RuntimeResult", "run_schedule"]


class RuntimeDeadlock(RuntimeError):
    """No stage can make progress."""


@dataclass
class RuntimeResult:
    """Losses per micro batch and merged parameter gradients."""

    losses: dict[int, float]
    grads: dict[str, np.ndarray]

    @property
    def mean_loss(self) -> float:
        return float(np.mean(list(self.losses.values())))


@dataclass
class _Device:
    """Per-stage private state."""

    stash: dict = field(default_factory=dict)  # activation ctxs
    grads: dict = field(default_factory=dict)  # (scope, name) -> array
    pending_w: dict = field(default_factory=dict)  # ZB1P deferred W grads
    pc: int = 0

    def acc(self, scope, name, value) -> None:
        key = (scope, name)
        if key in self.grads:
            self.grads[key] += value
        else:
            self.grads[key] = value.copy()


class PipelineRuntime:
    """Execute ``schedule`` against ``model`` for one gradient step.

    Parameters
    ----------
    model:
        Full model; stages only touch the parameters of segments they
        own (enforced by the dataflow -- weights for shipped QKV travel
        inside messages).
    schedule:
        Any schedule produced by this package's builders.
    tokens, targets:
        ``[m, s, b]`` integer arrays, one slice per micro batch.
    recompute:
        ``NONE``, ``WITHOUT_ATTENTION`` (helix) or ``FULL`` (layer-wise).
    ship_qkv:
        Must match the flag the helix schedule was built with; layer-wise
        schedules ignore it.
    """

    def __init__(
        self,
        model: GPTModel,
        schedule: Schedule,
        tokens: np.ndarray,
        targets: np.ndarray,
        recompute: RecomputeStrategy = RecomputeStrategy.NONE,
        ship_qkv: bool = False,
    ) -> None:
        if tokens.shape[0] != schedule.num_micro_batches:
            raise ValueError(
                f"tokens has {tokens.shape[0]} micro batches, schedule wants "
                f"{schedule.num_micro_batches}"
            )
        if recompute is RecomputeStrategy.SELECTIVE:
            raise ValueError("SELECTIVE recompute is not modelled by the runtime")
        self.model = model
        self.schedule = schedule
        self.tokens = tokens
        self.targets = targets
        self.recompute = recompute
        self.ship_qkv = ship_qkv
        self.devices = [_Device() for _ in range(schedule.num_stages)]
        self.mailbox: dict[str, object] = {}
        self.losses: dict[int, float] = {}

    # -- driver ---------------------------------------------------------------

    def run(self) -> RuntimeResult:
        progressed = True
        while progressed:
            progressed = False
            for stage, dev in enumerate(self.devices):
                prog = self.schedule.programs[stage]
                while dev.pc < len(prog):
                    instr = prog[dev.pc]
                    if isinstance(instr, RecvInstr) and instr.tag not in self.mailbox:
                        break  # blocked
                    self._step(stage, dev, instr)
                    dev.pc += 1
                    progressed = True
        if any(
            dev.pc < len(self.schedule.programs[s])
            for s, dev in enumerate(self.devices)
        ):
            stuck = [
                f"stage {s} at {self.schedule.programs[s][d.pc].label}"
                for s, d in enumerate(self.devices)
                if d.pc < len(self.schedule.programs[s])
            ]
            raise RuntimeDeadlock("; ".join(stuck))
        return RuntimeResult(losses=self.losses, grads=self._merge_grads())

    def _step(self, stage: int, dev: _Device, instr) -> None:
        if isinstance(instr, SendInstr):
            # Layer-wise boundary sends ship the current activation /
            # gradient stream; helix sends ship tag-addressed payloads.
            if instr.payload == "fwd_boundary":
                self.mailbox[instr.tag] = dev.stash.pop(("act", instr.micro_batch))
            elif instr.payload == "bwd_boundary":
                self.mailbox[instr.tag] = dev.stash.pop(("grad", instr.micro_batch))
            else:
                self.mailbox[instr.tag] = dev.stash.pop(("out", instr.tag))
        elif isinstance(instr, RecvInstr):
            payload = self.mailbox.pop(instr.tag)
            if instr.payload == "fwd_boundary":
                dev.stash[("act", instr.micro_batch)] = payload
            elif instr.payload == "bwd_boundary":
                dev.stash[("grad", instr.micro_batch)] = payload
            else:
                dev.stash[("in", instr.tag)] = payload
        elif isinstance(instr, ComputeInstr):
            self._compute(stage, dev, instr)
        else:  # pragma: no cover
            raise TypeError(type(instr))

    # -- compute dispatch ---------------------------------------------------------

    def _compute(self, stage: int, dev: _Device, instr: ComputeInstr) -> None:
        kind = instr.segment.kind
        if kind is SegmentKind.EMBED:
            self._embed(dev, instr)
        elif kind is SegmentKind.LAYERS:
            self._layers(dev, instr)
        elif kind is SegmentKind.HEAD:
            self._head(dev, instr)
        elif kind is SegmentKind.PRE:
            self._pre(dev, instr)
        elif kind is SegmentKind.ATTN:
            self._attn(dev, instr)
        elif kind in (SegmentKind.POST, SegmentKind.POST_PRE):
            self._post_pre(dev, instr)
        else:  # pragma: no cover
            raise ValueError(kind)

    # -- helpers -------------------------------------------------------------------

    def _take(self, dev: _Device, tag: str):
        """Message payload if it was received, else the local handoff."""
        if ("in", tag) in dev.stash:
            return dev.stash.pop(("in", tag))
        return dev.stash.pop(("local", tag))

    def _put_out(self, dev: _Device, tag: str, payload, local_ok: bool) -> None:
        """Store a payload for the following SEND, or hand it off locally.

        The builders skip SEND/RECV when producer and consumer share a
        stage; in that case the payload must be readable via ``_take``.
        """
        if local_ok:
            dev.stash[("local", tag)] = payload
        else:
            dev.stash[("out", tag)] = payload

    def _helix_tags(self, kind: str, layer: int, mb: int) -> str:
        return f"h.{kind}:L{layer}:mb{mb}"

    # -- embedding -------------------------------------------------------------------

    def _embed(self, dev: _Device, instr: ComputeInstr) -> None:
        mb = instr.micro_batch
        if instr.op is OpType.F:
            a, ctx = blocks.embed_fwd(self.model.embed, self.tokens[mb])
            dev.stash[("embed_ctx", mb)] = ctx
            dev.stash[("act", mb)] = a
        elif instr.op is OpType.B:
            grads = blocks.embed_bwd(dev.stash.pop(("embed_ctx", mb)), dev.stash.pop(("grad", mb)))
            for k, v in grads.items():
                dev.acc("embed", k, v)
        elif instr.op is OpType.BI:
            # Embedding backward is weight-only; defer entirely to BW.
            dev.pending_w[("embed", mb)] = (
                dev.stash.pop(("embed_ctx", mb)),
                dev.stash.pop(("grad", mb)),
            )
        elif instr.op is OpType.BW:
            ctx, dout = dev.pending_w.pop(("embed", mb))
            for k, v in blocks.embed_bwd(ctx, dout).items():
                dev.acc("embed", k, v)

    # -- layer-wise segments ------------------------------------------------------------

    def _layers(self, dev: _Device, instr: ComputeInstr) -> None:
        seg, mb, stage = instr.segment, instr.micro_batch, instr.stage
        lo, hi = seg.layer, seg.layer + seg.num_layers
        cfg = self.model.config
        if instr.op is OpType.F:
            a = dev.stash.pop(("act", mb))  # from embed or a boundary RECV
            ctxs = []
            entry = a
            for l in range(lo, hi):
                lp = self.model.layers[l]
                x, pre_ctx = blocks.pre_attention_fwd(lp, a, ship_qkv=False)
                attn_out, attn_ctx = blocks.attention_fwd(x, cfg.num_heads)
                z, post_ctx = blocks.post_attention_fwd(lp, attn_out, a)
                ctxs.append((pre_ctx, attn_ctx, post_ctx))
                a = z
            if self.recompute is RecomputeStrategy.FULL:
                dev.stash[("seg_entry", seg.layer, mb)] = entry
            else:
                dev.stash[("seg_ctxs", seg.layer, mb)] = ctxs
            dev.stash[("act", mb)] = a  # next segment, SEND, or head
        elif instr.op in (OpType.B, OpType.BI):
            dz = dev.stash.pop(("grad", mb))  # from head or a boundary RECV
            ctxs = self._layer_ctxs_for_backward(dev, seg, mb)
            w_accum: list[tuple[int, dict]] = []
            for i, l in enumerate(range(hi - 1, lo - 1, -1)):
                pre_ctx, attn_ctx, post_ctx = ctxs[hi - 1 - lo - i]
                d_attn, da_resid, post_grads = blocks.post_attention_bwd(post_ctx, dz)
                dx, qkv_grads = blocks.attention_bwd(attn_ctx, d_attn)
                da_pre, pre_grads = blocks.pre_attention_bwd(pre_ctx, dx)
                dz = da_pre + da_resid
                merged = dict(post_grads)
                merged.update(pre_grads)
                if qkv_grads is not None:  # pragma: no cover - layerwise never ships
                    merged["w_qkv"], merged["b_qkv"] = qkv_grads
                w_accum.append((l, merged))
            if instr.op is OpType.B:
                for l, merged in w_accum:
                    for k, v in merged.items():
                        dev.acc(("layer", l), k, v)
            else:
                dev.pending_w[(seg.layer, mb)] = w_accum
            dev.stash[("grad", mb)] = dz  # next segment, SEND, or embedding
        elif instr.op is OpType.BW:
            for l, merged in dev.pending_w.pop((seg.layer, mb)):
                for k, v in merged.items():
                    dev.acc(("layer", l), k, v)

    def _layer_ctxs_for_backward(self, dev: _Device, seg, mb):
        if self.recompute is RecomputeStrategy.FULL:
            a = dev.stash.pop(("seg_entry", seg.layer, mb))
            cfg = self.model.config
            ctxs = []
            for l in range(seg.layer, seg.layer + seg.num_layers):
                lp = self.model.layers[l]
                x, pre_ctx = blocks.pre_attention_fwd(lp, a, ship_qkv=False)
                attn_out, attn_ctx = blocks.attention_fwd(x, cfg.num_heads)
                z, post_ctx = blocks.post_attention_fwd(lp, attn_out, a)
                ctxs.append((pre_ctx, attn_ctx, post_ctx))
                a = z
            return ctxs
        return dev.stash.pop(("seg_ctxs", seg.layer, mb))

    # -- head ------------------------------------------------------------------------

    def _head(self, dev: _Device, instr: ComputeInstr) -> None:
        mb = instr.micro_batch
        recompute = self.recompute is not RecomputeStrategy.NONE
        if instr.op is OpType.F:
            z = dev.stash.pop(("act", mb))
            if recompute:
                # Section 4.6: defer logits + loss to the backward pass.
                dev.stash[("head_in", mb)] = z
            else:
                loss, ctx = blocks.head_fwd(self.model.head, z, self.targets[mb])
                self.losses[mb] = float(loss)
                dev.stash[("head_ctx", mb)] = ctx
        elif instr.op in (OpType.B, OpType.BI):
            if recompute:
                z = dev.stash.pop(("head_in", mb))
                loss, ctx = blocks.head_fwd(self.model.head, z, self.targets[mb])
                self.losses[mb] = float(loss)
            else:
                ctx = dev.stash.pop(("head_ctx", mb))
            dz, head_grads = blocks.head_bwd(ctx)
            dev.stash[("grad", mb)] = dz
            if instr.op is OpType.B:
                for k, v in head_grads.items():
                    dev.acc("head", k, v)
            else:
                dev.pending_w[("head", mb)] = head_grads
        elif instr.op is OpType.BW:
            for k, v in dev.pending_w.pop(("head", mb)).items():
                dev.acc("head", k, v)

    # -- helix segments -----------------------------------------------------------------

    def _pre_payload(self, lp, x, z):
        if self.ship_qkv:
            return (x, z, lp["w_qkv"], lp["b_qkv"])
        return (x, z)

    def _pre(self, dev: _Device, instr: ComputeInstr) -> None:
        """PRE(0): LayerNorm (+QKV) of layer 0 on the embedding output."""
        mb = instr.micro_batch
        lp = self.model.layers[0]
        if instr.op is OpType.F:
            a = dev.stash.pop(("act", mb))
            x, pre_ctx = blocks.pre_attention_fwd(lp, a, self.ship_qkv)
            if self.recompute is RecomputeStrategy.WITHOUT_ATTENTION:
                dev.stash[("rc_in", 0, mb)] = a
            else:
                dev.stash[("pre_ctx", 0, mb)] = pre_ctx
            tag = self._helix_tags("pre_out", 0, mb)
            local = not self._tag_is_sent(instr.stage, tag)
            self._put_out(dev, tag, self._pre_payload(lp, x, a), local)
        elif instr.op is OpType.RC:
            a = dev.stash.pop(("rc_in", 0, mb))
            _, pre_ctx = blocks.pre_attention_fwd(lp, a, self.ship_qkv)
            dev.stash[("pre_ctx", 0, mb)] = pre_ctx
        elif instr.op is OpType.B:
            payload = self._take_grad_payload(dev, 0, mb, instr.stage)
            dx, da_resid, qkv_grads = payload
            da_pre, pre_grads = blocks.pre_attention_bwd(
                dev.stash.pop(("pre_ctx", 0, mb)), dx
            )
            for k, v in pre_grads.items():
                dev.acc(("layer", 0), k, v)
            if qkv_grads is not None:
                dw, db = qkv_grads
                dev.acc(("layer", 0), "w_qkv", dw)
                dev.acc(("layer", 0), "b_qkv", db)
            dev.stash[("grad", mb)] = da_pre + da_resid

    def _attn(self, dev: _Device, instr: ComputeInstr) -> None:
        layer, mb = instr.segment.layer, instr.micro_batch
        cfg = self.model.config
        if instr.op is OpType.F:
            payload = self._take(dev, self._helix_tags("pre_out", layer, mb))
            if self.ship_qkv:
                x, z, w, b = payload
                shipped = (w, b)
            else:
                x, z = payload
                shipped = None
            attn_out, attn_ctx = blocks.attention_fwd(x, cfg.num_heads, shipped)
            dev.stash[("attn_ctx", layer, mb)] = attn_ctx
            tag = self._helix_tags("attn_out", layer, mb)
            local = not self._tag_is_sent(instr.stage, tag)
            self._put_out(dev, tag, (attn_out, z), local)
        elif instr.op is OpType.B:
            d_attn, da = self._take(dev, self._helix_tags("d_attn_out", layer, mb))
            dx, qkv_grads = blocks.attention_bwd(
                dev.stash.pop(("attn_ctx", layer, mb)), d_attn
            )
            tag = self._helix_tags("d_pre_out", layer, mb)
            local = not self._tag_is_sent(instr.stage, tag)
            self._put_out(dev, tag, (dx, da, qkv_grads), local)

    def _post_pre(self, dev: _Device, instr: ComputeInstr) -> None:
        """POST_PRE(l) fuses post(l-1) and pre(l); POST is post(L-1) alone."""
        seg, mb = instr.segment, instr.micro_batch
        is_post_only = seg.kind is SegmentKind.POST
        pos = seg.layer + 1 if is_post_only else seg.layer
        post_layer = pos - 1
        pre_layer = pos if not is_post_only else None
        cfg = self.model.config
        wo_attn = self.recompute is RecomputeStrategy.WITHOUT_ATTENTION
        if instr.op is OpType.F:
            attn_out, a = self._take(dev, self._helix_tags("attn_out", post_layer, mb))
            z, post_ctx = blocks.post_attention_fwd(
                self.model.layers[post_layer], attn_out, a
            )
            if wo_attn:
                dev.stash[("rc_in", pos, mb)] = (attn_out, a)
            else:
                dev.stash[("post_ctx", post_layer, mb)] = post_ctx
            if pre_layer is None:
                dev.stash[("act", mb)] = z  # feeds the head
            else:
                lp = self.model.layers[pre_layer]
                x, pre_ctx = blocks.pre_attention_fwd(lp, z, self.ship_qkv)
                if not wo_attn:
                    dev.stash[("pre_ctx", pre_layer, mb)] = pre_ctx
                tag = self._helix_tags("pre_out", pre_layer, mb)
                local = not self._tag_is_sent(instr.stage, tag)
                self._put_out(dev, tag, self._pre_payload(lp, x, z), local)
        elif instr.op is OpType.RC:
            attn_out, a = dev.stash.pop(("rc_in", pos, mb))
            z, post_ctx = blocks.post_attention_fwd(
                self.model.layers[post_layer], attn_out, a
            )
            dev.stash[("post_ctx", post_layer, mb)] = post_ctx
            if pre_layer is not None:
                _, pre_ctx = blocks.pre_attention_fwd(
                    self.model.layers[pre_layer], z, self.ship_qkv
                )
                dev.stash[("pre_ctx", pre_layer, mb)] = pre_ctx
            elif self.recompute is not RecomputeStrategy.NONE:
                dev.stash[("head_in", mb)] = z
        elif instr.op is OpType.B:
            if pre_layer is not None:
                dx, da_resid, qkv_grads = self._take_grad_payload(
                    dev, pre_layer, mb, instr.stage
                )
                da_pre, pre_grads = blocks.pre_attention_bwd(
                    dev.stash.pop(("pre_ctx", pre_layer, mb)), dx
                )
                for k, v in pre_grads.items():
                    dev.acc(("layer", pre_layer), k, v)
                if qkv_grads is not None:
                    dw, db = qkv_grads
                    dev.acc(("layer", pre_layer), "w_qkv", dw)
                    dev.acc(("layer", pre_layer), "b_qkv", db)
                dz = da_pre + da_resid
            else:
                dz = dev.stash.pop(("grad", mb))  # from the head backward
            d_attn, da, post_grads = blocks.post_attention_bwd(
                dev.stash.pop(("post_ctx", post_layer, mb)), dz
            )
            for k, v in post_grads.items():
                dev.acc(("layer", post_layer), k, v)
            tag = self._helix_tags("d_attn_out", post_layer, mb)
            local = not self._tag_is_sent(instr.stage, tag)
            self._put_out(dev, tag, (d_attn, da), local)

    def _take_grad_payload(self, dev: _Device, layer: int, mb: int, stage: int):
        return self._take(dev, self._helix_tags("d_pre_out", layer, mb))

    # -- plumbing -------------------------------------------------------------------

    def _tag_is_sent(self, stage: int, tag: str) -> bool:
        """True when the stage's program contains a SEND for ``tag``."""
        cache = getattr(self, "_send_tags", None)
        if cache is None:
            cache = [
                {i.tag for i in prog if isinstance(i, SendInstr)}
                for prog in self.schedule.programs
            ]
            self._send_tags = cache
        return tag in cache[stage]

    def _merge_grads(self) -> dict[str, np.ndarray]:
        merged: dict[str, np.ndarray] = {}
        for dev in self.devices:
            for (scope, name), value in dev.grads.items():
                if scope == "embed":
                    key = f"embed.{name}"
                elif scope == "head":
                    key = f"head.{name}"
                else:
                    key = f"layer{scope[1]}.{name}"
                if key in merged:
                    merged[key] += value
                else:
                    merged[key] = value.copy()
        return merged


def run_schedule(
    model: GPTModel,
    schedule: Schedule,
    tokens: np.ndarray,
    targets: np.ndarray,
    recompute: RecomputeStrategy = RecomputeStrategy.NONE,
    ship_qkv: bool = False,
) -> RuntimeResult:
    """Convenience wrapper around :class:`PipelineRuntime`."""
    return PipelineRuntime(model, schedule, tokens, targets, recompute, ship_qkv).run()
