"""Closed-form pipeline-bubble and memory formulas (paper Table 2).

These are the analytic expressions HelixPipe is derived from; the
benchmark suite checks the discrete-event simulator against them
(communication disabled) so the two views of the system cannot drift
apart.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.costmodel.timing import LayerTimes, PhaseTimes

__all__ = [
    "bubble_time_1f1b",
    "bubble_time_zb1p",
    "bubble_time_helix",
    "bubble_lower_bound",
    "makespan_lower_bound",
    "recompute_time_lower_bound",
    "activation_elems_table2",
]


def bubble_time_1f1b(layer: LayerTimes, num_layers: int, p: int) -> float:
    """Paper Eq. 1: ``3 (p-1) (t_pre + t_attn + t_post) L / p``.

    The paper's factor 3 assumes backward costs twice the forward; we use
    the model's actual forward + backward phase times, which reduces to
    the paper's expression when ``bwd == 2 fwd``.
    """
    per_layer = (
        layer.pre.fwd
        + layer.attn.fwd
        + layer.post.fwd
        + layer.pre.bwd
        + layer.attn.bwd
        + layer.post.bwd
    )
    return (p - 1) * per_layer * num_layers / p


def bubble_time_zb1p(layer: LayerTimes, num_layers: int, p: int) -> float:
    """Paper Eq. 3: ``(p-1) (t_pre + 3 t_attn + t_post) L / p``.

    The delayed backward-W fills the 1F1B bubble, leaving
    ``t_F + t_BI - t_BW`` per layer.  Under the paper's convention
    (``bwd_b == bwd_w == fwd`` for the parameterised phases and the whole
    attention backward in B at ``2 t_attn``) this reduces exactly to
    ``t_pre + 3 t_attn + t_post``.
    """
    per_layer = (
        layer.pre.fwd
        + layer.attn.fwd
        + layer.post.fwd
        + layer.pre.bwd_b
        + layer.attn.bwd_b
        + layer.post.bwd_b
        - layer.pre.bwd_w
        - layer.post.bwd_w
    )
    return (p - 1) * per_layer * num_layers / p


def bubble_time_helix(
    layer: LayerTimes,
    p: int,
    fold: int = 2,
    recompute_pre_post: bool = True,
) -> float:
    """Paper Table 2 row 3 and the step-by-step account of Section 4.5.

    Naive FILO: ``3 (p-1)(t_pre + t_post)`` -- attention is gone from the
    bubble.  Two-fold doubles it; recomputation-without-attention adds one
    more forward pass of pre+post: ``8 (p-1)(t_pre + t_post)`` total with
    the paper's ``bwd == 2 fwd`` convention.  As with the other formulas
    we use the model's actual phase times: per ramp step the idle is
    ``fwd + bwd (+ recompute fwd)`` of (pre + post).
    """
    fwd = layer.pre.fwd + layer.post.fwd
    bwd = layer.pre.bwd + layer.post.bwd
    per_step = fwd + bwd + (fwd if recompute_pre_post else 0.0)
    return fold * (p - 1) * per_step


def _shipped_pre_post(layer: LayerTimes) -> tuple[PhaseTimes, PhaseTimes]:
    """(pre - qkv, post): the smallest pre phase any provider can price.

    Under weight shipping (Section 4.2, the cost providers' default) the
    QKV GEMM moves from the pre phase to the attention stage, so a
    helix ramp bound built on the *shipped* pre phase lower-bounds both
    configurations.
    """
    pre = PhaseTimes(
        layer.pre.fwd - layer.qkv.fwd,
        layer.pre.bwd_b - layer.qkv.bwd_b,
        layer.pre.bwd_w - layer.qkv.bwd_w,
    )
    return pre, layer.post


def bubble_lower_bound(
    schedule: str,
    layer: LayerTimes,
    num_layers: int,
    p: int,
    options: Mapping[str, Any] | None = None,
) -> float:
    """Admissible (never-overestimating) bubble time for ``schedule``.

    A *lower* bound on the pipeline-bubble component of the makespan,
    used by the auto-tuner to prune candidates that provably cannot beat
    the best simulated plan (:mod:`repro.tuner.bounds`).  Per schedule:

    - ``1f1b`` / ``gpipe``: the Table 2 warm-up/drain ramp (Eq. 1) --
      both run ``(p-1)`` ramp steps of a full stage forward+backward.
    - ``zb1p``: Eq. 3 (backward-W fills the ramp, ``f + b_I - b_W``).
    - ``interleaved``: the Eq. 1 ramp shrinks with the virtual-chunk
      count ``v`` (each ramp step advances one chunk of ``L/(p v)``
      layers).
    - ``helix`` (any fold): the Section 4.5 FILO ramp on the *shipped*
      pre+post phases, without the recompute term -- admissible for
      every recompute strategy and both weight-shipping settings.
    - anything else (``adapipe`` replans partitions, ``zb-milp`` may
      approach zero bubble): ``0.0``, degrading the bound to pure work
      conservation.

    Recompute strategies only ever *add* backward time, so evaluating
    the formulas on the plain (no-recompute) layer times keeps the
    bound admissible for every strategy.
    """
    opts = dict(options or {})
    if schedule in ("1f1b", "gpipe"):
        bub = bubble_time_1f1b(layer, num_layers, p)
    elif schedule == "zb1p":
        bub = bubble_time_zb1p(layer, num_layers, p)
    elif schedule == "interleaved":
        chunks = max(1, int(opts.get("num_chunks_per_stage", 2)))
        bub = bubble_time_1f1b(layer, num_layers, p) / chunks
    elif schedule.startswith("helix"):
        pre, post = _shipped_pre_post(layer)
        fwd = pre.fwd + post.fwd
        bwd = pre.bwd + post.bwd
        bub = max(1, int(opts.get("fold", 2))) * (p - 1) * (fwd + bwd)
    else:
        bub = 0.0
    return max(0.0, bub)


def recompute_time_lower_bound(layer: LayerTimes, recompute: Any) -> float:
    """Admissible per-layer recompute-forward time for ``recompute``.

    A lower bound on the forward time each layer's backward must re-run
    under the strategy (``RecomputeStrategy`` or its string value),
    evaluated on the *cheapest* configuration any cost provider can
    price: ``without_attention`` uses the shipped pre phase (QKV moved
    to attention, Section 4.2) so the bound holds under both
    weight-shipping settings, and ``selective`` uses the unshipped
    attention forward for the same reason.  Feeding the result to
    :func:`makespan_lower_bound` tightens the bound for recompute
    candidates without ever overestimating them.
    """
    value = getattr(recompute, "value", recompute)
    if value == "selective":
        return layer.attn.fwd
    if value == "without_attention":
        pre, post = _shipped_pre_post(layer)
        return pre.fwd + post.fwd
    if value == "full":
        return layer.fwd
    return 0.0


def makespan_lower_bound(
    schedule: str,
    layer: LayerTimes,
    num_layers: int,
    p: int,
    num_micro_batches: int,
    options: Mapping[str, Any] | None = None,
    recompute_time: float = 0.0,
) -> float:
    """Admissible lower bound on the simulated iteration makespan.

    ``max(work + bubble, chain)`` of three never-overestimating terms:

    - **work conservation**: the ``p`` serial compute engines must
      execute ``m x L`` layer forwards+backwards in total, so
      ``makespan >= m L (t_F + t_B) / p`` whatever the partition
      (embedding and head work only add to it);
    - **bubble**: the schedule-specific warm-up/drain ramp
      (:func:`bubble_lower_bound`) exists on top of the steady state;
    - **dependency chain**: one micro batch's forward must traverse all
      ``L`` layers and its backward-B return through them, so
      ``makespan >= L (t_F + t_BI)`` regardless of ``m`` or placement.

    ``recompute_time`` (per-layer, from
    :func:`recompute_time_lower_bound`) tightens both the work and the
    chain term for a known recompute strategy: every layer's backward
    re-runs that forward time on the same serial engine, per micro batch
    and on the single-micro-batch critical path alike.  The default 0.0
    keeps the bound strategy-free (recompute only adds time).

    Communication and memory stalls only increase the simulated value,
    so the bound holds for every registered schedule x recompute
    strategy x (p, m) point -- property-checked in
    ``tests/analysis/test_bounds.py`` and
    ``tests/schedules/test_invariants.py``.
    """
    work = (
        num_micro_batches
        * num_layers
        * (layer.fwd + layer.bwd + recompute_time)
        / p
    )
    chain = num_layers * (
        layer.fwd
        + layer.pre.bwd_b
        + layer.attn.bwd_b
        + layer.post.bwd_b
        + recompute_time
    )
    bubble = bubble_lower_bound(schedule, layer, num_layers, p, options)
    return max(work + bubble, chain)


def activation_elems_table2(
    schedule: str,
    b: int,
    s: int,
    h: int,
    num_layers: int,
    p: int,
    stage: int = 0,
    num_micro_batches: int | None = None,
) -> float:
    """Activation elements per Table 2 (1F1B / ZB1P / HelixPipe rows)."""
    bsh = float(b) * s * h
    if schedule == "1f1b":
        return 16.0 * (p - stage) * bsh * num_layers / p
    if schedule == "zb1p":
        return 16.0 * bsh * num_layers
    if schedule == "helix":
        if num_micro_batches is None:
            raise ValueError("helix needs num_micro_batches")
        return 4.0 * bsh * num_micro_batches * num_layers / p
    raise ValueError(f"unknown schedule {schedule!r}")
