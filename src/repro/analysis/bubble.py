"""Closed-form pipeline-bubble and memory formulas (paper Table 2).

These are the analytic expressions HelixPipe is derived from; the
benchmark suite checks the discrete-event simulator against them
(communication disabled) so the two views of the system cannot drift
apart.
"""

from __future__ import annotations

from repro.costmodel.timing import LayerTimes

__all__ = [
    "bubble_time_1f1b",
    "bubble_time_zb1p",
    "bubble_time_helix",
    "activation_elems_table2",
]


def bubble_time_1f1b(layer: LayerTimes, num_layers: int, p: int) -> float:
    """Paper Eq. 1: ``3 (p-1) (t_pre + t_attn + t_post) L / p``.

    The paper's factor 3 assumes backward costs twice the forward; we use
    the model's actual forward + backward phase times, which reduces to
    the paper's expression when ``bwd == 2 fwd``.
    """
    per_layer = (
        layer.pre.fwd
        + layer.attn.fwd
        + layer.post.fwd
        + layer.pre.bwd
        + layer.attn.bwd
        + layer.post.bwd
    )
    return (p - 1) * per_layer * num_layers / p


def bubble_time_zb1p(layer: LayerTimes, num_layers: int, p: int) -> float:
    """Paper Eq. 3: ``(p-1) (t_pre + 3 t_attn + t_post) L / p``.

    The delayed backward-W fills the 1F1B bubble, leaving
    ``t_F + t_BI - t_BW`` per layer.  Under the paper's convention
    (``bwd_b == bwd_w == fwd`` for the parameterised phases and the whole
    attention backward in B at ``2 t_attn``) this reduces exactly to
    ``t_pre + 3 t_attn + t_post``.
    """
    per_layer = (
        layer.pre.fwd
        + layer.attn.fwd
        + layer.post.fwd
        + layer.pre.bwd_b
        + layer.attn.bwd_b
        + layer.post.bwd_b
        - layer.pre.bwd_w
        - layer.post.bwd_w
    )
    return (p - 1) * per_layer * num_layers / p


def bubble_time_helix(
    layer: LayerTimes,
    p: int,
    fold: int = 2,
    recompute_pre_post: bool = True,
) -> float:
    """Paper Table 2 row 3 and the step-by-step account of Section 4.5.

    Naive FILO: ``3 (p-1)(t_pre + t_post)`` -- attention is gone from the
    bubble.  Two-fold doubles it; recomputation-without-attention adds one
    more forward pass of pre+post: ``8 (p-1)(t_pre + t_post)`` total with
    the paper's ``bwd == 2 fwd`` convention.  As with the other formulas
    we use the model's actual phase times: per ramp step the idle is
    ``fwd + bwd (+ recompute fwd)`` of (pre + post).
    """
    fwd = layer.pre.fwd + layer.post.fwd
    bwd = layer.pre.bwd + layer.post.bwd
    per_step = fwd + bwd + (fwd if recompute_pre_post else 0.0)
    return fold * (p - 1) * per_step


def activation_elems_table2(
    schedule: str,
    b: int,
    s: int,
    h: int,
    num_layers: int,
    p: int,
    stage: int = 0,
    num_micro_batches: int | None = None,
) -> float:
    """Activation elements per Table 2 (1F1B / ZB1P / HelixPipe rows)."""
    bsh = float(b) * s * h
    if schedule == "1f1b":
        return 16.0 * (p - stage) * bsh * num_layers / p
    if schedule == "zb1p":
        return 16.0 * bsh * num_layers
    if schedule == "helix":
        if num_micro_batches is None:
            raise ValueError("helix needs num_micro_batches")
        return 4.0 * bsh * num_micro_batches * num_layers / p
    raise ValueError(f"unknown schedule {schedule!r}")
