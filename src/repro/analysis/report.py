"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["format_table", "normalize"]


def format_table(rows: Iterable[Mapping[str, Any]], floatfmt: str = ".3f") -> str:
    """Render dict rows as an aligned text table (column order from row 1)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    table = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(t[i]) for t in table)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(t[i].ljust(w) for i, w in enumerate(widths)) for t in table)
    return f"{header}\n{sep}\n{body}"


def normalize(values: Mapping[str, float]) -> dict[str, float]:
    """Scale a metric dict so its maximum is 1.0 (paper's normalized plots)."""
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("cannot normalize non-positive values")
    return {k: v / peak for k, v in values.items()}
