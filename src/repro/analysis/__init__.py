"""Closed-form formulas, reporting helpers and timeline rendering."""

from repro.analysis.bubble import (
    activation_elems_table2,
    bubble_time_1f1b,
    bubble_time_helix,
    bubble_time_zb1p,
)
from repro.analysis.report import format_table, normalize
from repro.analysis.timeline import render_timeline
from repro.analysis.tuner_view import (
    format_grid_table,
    format_plan_table,
    grid_plan_rows,
    plan_rows,
)

__all__ = [
    "bubble_time_1f1b",
    "bubble_time_zb1p",
    "bubble_time_helix",
    "activation_elems_table2",
    "format_table",
    "normalize",
    "render_timeline",
    "format_plan_table",
    "plan_rows",
    "format_grid_table",
    "grid_plan_rows",
]
