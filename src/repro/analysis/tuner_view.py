"""Tabular views of auto-tuner results (:mod:`repro.tuner`)."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.report import format_table

__all__ = ["plan_rows", "format_plan_table"]

_GIB = float(1 << 30)


def plan_rows(results: Iterable) -> list[dict]:
    """Flatten :class:`~repro.tuner.PlanResult` rows for ``format_table``."""
    rows = []
    for rank, r in enumerate(results, start=1):
        c = r.candidate
        rows.append(
            {
                "rank": rank if r.feasible else "-",
                "schedule": c.schedule,
                "recompute": c.recompute.value,
                "mb": c.num_micro_batches,
                # Swept schedule options (empty = spec defaults).
                "options": ",".join(f"{k}={v}" for k, v in c.options) or "-",
                "status": "ok" if r.feasible else (r.reason or "infeasible")[:48],
                # Metrics are None for candidates that never built.
                "iter_s": "-" if r.iteration_time is None else r.iteration_time,
                "tokens_per_s": r.tokens_per_s,
                "peak_gib": (
                    "-"
                    if r.peak_memory_bytes is None
                    else r.peak_memory_bytes / _GIB
                ),
                "bubble_pct": (
                    "-"
                    if r.bubble_fraction is None
                    else 100.0 * r.bubble_fraction
                ),
            }
        )
    return rows


def format_plan_table(results: Iterable, floatfmt: str = ".2f") -> str:
    """Render ranked tuner results as an aligned text table."""
    return format_table(plan_rows(results), floatfmt=floatfmt)
