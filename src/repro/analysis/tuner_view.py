"""Tabular views of auto-tuner results (:mod:`repro.tuner`)."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.report import format_table
from repro.workloads import format_seq_len

__all__ = ["plan_rows", "format_plan_table", "grid_plan_rows", "format_grid_table"]

_GIB = float(1 << 30)


def plan_rows(results: Iterable) -> list[dict]:
    """Flatten :class:`~repro.tuner.PlanResult` rows for ``format_table``."""
    rows = []
    for rank, r in enumerate(results, start=1):
        c = r.candidate
        rows.append(
            {
                "rank": rank if r.feasible else "-",
                "schedule": c.schedule,
                "recompute": c.recompute.value,
                "mb": c.num_micro_batches,
                # Swept schedule options (empty = spec defaults).
                "options": ",".join(f"{k}={v}" for k, v in c.options) or "-",
                "status": "ok" if r.feasible else (r.reason or "infeasible")[:48],
                # Metrics are None for candidates that never built.
                "iter_s": "-" if r.iteration_time is None else r.iteration_time,
                "tokens_per_s": r.tokens_per_s,
                "peak_gib": (
                    "-"
                    if r.peak_memory_bytes is None
                    else r.peak_memory_bytes / _GIB
                ),
                "bubble_pct": (
                    "-"
                    if r.bubble_fraction is None
                    else 100.0 * r.bubble_fraction
                ),
            }
        )
    return rows


def format_plan_table(results: Iterable, floatfmt: str = ".2f") -> str:
    """Render ranked tuner results as an aligned text table."""
    return format_table(plan_rows(results), floatfmt=floatfmt)


def grid_plan_rows(results: Iterable) -> list[dict]:
    """Flatten :class:`~repro.tuner.grid.GridPlan` rows for ``format_table``.

    Prefixes each candidate's columns with its workload point
    (``seq_len``/``pp``/``mb``); rows whose *point* never ran (token
    budget below one micro batch) show the point's reason with ``-``
    candidate columns.
    """
    rows = []
    for rank, r in enumerate(results, start=1):
        cell = {
            "rank": rank if r.feasible else "-",
            "seq_len": format_seq_len(r.point.seq_len),
            "pp": r.point.p,
        }
        if r.plan is None:
            cell.update(
                mb="-",
                schedule="-",
                recompute="-",
                options="-",
                status=(r.reason or "infeasible point")[:48],
                iter_s="-",
                tokens_per_s=0.0,
                peak_gib="-",
            )
        else:
            c = r.plan.candidate
            cell.update(
                mb=c.num_micro_batches,
                schedule=c.schedule,
                recompute=c.recompute.value,
                options=",".join(f"{k}={v}" for k, v in c.options) or "-",
                status="ok" if r.feasible else (r.reason or "infeasible")[:48],
                iter_s=(
                    "-" if r.plan.iteration_time is None else r.plan.iteration_time
                ),
                tokens_per_s=r.plan.tokens_per_s,
                peak_gib=(
                    "-"
                    if r.plan.peak_memory_bytes is None
                    else r.plan.peak_memory_bytes / _GIB
                ),
            )
        rows.append(cell)
    return rows


def format_grid_table(results: Iterable, floatfmt: str = ".2f") -> str:
    """Render ranked workload-grid tuner results as an aligned text table."""
    return format_table(grid_plan_rows(results), floatfmt=floatfmt)
