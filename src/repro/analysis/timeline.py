"""ASCII Gantt rendering of simulator traces.

Reproduces the look of the paper's schedule figures (Figures 2, 5, 6, 7)
in a terminal: one row per pipeline stage, one character per time quantum,
micro-batch digits for forward, lowercase letters / shaded digits for
backward, ``.`` for idle.
"""

from __future__ import annotations

from repro.sim.trace import Trace

__all__ = ["render_timeline"]

_OP_STYLE = {
    "F": str,  # forward: plain micro-batch digit
    "RC": lambda mb: "r",
    "B": lambda mb: chr(ord("a") + (mb % 26)),
    "BI": lambda mb: chr(ord("a") + (mb % 26)),
    "BW": lambda mb: "w",
}


def _op_of(label: str) -> str:
    return label.split("[", 1)[0]


def render_timeline(
    trace: Trace,
    num_stages: int,
    width: int = 100,
    show_comm: bool = False,
) -> str:
    """Render ``trace`` as an ASCII Gantt chart ``width`` characters wide.

    Forward slots show the micro-batch id (mod 10), backward slots the
    letter ``a + mb``, recompute ``r``, weight-gradient passes ``w``;
    idle time is ``.``.  With ``show_comm`` an extra row per stage marks
    communication-engine busy spans with ``~``.
    """
    span = trace.makespan
    if span <= 0:
        return "(empty trace)"
    q = span / width
    rows = []
    for stage in range(num_stages):
        row = ["."] * width
        for iv in trace.compute_intervals(stage):
            op = _op_of(iv.label)
            style = _OP_STYLE.get(op, lambda mb: "?")
            ch = style(iv.micro_batch) if op != "F" else str(iv.micro_batch % 10)
            lo = int(iv.start / q)
            hi = max(lo + 1, int(round(iv.end / q)))
            for x in range(lo, min(hi, width)):
                row[x] = ch
        rows.append(f"P{stage} |" + "".join(row) + "|")
        if show_comm:
            comm = [" "] * width
            for iv in trace.comm_intervals():
                if iv.stage == stage or iv.peer == stage:
                    lo = int(iv.start / q)
                    hi = max(lo + 1, int(round(iv.end / q)))
                    for x in range(lo, min(hi, width)):
                        comm[x] = "~"
            rows.append("   |" + "".join(comm) + "|")
    rows.append(f"    0{'':{width - 10}}{span:.4g}s")
    return "\n".join(rows)
