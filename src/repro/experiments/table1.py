"""Table 1 reproduction: per-op computation and memory overhead."""

from __future__ import annotations

from repro.costmodel.table1 import LAYER_OPS, layer_totals, op_costs
from repro.experiments.registry import register_experiment

__all__ = ["run"]


@register_experiment(
    "table1",
    description="Per-op computation and memory overhead of one "
    "transformer layer (Table 1)",
)
def run(b: int = 1, s: int = 4096, h: int = 4096) -> list[dict]:
    """Rows of Table 1 plus the closed-form totals row."""
    ops = op_costs(b, s, h)
    rows = []
    for name in LAYER_OPS:
        op = ops[name]
        rows.append(
            {
                "op": name,
                "module": op.module,
                "fwd_flops": op.fwd_flops,
                "bwd_b_flops": op.bwd_b_flops,
                "bwd_w_flops": op.bwd_w_flops,
                "params": op.params,
                "activation_elems": op.activation_elems,
            }
        )
    tot = layer_totals(b, s, h)
    rows.append(
        {
            "op": "TOTAL",
            "module": "",
            "fwd_flops": tot.fwd_flops,
            "bwd_b_flops": tot.bwd_b_flops,
            "bwd_w_flops": tot.bwd_w_flops,
            "params": tot.params,
            "activation_elems": tot.activation_elems,
        }
    )
    return rows
