"""Figure 3: normalized per-component layer time vs sequence length.

Profiled on A800 in the paper (h = 4096, b = 1, flash attention); here
predicted by the roofline timing model.  The reproduced shape: attention
forward+backward grows from a small slice at 4k to the dominant share at
128k.
"""

from __future__ import annotations

from repro.cluster.gpu import A800, GPUSpec
from repro.costmodel.timing import TimingModel
from repro.experiments.registry import register_experiment
from repro.model.config import ModelConfig

__all__ = ["run", "FIG3_SEQ_LENS"]

FIG3_SEQ_LENS: tuple[int, ...] = (4096, 8192, 16384, 32768, 65536, 131072)


@register_experiment(
    "fig3_breakdown",
    description="Per-component layer time share vs sequence length: "
    "attention grows dominant (Fig. 3)",
    smoke=dict(seq_lens=(4096, 32768)),
)
def run(
    gpu: GPUSpec = A800,
    hidden_size: int = 4096,
    micro_batch: int = 1,
    seq_lens: tuple[int, ...] = FIG3_SEQ_LENS,
) -> list[dict]:
    """One row per sequence length with each component's % of layer time."""
    model = ModelConfig("fig3", num_layers=1, num_heads=32, hidden_size=hidden_size)
    rows = []
    for s in seq_lens:
        tm = TimingModel(gpu, model, micro_batch=micro_batch, seq_len=s, sp=1)
        bd = tm.breakdown()
        total = sum(bd.values())
        row = {"seq_len": s}
        row.update({k: 100.0 * v / total for k, v in bd.items()})
        row["attn_share_pct"] = row["attn_fwd"] + row["attn_bwd"]
        rows.append(row)
    return rows
