"""Figure 6: naive vs two-fold FILO under communication delay.

Two stages, unit-time layers, non-zero per-boundary transfer time.  The
naive schedule exposes the transfers on the critical path; the two-fold
schedule hides one micro batch's transfer behind its fold partner's
attention (Section 4.3.2).
"""

from __future__ import annotations

from repro.cluster.topology import abstract_cluster
from repro.core.filo import build_helix_filo
from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.registry import register_experiment
from repro.schedules.costs import UnitCosts
from repro.sim import simulate

__all__ = ["run"]


@register_experiment(
    "fig6_overlap",
    description="Naive vs two-fold FILO under growing communication "
    "delay: the overlap effect (Fig. 6)",
    smoke=dict(comm_times=(0.0, 1.0)),
)
def run(
    p: int = 2,
    num_layers: int = 4,
    comm_times: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 3.0),
) -> list[dict]:
    """One row per comm time with both schedules' makespans."""
    cluster = abstract_cluster(p)
    m = 2 * p  # saturates the two-fold schedule with a single loop
    rows = []
    for comm in comm_times:
        res = {}
        for fold, label in ((1, "naive"), (2, "two-fold")):
            costs = UnitCosts(
                num_layers=num_layers,
                recompute=RecomputeStrategy.NONE,
                comm_time=comm,
            )
            sched = build_helix_filo(
                p, m, costs, fold=fold, include_embed=False, include_head=False
            )
            r = simulate(sched, cluster)
            res[label] = r
        rows.append(
            {
                "comm_time": comm,
                "naive_makespan": res["naive"].makespan,
                "twofold_makespan": res["two-fold"].makespan,
                "naive_comm_blocked": max(
                    s.comm_blocked_time for s in res["naive"].stages
                ),
                "twofold_comm_blocked": max(
                    s.comm_blocked_time for s in res["two-fold"].stages
                ),
            }
        )
    return rows
