"""Figures 2 and 7: schedule timelines in the paper's unit-time world.

Renders the 1F1B baseline (Fig. 2a), the HelixPipe FILO schedule
(Fig. 2b: 4 micro batches, 8 layers, 4 stages) and the naive/two-fold
variants (Fig. 7: 8 micro batches, 4 layers, 4 stages) as ASCII Gantt
charts, and reports their makespans/bubbles.
"""

from __future__ import annotations

from repro.analysis.timeline import render_timeline
from repro.cluster.topology import abstract_cluster
from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.registry import attach_renderer, register_experiment
from repro.schedules.costs import UnitCosts
from repro.schedules.registry import build_schedule
from repro.sim import simulate

__all__ = ["run", "render"]


def _cases():
    return [
        ("fig2a_1f1b", "1f1b", dict(p=4, m=4, L=8)),
        ("fig2b_helix_filo", "helix-naive", dict(p=4, m=4, L=8)),
        ("fig7a_naive_filo", "helix-naive", dict(p=4, m=8, L=4)),
        ("fig7b_twofold_filo", "helix", dict(p=4, m=8, L=4)),
    ]


def _simulate(schedule_name: str, p: int, m: int, L: int):
    costs = UnitCosts(num_layers=L, recompute=RecomputeStrategy.NONE)
    sched = build_schedule(
        schedule_name, (p, m), costs, include_embed=False, include_head=False
    )
    return sched, simulate(sched, abstract_cluster(p))


@register_experiment(
    "fig2_fig7_schedules",
    description="1F1B vs naive/two-fold FILO timelines in the unit-time "
    "world: makespans and bubbles (Figs. 2 and 7)",
)
def run() -> list[dict]:
    rows = []
    for name, kind, cfg in _cases():
        sched, r = _simulate(kind, cfg["p"], cfg["m"], cfg["L"])
        rows.append(
            {
                "figure": name,
                "schedule": sched.name,
                "makespan": r.makespan,
                "mean_bubble": r.mean_bubble_time,
                "bubble_fraction": r.bubble_fraction,
            }
        )
    return rows


@attach_renderer("fig2_fig7_schedules")
def render(width: int = 110) -> str:
    """All four timelines as one printable block."""
    out = []
    for name, kind, cfg in _cases():
        sched, r = _simulate(kind, cfg["p"], cfg["m"], cfg["L"])
        out.append(f"== {name} ({sched.name}): makespan {r.makespan:g} ==")
        out.append(render_timeline(r.trace, cfg["p"], width=width))
        out.append("")
    return "\n".join(out)
