"""Figure 10: per-stage max allocated memory, 3B model, 128k, 8 stages.

All four methods on the same workload.  Reproduced shape: 1F1B skews from
stage 0 down; ZB1P is flat but spikes on the last stage (fp32 logits
stash for its delayed head backward-W); AdaPipe balances the early stages
via recomputation; HelixPipe is the flattest and lowest.
"""

from __future__ import annotations

from repro.experiments.common import METHODS, Workload, run_all_methods
from repro.experiments.registry import register_experiment

__all__ = ["run"]

_GIB = float(1 << 30)


@register_experiment(
    "fig10_memory_footprint",
    description="Per-stage peak allocated memory for every method on "
    "one workload (Fig. 10)",
    smoke=dict(p=2, seq_len=32768),
)
def run(
    model_name: str = "3B",
    gpu: str = "H20",
    p: int = 8,
    seq_len: int = 131072,
    methods: tuple[str, ...] = METHODS,
) -> list[dict]:
    """One row per (method, stage) with the peak allocated GiB."""
    wl = Workload.paper(model_name, gpu, p, seq_len)
    results = run_all_methods(wl, methods)
    rows = []
    for method, r in results.items():
        for stage, peak in enumerate(r.peak_memory_bytes):
            rows.append(
                {
                    "method": method,
                    "stage": stage,
                    "peak_gib": peak / _GIB,
                }
            )
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Max / imbalance per method (imbalance = max stage / min stage)."""
    by_method: dict[str, list[float]] = {}
    for r in rows:
        by_method.setdefault(r["method"], []).append(r["peak_gib"])
    return [
        {
            "method": m,
            "max_gib": max(v),
            "min_gib": min(v),
            "imbalance": max(v) / min(v),
        }
        for m, v in by_method.items()
    ]
