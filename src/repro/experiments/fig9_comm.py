"""Figure 9: decoupled per-layer computation vs p2p communication time.

For a 7B layer on both clusters and each sequence length: forward time of
the combined pre+post phases, forward time of attention, and the time of
one inter-stage p2p operation (two activations, Section 4.2) at the
per-GPU fair-share InfiniBand bandwidth.  The overlap rule of Section 5.3
falls out: the two-fold schedule hides communication iff
``attention >= comm``; on A800 at 32k it does not.
"""

from __future__ import annotations

from repro.comm.cost import CommModel
from repro.comm.volumes import boundary_volumes
from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.common import SEQ_LENS, iter_cells
from repro.experiments.registry import register_experiment

__all__ = ["run"]


@register_experiment(
    "fig9_comm",
    description="Per-layer computation vs p2p transfer time and the "
    "two-fold overlap rule (Fig. 9)",
    smoke=dict(seq_lens=(32768,)),
)
def run(
    model_name: str = "7B",
    gpus: tuple[str, ...] = ("H20", "A800"),
    seq_lens: tuple[int, ...] = SEQ_LENS,
) -> list[dict]:
    rows = []
    for cell, wl in iter_cells((model_name,), gpus, seq_lens, (2,)):
        pc = wl.costs(RecomputeStrategy.NONE)
        lt = pc.layer
        comm = CommModel(wl.cluster)
        vols = boundary_volumes(
            wl.micro_batch, wl.seq_len, wl.model.hidden_size, ship_qkv_weights=True
        )
        p2p = comm.p2p_time(
            vols.bytes("attn_to_post", sp=wl.cluster.sequence_parallel_size)
        )
        rows.append(
            {
                "gpu": cell["gpu"],
                "seq_len": cell["seq_len"],
                "pre_post_fwd_ms": 1e3 * (lt.pre.fwd + lt.post.fwd),
                "attention_fwd_ms": 1e3 * lt.attn.fwd,
                "comm_ms": 1e3 * p2p,
                "overlappable": lt.attn.fwd >= p2p,
            }
        )
    return rows
