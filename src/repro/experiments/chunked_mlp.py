"""Section 4.4.2 study: chunked MLP vs unchunked allocation behaviour.

No figure number in the paper; reported as the motivation for chunked
MLP.  Replays synthetic allocation traces of the FILO schedule through
the caching-allocator simulator and compares peak reserved memory and
fragmentation, with and without expandable segments.
"""

from __future__ import annotations

from repro.experiments.registry import register_experiment
from repro.memsim.allocator import CachingAllocator
from repro.memsim.trace import chunked_mlp_trace, mlp_phase_trace, replay

__all__ = ["run"]

_GIB = float(1 << 30)


@register_experiment(
    "chunked_mlp",
    description="Chunked vs unchunked MLP allocation behaviour through "
    "the caching-allocator simulator (Section 4.4.2)",
    smoke=dict(num_layers=2, num_micro_batches=2, s=8192),
)
def run(
    num_layers: int = 4,
    num_micro_batches: int = 8,
    s: int = 32768,
    b: int = 1,
    h: int = 4096,
    chunk_rows: int = 2048,
    capacity_gib: float = 960.0,
) -> list[dict]:
    rows = []
    variants = [
        ("unchunked", mlp_phase_trace(num_layers, num_micro_batches, s, b, h), False),
        ("unchunked+expandable", mlp_phase_trace(num_layers, num_micro_batches, s, b, h), True),
        (
            "chunked",
            chunked_mlp_trace(num_layers, num_micro_batches, s, b, h, chunk_rows),
            False,
        ),
    ]
    for name, trace, expandable in variants:
        alloc = CachingAllocator(
            capacity=int(capacity_gib * _GIB),
            segment_granularity=2 << 20,
            expandable_segments=expandable,
        )
        stats, max_frag = replay(trace, alloc)
        rows.append(
            {
                "variant": name,
                "peak_reserved_gib": stats.peak_reserved / _GIB,
                "peak_allocated_gib": stats.peak_allocated / _GIB,
                "frag_at_peak_gib": (stats.peak_reserved - stats.peak_allocated) / _GIB,
                "num_segments": stats.num_segments,
            }
        )
    return rows
