"""Figure 8: normalized throughput across the full evaluation grid.

{1.3B, 3B, 7B} x {H20, A800} x s in {32k, 64k, 96k, 128k} x
p in {2, 4, 8} x {1F1B, ZB1P, AdaPipe, HelixPipe}, micro batch 1, global
batch 2p -- exactly the paper's Section 5.1 protocol.  Throughput is
normalized to the best method within each (model, gpu, seq, p) group as
in the figure.
"""

from __future__ import annotations

from repro.experiments.common import METHODS, iter_cells, run_all_methods
from repro.experiments.registry import register_experiment

__all__ = ["run", "PP_SIZES", "FIG8_SEQ_LENS"]

PP_SIZES: tuple[int, ...] = (2, 4, 8)
FIG8_SEQ_LENS: tuple[int, ...] = (32768, 65536, 98304, 131072)


@register_experiment(
    "fig8_throughput",
    description="End-to-end throughput, all methods across the full "
    "model x GPU x seq x pipeline grid (Fig. 8)",
    smoke=dict(models=("1.3B",), gpus=("H20",), seq_lens=(32768,), pp_sizes=(2,)),
)
def run(
    models: tuple[str, ...] = ("1.3B", "3B", "7B"),
    gpus: tuple[str, ...] = ("H20", "A800"),
    seq_lens: tuple[int, ...] = FIG8_SEQ_LENS,
    pp_sizes: tuple[int, ...] = PP_SIZES,
    methods: tuple[str, ...] = METHODS,
) -> list[dict]:
    """One row per grid cell with absolute and normalized throughput."""
    rows = []
    for cell, wl in iter_cells(models, gpus, seq_lens, pp_sizes):
        results = run_all_methods(wl, methods)
        tput = {
            k: r.throughput_tokens_per_s(wl.tokens_per_iteration)
            for k, r in results.items()
        }
        best = max(tput.values())
        for k in methods:
            rows.append(
                {
                    **cell,
                    "method": k,
                    "tokens_per_s": tput[k],
                    "normalized": tput[k] / best,
                    "iter_time_s": results[k].makespan,
                }
            )
    return rows


def speedup_vs_best_baseline(rows: list[dict]) -> list[dict]:
    """HelixPipe speedup over the best non-helix method per cell."""
    cells: dict[tuple, dict[str, float]] = {}
    for r in rows:
        key = (r["model"], r["gpu"], r["seq_len"], r["pp"])
        cells.setdefault(key, {})[r["method"]] = r["tokens_per_s"]
    out = []
    for (model, gpu, s, p), tput in sorted(cells.items()):
        base = max(v for k, v in tput.items() if k != "helix")
        out.append(
            {
                "model": model,
                "gpu": gpu,
                "seq_len": s,
                "pp": p,
                "helix_speedup_pct": 100.0 * (tput["helix"] / base - 1.0),
            }
        )
    return out
