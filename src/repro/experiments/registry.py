"""Experiment registry: every paper figure/table as a registered spec.

The reproduction's evidence is a battery of figures and tables, each
previously a hand-rolled module with its own driving code.  This module
gives them one uniform shape -- :class:`ExperimentSpec` -- and one entry
point, mirroring :mod:`repro.schedules.registry` for schedules:

>>> from repro.experiments.registry import get_experiment
>>> result = get_experiment("fig8_throughput").run(smoke=True)
>>> result.rows[0]["method"]
'1f1b'

A spec carries the experiment's name, description, parameter schema
(introspected from the runner's keyword defaults) and a ``smoke``
override set -- the seconds-fast configuration CI and the parity tests
drive.  Running a spec returns an :class:`ExperimentResult`: the
resolved parameters plus structured rows (list of flat dicts, one per
figure data point) that serialise losslessly to JSON and CSV -- the
figure suite as a programmable subsystem instead of a pile of scripts.

Serialisation is *canonical*: rows and parameter keys order
deterministically, floats are rounded to 12 significant digits (enough
for every figure, few enough to absorb accumulation-order jitter in the
last bits) and the artifact header embeds the cost-model source
fingerprint (:func:`repro.tuner.cache.costmodel_fingerprint`) the run
was computed under.  Two runs of the same spec on the same code produce
byte-identical artifacts, which is what makes golden-baseline diffing
(:mod:`repro.experiments.diffing`) byte-stable.

Experiment modules self-register with :func:`register_experiment` on
their ``run`` function (and optionally :func:`attach_renderer` on an
ASCII renderer); the registry imports the built-in modules lazily on
first lookup so import order never matters.
"""

from __future__ import annotations

import csv
import dataclasses
import importlib
import inspect
import io
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "canonical_cell",
    "register_experiment",
    "attach_renderer",
    "get_experiment",
    "available_experiments",
    "run_experiment",
]


def _sort_token(row: Mapping[str, Any], col: str) -> tuple:
    """Total-order token for one cell in the canonical row sort.

    Distinct leading tags keep mixed cell kinds comparable and keep a
    missing cell from sorting equal to an explicit ``None`` (which
    would let production order leak through the stable sort into the
    artifact bytes); numbers compare *numerically*, so integer axis
    columns (``seq_len`` 32768 < 131072) serialise in sweep order, not
    repr-lexicographic order.  NaN gets its own tag: comparing through
    a NaN would make the sort order input-dependent.
    """
    if col not in row:
        return (0, "")
    value = row[col]
    if isinstance(value, float) and math.isnan(value):
        return (1, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (2, value)
    return (3, repr(value))


def canonical_cell(value: Any) -> Any:
    """Normalise one row cell for serialisation.

    Finite floats round to 12 significant digits -- full figure
    precision, but the last couple of bits (where summation order and
    platform libm differences live) are folded away -- and ``-0.0``
    collapses into ``0.0``.  The literal strings ``"NaN"``,
    ``"Infinity"`` and ``"-Infinity"`` fold into their float values:
    they are the strict-JSON spelling of non-finite cells, so keeping
    both forms distinct would make artifacts that cannot round-trip.
    Everything else (ints, other strings) passes through unchanged.
    """
    if isinstance(value, float) and math.isfinite(value):
        return float(f"{value:.12g}") + 0.0
    if isinstance(value, str) and value in _NONFINITE_DECODE:
        return _NONFINITE_DECODE[value]
    return value


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    ``rows`` is a list of flat dicts -- one per figure/table data point,
    every value a JSON-serialisable scalar -- and ``params`` records the
    exact parameters the run resolved, so a result file is reproducible
    from its own header.  ``costmodel`` is the cost-model source
    fingerprint the rows were computed under (``""`` for hand-built
    results); artifact consumers use it to warn when comparing results
    across cost-model versions.
    """

    name: str
    params: Mapping[str, Any]
    rows: list[dict]
    costmodel: str = ""

    @property
    def columns(self) -> list[str]:
        """Union of row keys, first-seen order (rows may be ragged)."""
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def canonical_columns(self) -> list[str]:
        """Column union in an order independent of row production order.

        First-seen order like :attr:`columns`, but collected over the
        rows in a canonical sequence (sorted by their key-ordered
        items), so ragged artifacts -- where first-seen depends on
        which row shape comes first -- still serialise byte-stably.
        For homogeneous rows this equals :attr:`columns`.
        """
        ordered = sorted(self.rows, key=lambda r: repr(sorted(r.items())))
        cols: dict[str, None] = {}
        for row in ordered:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def canonical_rows(self) -> list[dict]:
        """Rows in canonical artifact form.

        Cells are normalised with :func:`canonical_cell`, keys follow
        :meth:`canonical_columns` order, and rows sort by their
        rendered cells -- so the serialised bytes depend only on the
        row *values*, never on the order the runner happened to produce
        them in.
        """
        cols = self.canonical_columns()
        rows = [
            {c: canonical_cell(row[c]) for c in cols if c in row}
            for row in self.rows
        ]
        rows.sort(key=lambda r: tuple(_sort_token(r, c) for c in cols))
        return rows

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON artifact (byte-stable for identical results).

        Strictly standard JSON: non-finite floats are encoded as the
        strings ``"NaN"``/``"Infinity"``/``"-Infinity"`` (and decoded
        back by :meth:`from_json`), never as Python's bare tokens.
        """
        payload = {
            "experiment": self.name,
            "costmodel": self.costmodel,
            "params": {
                k: _jsonable(self.params[k]) for k in sorted(self.params)
            },
            "columns": self.canonical_columns(),
            "rows": [
                {k: _encode_nonfinite(v) for k, v in row.items()}
                for row in self.canonical_rows()
            ],
        }
        return json.dumps(payload, indent=indent, allow_nan=False)

    def to_csv(self) -> str:
        """Canonical CSV rows (same row order and cell values as JSON)."""
        buf = io.StringIO()
        writer = csv.DictWriter(
            buf, fieldnames=self.canonical_columns(), restval=""
        )
        writer.writeheader()
        writer.writerows(self.canonical_rows())
        return buf.getvalue()

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse a JSON artifact written by :meth:`to_json`.

        Pre-canonicalisation artifacts (no ``costmodel``/``columns``
        header) load too; their fingerprint reads back as ``""``
        (unstamped).
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"not an experiment artifact: {err}") from None
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("experiment"), str)
            or not isinstance(payload.get("rows"), list)
        ):
            raise ValueError(
                "not an experiment artifact (missing 'experiment'/'rows')"
            )
        if not all(isinstance(row, dict) for row in payload["rows"]):
            raise ValueError(
                "not an experiment artifact (rows must be JSON objects)"
            )
        rows = [
            {k: _decode_nonfinite(v) for k, v in row.items()}
            for row in payload["rows"]
        ]
        return cls(
            name=payload["experiment"],
            params={
                k: _decode_value(v)
                for k, v in dict(payload.get("params", {})).items()
            },
            rows=rows,
            costmodel=str(payload.get("costmodel", "")),
        )

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ExperimentResult":
        """Load a JSON artifact from ``path``."""
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            return cls.from_json(text)
        except ValueError as err:
            raise ValueError(f"{os.fspath(path)}: {err}") from None


#: Strict-JSON spellings of the non-finite floats.  Python's json module
#: would otherwise emit bare ``NaN``/``Infinity`` tokens that standard
#: parsers (jq, JavaScript) reject.
_NONFINITE_DECODE = {
    "NaN": float("nan"),
    "Infinity": math.inf,
    "-Infinity": -math.inf,
}


def _encode_nonfinite(value: Any) -> Any:
    """Non-finite floats -> their strict-JSON string spelling."""
    if isinstance(value, float) and not math.isfinite(value):
        return "NaN" if math.isnan(value) else (
            "Infinity" if value > 0 else "-Infinity"
        )
    return value


def _decode_nonfinite(value: Any) -> Any:
    """Inverse of :func:`_encode_nonfinite` (a literal string cell that
    spells a non-finite float reads back as the float)."""
    if isinstance(value, str) and value in _NONFINITE_DECODE:
        return _NONFINITE_DECODE[value]
    return value


def _decode_value(value: Any) -> Any:
    """Recursive :func:`_decode_nonfinite` for nested parameter values."""
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _decode_value(v) for k, v in value.items()}
    return _decode_nonfinite(value)


def _jsonable(value: Any) -> Any:
    """Strict-JSON form for a parameter/report value (tuples -> lists,
    non-finite floats -> strings, rich objects -> repr)."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, float):
        return _encode_nonfinite(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one registered experiment.

    Parameters
    ----------
    name:
        Registry key (the figure/table identifier, e.g.
        ``"fig8_throughput"``).
    runner:
        ``runner(**params) -> list[dict]``: the experiment's row
        producer (the module's historical ``run`` entry point).
    description:
        One-line summary for listings.
    params:
        Parameter schema: every keyword the runner accepts with its
        paper-protocol default, introspected from the runner signature.
        Unknown overrides are rejected before the runner is called.
    smoke_params:
        Overrides for a seconds-fast run (small grids), used by CI and
        the registry parity tests; empty when the defaults are already
        fast.
    renderer:
        Optional ``renderer() -> str`` producing an ASCII figure
        (timeline Gantt charts) alongside the structured rows.
    """

    name: str
    runner: Callable[..., list[dict]]
    description: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    smoke_params: Mapping[str, Any] = field(default_factory=dict)
    renderer: Callable[..., str] | None = None

    def resolve_params(
        self, smoke: bool = False, overrides: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Schema defaults, then smoke overrides, then explicit overrides."""
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ValueError(
                f"{self.name}: unknown parameter(s) {unknown}; "
                f"schema: {sorted(self.params)}"
            )
        resolved = dict(self.params)
        if smoke:
            resolved.update(self.smoke_params)
        resolved.update(overrides)
        return resolved

    def run(self, smoke: bool = False, **overrides: Any) -> ExperimentResult:
        """Run the experiment and wrap its rows in an :class:`ExperimentResult`."""
        # Local import: the fingerprint walks the cost-model packages,
        # which the runner pulls in anyway; registry import stays light.
        from repro.tuner.cache import costmodel_fingerprint

        params = self.resolve_params(smoke, overrides)
        rows = self.runner(**params)
        return ExperimentResult(
            name=self.name,
            params=params,
            rows=rows,
            costmodel=costmodel_fingerprint(),
        )

    def render(self) -> str:
        if self.renderer is None:
            raise ValueError(f"experiment {self.name!r} has no renderer")
        return self.renderer()


_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules whose import registers the built-in experiments.  Imported
#: lazily on first lookup, exactly like the schedule registry's builder
#: modules, so this module has no import-time dependency on them.
_BUILTIN_MODULES = (
    "repro.experiments.chunked_mlp",
    "repro.experiments.fig2_fig7_schedules",
    "repro.experiments.fig3_breakdown",
    "repro.experiments.fig4_memory_imbalance",
    "repro.experiments.fig5_partition",
    "repro.experiments.fig6_overlap",
    "repro.experiments.fig8_throughput",
    "repro.experiments.fig9_comm",
    "repro.experiments.fig10_memory_footprint",
    "repro.experiments.fig11_recompute",
    "repro.experiments.table1",
    "repro.experiments.table2",
)
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    for mod in _BUILTIN_MODULES:
        importlib.import_module(mod)
    # Set only after every import succeeded: a failed module must fail
    # again (loudly) on the next lookup, not leave a silently partial
    # registry.  Re-imports of the successful modules are no-ops.
    _builtin_loaded = True


def _signature_params(fn: Callable[..., Any]) -> dict[str, Any]:
    """The runner's keyword-with-default parameters, as the schema."""
    schema: dict[str, Any] = {}
    for name, param in inspect.signature(fn).parameters.items():
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            raise ValueError(
                f"experiment runner {fn.__qualname__} must not use *args/**kwargs"
            )
        if param.default is inspect.Parameter.empty:
            raise ValueError(
                f"experiment runner {fn.__qualname__}: parameter {name!r} "
                "needs a default (the paper-protocol value)"
            )
        schema[name] = param.default
    return schema


def register_experiment(
    name: str,
    *,
    description: str = "",
    smoke: Mapping[str, Any] | None = None,
) -> Callable[[Callable[..., list[dict]]], Callable[..., list[dict]]]:
    """Decorator registering an experiment runner under ``name``.

    The parameter schema is introspected from the runner's keyword
    defaults; ``smoke`` overrides (which must name schema parameters)
    define the fast configuration.  The decorated function is returned
    unchanged, so the module's direct ``run(...)`` entry point keeps
    working -- the registry parity tests assert both paths agree.
    """

    def deco(fn: Callable[..., list[dict]]) -> Callable[..., list[dict]]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        schema = _signature_params(fn)
        smoke_params = dict(smoke or {})
        unknown = sorted(set(smoke_params) - set(schema))
        if unknown:
            raise ValueError(
                f"{name}: smoke parameter(s) {unknown} not in the "
                f"schema {sorted(schema)}"
            )
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            runner=fn,
            description=description,
            params=schema,
            smoke_params=smoke_params,
        )
        return fn

    return deco


def attach_renderer(name: str) -> Callable[[Callable[..., str]], Callable[..., str]]:
    """Decorator attaching an ASCII renderer to an already-registered spec."""

    def deco(fn: Callable[..., str]) -> Callable[..., str]:
        try:
            spec = _REGISTRY[name]
        except KeyError:
            raise ValueError(
                f"cannot attach renderer: experiment {name!r} not registered"
            ) from None
        if spec.renderer is not None:
            raise ValueError(f"experiment {name!r} already has a renderer")
        _REGISTRY[name] = dataclasses.replace(spec, renderer=fn)
        return fn

    return deco


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {available_experiments()}"
        ) from None


def available_experiments() -> list[str]:
    """Sorted names of every registered experiment."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def run_experiment(name: str, smoke: bool = False, **overrides: Any) -> ExperimentResult:
    """One-shot convenience: ``get_experiment(name).run(...)``."""
    return get_experiment(name).run(smoke=smoke, **overrides)
