"""Experiment registry: every paper figure/table as a registered spec.

The reproduction's evidence is a battery of figures and tables, each
previously a hand-rolled module with its own driving code.  This module
gives them one uniform shape -- :class:`ExperimentSpec` -- and one entry
point, mirroring :mod:`repro.schedules.registry` for schedules:

>>> from repro.experiments.registry import get_experiment
>>> result = get_experiment("fig8_throughput").run(smoke=True)
>>> result.rows[0]["method"]
'1f1b'

A spec carries the experiment's name, description, parameter schema
(introspected from the runner's keyword defaults) and a ``smoke``
override set -- the seconds-fast configuration CI and the parity tests
drive.  Running a spec returns an :class:`ExperimentResult`: the
resolved parameters plus structured rows (list of flat dicts, one per
figure data point) that serialise losslessly to JSON and CSV -- the
figure suite as a programmable subsystem instead of a pile of scripts.

Experiment modules self-register with :func:`register_experiment` on
their ``run`` function (and optionally :func:`attach_renderer` on an
ASCII renderer); the registry imports the built-in modules lazily on
first lookup so import order never matters.
"""

from __future__ import annotations

import csv
import dataclasses
import importlib
import inspect
import io
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "register_experiment",
    "attach_renderer",
    "get_experiment",
    "available_experiments",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    ``rows`` is a list of flat dicts -- one per figure/table data point,
    every value a JSON-serialisable scalar -- and ``params`` records the
    exact parameters the run resolved, so a result file is reproducible
    from its own header.
    """

    name: str
    params: Mapping[str, Any]
    rows: list[dict]

    @property
    def columns(self) -> list[str]:
        """Union of row keys, first-seen order (rows may be ragged)."""
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "experiment": self.name,
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "rows": self.rows,
        }
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns, restval="")
        writer.writeheader()
        writer.writerows(self.rows)
        return buf.getvalue()


def _jsonable(value: Any) -> Any:
    """Best-effort JSON form for a parameter value (tuples -> lists...)."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one registered experiment.

    Parameters
    ----------
    name:
        Registry key (the figure/table identifier, e.g.
        ``"fig8_throughput"``).
    runner:
        ``runner(**params) -> list[dict]``: the experiment's row
        producer (the module's historical ``run`` entry point).
    description:
        One-line summary for listings.
    params:
        Parameter schema: every keyword the runner accepts with its
        paper-protocol default, introspected from the runner signature.
        Unknown overrides are rejected before the runner is called.
    smoke_params:
        Overrides for a seconds-fast run (small grids), used by CI and
        the registry parity tests; empty when the defaults are already
        fast.
    renderer:
        Optional ``renderer() -> str`` producing an ASCII figure
        (timeline Gantt charts) alongside the structured rows.
    """

    name: str
    runner: Callable[..., list[dict]]
    description: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    smoke_params: Mapping[str, Any] = field(default_factory=dict)
    renderer: Callable[..., str] | None = None

    def resolve_params(
        self, smoke: bool = False, overrides: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Schema defaults, then smoke overrides, then explicit overrides."""
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ValueError(
                f"{self.name}: unknown parameter(s) {unknown}; "
                f"schema: {sorted(self.params)}"
            )
        resolved = dict(self.params)
        if smoke:
            resolved.update(self.smoke_params)
        resolved.update(overrides)
        return resolved

    def run(self, smoke: bool = False, **overrides: Any) -> ExperimentResult:
        """Run the experiment and wrap its rows in an :class:`ExperimentResult`."""
        params = self.resolve_params(smoke, overrides)
        rows = self.runner(**params)
        return ExperimentResult(name=self.name, params=params, rows=rows)

    def render(self) -> str:
        if self.renderer is None:
            raise ValueError(f"experiment {self.name!r} has no renderer")
        return self.renderer()


_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules whose import registers the built-in experiments.  Imported
#: lazily on first lookup, exactly like the schedule registry's builder
#: modules, so this module has no import-time dependency on them.
_BUILTIN_MODULES = (
    "repro.experiments.chunked_mlp",
    "repro.experiments.fig2_fig7_schedules",
    "repro.experiments.fig3_breakdown",
    "repro.experiments.fig4_memory_imbalance",
    "repro.experiments.fig5_partition",
    "repro.experiments.fig6_overlap",
    "repro.experiments.fig8_throughput",
    "repro.experiments.fig9_comm",
    "repro.experiments.fig10_memory_footprint",
    "repro.experiments.fig11_recompute",
    "repro.experiments.table1",
    "repro.experiments.table2",
)
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    for mod in _BUILTIN_MODULES:
        importlib.import_module(mod)
    # Set only after every import succeeded: a failed module must fail
    # again (loudly) on the next lookup, not leave a silently partial
    # registry.  Re-imports of the successful modules are no-ops.
    _builtin_loaded = True


def _signature_params(fn: Callable[..., Any]) -> dict[str, Any]:
    """The runner's keyword-with-default parameters, as the schema."""
    schema: dict[str, Any] = {}
    for name, param in inspect.signature(fn).parameters.items():
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            raise ValueError(
                f"experiment runner {fn.__qualname__} must not use *args/**kwargs"
            )
        if param.default is inspect.Parameter.empty:
            raise ValueError(
                f"experiment runner {fn.__qualname__}: parameter {name!r} "
                "needs a default (the paper-protocol value)"
            )
        schema[name] = param.default
    return schema


def register_experiment(
    name: str,
    *,
    description: str = "",
    smoke: Mapping[str, Any] | None = None,
) -> Callable[[Callable[..., list[dict]]], Callable[..., list[dict]]]:
    """Decorator registering an experiment runner under ``name``.

    The parameter schema is introspected from the runner's keyword
    defaults; ``smoke`` overrides (which must name schema parameters)
    define the fast configuration.  The decorated function is returned
    unchanged, so the module's direct ``run(...)`` entry point keeps
    working -- the registry parity tests assert both paths agree.
    """

    def deco(fn: Callable[..., list[dict]]) -> Callable[..., list[dict]]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        schema = _signature_params(fn)
        smoke_params = dict(smoke or {})
        unknown = sorted(set(smoke_params) - set(schema))
        if unknown:
            raise ValueError(
                f"{name}: smoke parameter(s) {unknown} not in the "
                f"schema {sorted(schema)}"
            )
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            runner=fn,
            description=description,
            params=schema,
            smoke_params=smoke_params,
        )
        return fn

    return deco


def attach_renderer(name: str) -> Callable[[Callable[..., str]], Callable[..., str]]:
    """Decorator attaching an ASCII renderer to an already-registered spec."""

    def deco(fn: Callable[..., str]) -> Callable[..., str]:
        try:
            spec = _REGISTRY[name]
        except KeyError:
            raise ValueError(
                f"cannot attach renderer: experiment {name!r} not registered"
            ) from None
        if spec.renderer is not None:
            raise ValueError(f"experiment {name!r} already has a renderer")
        _REGISTRY[name] = dataclasses.replace(spec, renderer=fn)
        return fn

    return deco


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {available_experiments()}"
        ) from None


def available_experiments() -> list[str]:
    """Sorted names of every registered experiment."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def run_experiment(name: str, smoke: bool = False, **overrides: Any) -> ExperimentResult:
    """One-shot convenience: ``get_experiment(name).run(...)``."""
    return get_experiment(name).run(smoke=smoke, **overrides)
