"""Figure 5: layer-wise vs attention parallel partition, p=2, 2 micro batches.

The paper's didactic example draws a single layer split across two
stages; a layer-wise pipeline cannot even express that partition, so the
runnable comparison uses the smallest layer-wise-expressible workload
(two layers, one per stage) against the attention parallel partition of
the same model.  The conclusion is the figure's: executing the attention
of different micro batches in parallel across stages finishes earlier.
"""

from __future__ import annotations

from repro.cluster.topology import abstract_cluster
from repro.core.filo import build_helix_filo
from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.registry import register_experiment
from repro.schedules.costs import UnitCosts
from repro.schedules.gpipe import build_gpipe
from repro.sim import simulate

__all__ = ["run"]


@register_experiment(
    "fig5_partition",
    description="Layer-wise vs attention parallel partition on the "
    "smallest expressible workload (Fig. 5)",
)
def run(num_layers: int = 2, p: int = 2, m: int = 2) -> list[dict]:
    cluster = abstract_cluster(p)
    costs = UnitCosts(num_layers=num_layers, recompute=RecomputeStrategy.NONE)
    layerwise = simulate(
        build_gpipe(p, m, costs, include_embed=False, include_head=False), cluster
    )
    helix = simulate(
        build_helix_filo(
            p, m, costs, fold=1, include_embed=False, include_head=False
        ),
        cluster,
    )
    return [
        {
            "partition": "layer-wise",
            "makespan": layerwise.makespan,
            "mean_bubble": layerwise.mean_bubble_time,
        },
        {
            "partition": "attention-parallel",
            "makespan": helix.makespan,
            "mean_bubble": helix.mean_bubble_time,
        },
    ]
