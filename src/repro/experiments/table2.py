"""Table 2 reproduction: bubble time + activation memory, formula vs simulator.

Runs the three schedules in the paper's abstract unit-time world
(pre : attn : post = 1 : 3 : 2, backward == forward, no communication)
and puts the measured pipeline bubble and peak stash next to the
closed-form expressions.
"""

from __future__ import annotations

from repro.analysis.bubble import (
    bubble_time_1f1b,
    bubble_time_helix,
    bubble_time_zb1p,
)
from repro.cluster.topology import abstract_cluster
from repro.core.filo import build_helix_filo
from repro.costmodel.memory import RecomputeStrategy
from repro.costmodel.timing import unit_layer_times
from repro.experiments.registry import register_experiment
from repro.schedules.costs import UnitCosts
from repro.schedules.one_f_one_b import build_1f1b
from repro.schedules.zb1p import build_zb1p
from repro.sim import simulate

__all__ = ["run"]


@register_experiment(
    "table2",
    description="Bubble time and activation stash: closed-form formulas "
    "vs the simulator (Table 2)",
    smoke=dict(p=2, num_layers=4),
)
def run(p: int = 4, num_layers: int = 8, m: int | None = None) -> list[dict]:
    if m is None:
        m = 2 * p
    lt = unit_layer_times()
    cluster = abstract_cluster(p)
    rows = []

    def row(name, sched, formula, mem_formula):
        r = simulate(sched, cluster)
        rows.append(
            {
                "pipeline": name,
                "bubble_formula": formula,
                "bubble_simulated": r.mean_bubble_time,
                "peak_stash_formula": mem_formula,
                "peak_stash_simulated": max(r.peak_memory_bytes),
                "makespan": r.makespan,
            }
        )

    costs = UnitCosts(num_layers=num_layers)
    row(
        "1F1B",
        build_1f1b(p, m, costs, include_embed=False, include_head=False),
        bubble_time_1f1b(lt, num_layers, p),
        16.0 * p * num_layers / p,  # stage 0: p outstanding micro batches
    )
    row(
        "ZB1P",
        build_zb1p(p, m, costs, include_embed=False, include_head=False),
        bubble_time_zb1p(lt, num_layers, p),
        16.0 * num_layers,
    )
    helix_costs = UnitCosts(
        num_layers=num_layers, recompute=RecomputeStrategy.WITHOUT_ATTENTION
    )
    row(
        "HelixPipe",
        build_helix_filo(
            p, m, helix_costs, fold=2, include_embed=False, include_head=False
        ),
        bubble_time_helix(lt, p, fold=2, recompute_pre_post=True),
        4.0 * m * num_layers / p,
    )
    return rows
