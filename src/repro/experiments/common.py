"""Shared driving code for the paper-reproduction experiments.

Workload resolution itself lives in :mod:`repro.workloads` (shared with
the CLI and the tuner); this module keeps the experiment-facing pieces:
the method list of the comparison figures, one-call build+simulate
helpers and the grid iterator that collapses the per-figure nested
``model x gpu x seq_len x pipeline`` loops into a single place.

The protocol encoded by the re-exported :class:`Workload` is Section
5.1: GPT-3 architecture (Table 3), sequence lengths {32k, 64k, 96k,
128k}, one pipeline stage per node, Megatron sequence parallelism of
size 8 inside the node, micro batch size 1, global batch = 2 x pipeline
size, synthesized full-length batches, and the Section 4.6
embedding/head optimisations applied to every method.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim import SimResult, simulate
from repro.workloads import GPU_CLUSTERS, SEQ_LENS, Workload

__all__ = [
    "Workload",
    "METHODS",
    "SEQ_LENS",
    "GPU_CLUSTERS",
    "run_method",
    "run_all_methods",
    "iter_cells",
]

#: Methods compared in Figure 8 / Figure 10.
METHODS: tuple[str, ...] = ("1f1b", "zb1p", "adapipe", "helix")


def run_method(wl: Workload, method: str, **kw) -> SimResult:
    """Build + simulate one method on the workload's cluster."""
    sched = wl.build(method, **kw)
    return simulate(sched, wl.cluster, static_memory_bytes=wl.static_memory())


def run_all_methods(wl: Workload, methods: tuple[str, ...] = METHODS) -> dict[str, SimResult]:
    return {m: run_method(wl, m) for m in methods}


def iter_cells(
    models: tuple[str, ...],
    gpus: tuple[str, ...],
    seq_lens: tuple[int, ...],
    pp_sizes: tuple[int, ...],
    micro_batch: int = 1,
) -> Iterator[tuple[dict, Workload]]:
    """Enumerate evaluation-grid cells as ``(cell_dict, workload)`` pairs.

    The shared loop behind the figure modules' grids: the cell dict
    carries the axis values (``model``/``gpu``/``seq_len``/``pp``) in
    the figures' column naming, ready to seed result rows; axes a
    figure fixes are simply single-element tuples.
    """
    for model in models:
        for gpu in gpus:
            for s in seq_lens:
                for p in pp_sizes:
                    cell = {"model": model, "gpu": gpu, "seq_len": s, "pp": p}
                    yield cell, Workload.paper(model, gpu, p, s, micro_batch=micro_batch)
