"""Shared workload setup for the paper-reproduction experiments.

Encodes the evaluation protocol of Section 5.1: GPT-3 architecture
(Table 3), sequence lengths {32k, 64k, 96k, 128k}, one pipeline stage per
node, Megatron sequence parallelism of size 8 inside the node, micro
batch size 1, global batch = 2 x pipeline size, synthesized full-length
batches, and the Section 4.6 embedding/head optimisations applied to
every method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec, a800_cluster, h20_cluster
from repro.costmodel.memory import RecomputeStrategy, model_state_bytes_per_stage
from repro.model.config import MODEL_PRESETS, ModelConfig
from repro.schedules.costs import PipelineCosts
from repro.schedules.ir import Schedule
from repro.schedules.registry import (
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.sim import SimResult, simulate

__all__ = [
    "Workload",
    "METHODS",
    "SEQ_LENS",
    "GPU_CLUSTERS",
    "run_method",
    "run_all_methods",
]

#: Sequence lengths of the evaluation (Section 5.1).
SEQ_LENS: tuple[int, ...] = (32768, 65536, 98304, 131072)

#: Methods compared in Figure 8 / Figure 10.
METHODS: tuple[str, ...] = ("1f1b", "zb1p", "adapipe", "helix")

#: GPU preset name -> cluster factory, shared by :meth:`Workload.paper`
#: and the ``python -m repro`` CLI so the two resolve identically.
GPU_CLUSTERS = {"H20": h20_cluster, "A800": a800_cluster}


@dataclass
class Workload:
    """One experiment cell: model x cluster x sequence length x pipeline size."""

    model: ModelConfig
    cluster: ClusterSpec
    seq_len: int
    micro_batch: int = 1
    num_micro_batches: int | None = None  # default: 2 x pipeline size

    def __post_init__(self) -> None:
        if self.num_micro_batches is None:
            self.num_micro_batches = 2 * self.cluster.num_stages

    @classmethod
    def paper(
        cls,
        model_name: str,
        gpu: str,
        num_stages: int,
        seq_len: int,
        micro_batch: int = 1,
        num_micro_batches: int | None = None,
    ) -> "Workload":
        cluster = GPU_CLUSTERS[gpu](num_stages)
        return cls(
            model=MODEL_PRESETS[model_name],
            cluster=cluster,
            seq_len=seq_len,
            micro_batch=micro_batch,
            num_micro_batches=num_micro_batches,
        )

    @property
    def p(self) -> int:
        return self.cluster.num_stages

    @property
    def tokens_per_iteration(self) -> float:
        return float(self.num_micro_batches) * self.micro_batch * self.seq_len

    def costs(self, recompute: RecomputeStrategy, **kw) -> PipelineCosts:
        return PipelineCosts(
            model=self.model,
            cluster=self.cluster,
            micro_batch=self.micro_batch,
            seq_len=self.seq_len,
            recompute=recompute,
            **kw,
        )

    def static_memory(self) -> float:
        return model_state_bytes_per_stage(
            self.model, self.p, sp=self.cluster.sequence_parallel_size
        )

    def build(self, method: str, **kw) -> Schedule:
        """Build one method's schedule under the paper's settings.

        ``method`` is resolved through the schedule registry
        (:mod:`repro.schedules.registry`); the spec supplies the
        recomputation strategy it is designed around (baselines run
        without recomputation, Section 5.1; HelixPipe with
        recomputation-without-attention) and any workload-derived
        options it needs (AdaPipe plans under the GPU memory cap).
        Pass ``recompute=...`` or any spec option to override.
        """
        try:
            spec = get_schedule(method)
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; registered: {available_schedules()}"
            ) from None
        recompute = kw.pop("recompute", spec.default_recompute)
        opts = dict(kw)
        for name, value in workload_option_defaults(spec, self).items():
            opts.setdefault(name, value)
        return spec.build(
            (self.p, self.num_micro_batches), self.costs(recompute), **opts
        )


def run_method(wl: Workload, method: str, **kw) -> SimResult:
    """Build + simulate one method on the workload's cluster."""
    sched = wl.build(method, **kw)
    return simulate(sched, wl.cluster, static_memory_bytes=wl.static_memory())


def run_all_methods(wl: Workload, methods: tuple[str, ...] = METHODS) -> dict[str, SimResult]:
    return {m: run_method(wl, m) for m in methods}
