"""Figure 11: recomputation-without-attention ablation, 3B model, 4 stages.

HelixPipe with and without the recompute strategy on both clusters: the
per-stage memory footprint and the normalized throughput.  The paper's
findings to reproduce: recompute costs up to ~20% throughput at 32k,
shrinking towards zero by 96k-128k, while cutting the activation
footprint ~4x (Section 4.5 / 5.5).
"""

from __future__ import annotations

from repro.experiments.common import SEQ_LENS, iter_cells, run_method
from repro.experiments.registry import register_experiment

__all__ = ["run"]

_GIB = float(1 << 30)


@register_experiment(
    "fig11_recompute",
    description="HelixPipe recomputation-without-attention ablation: "
    "throughput cost vs memory cut (Fig. 11)",
    smoke=dict(gpus=("H20",), p=2, seq_lens=(32768,)),
)
def run(
    model_name: str = "3B",
    gpus: tuple[str, ...] = ("H20", "A800"),
    p: int = 4,
    seq_lens: tuple[int, ...] = SEQ_LENS,
) -> list[dict]:
    """One row per (gpu, seq_len) comparing the two variants."""
    rows = []
    for cell, wl in iter_cells((model_name,), gpus, seq_lens, (p,)):
        with_rc = run_method(wl, "helix")
        without = run_method(wl, "helix-no-recompute")
        tput_rc = with_rc.throughput_tokens_per_s(wl.tokens_per_iteration)
        tput_no = without.throughput_tokens_per_s(wl.tokens_per_iteration)
        row = {
            "gpu": cell["gpu"],
            "seq_len": cell["seq_len"],
            "throughput_with_recompute": tput_rc,
            "throughput_without": tput_no,
            "throughput_ratio": tput_rc / tput_no,
        }
        for stage in range(p):
            row[f"mem_rc_rank{stage}_gib"] = (
                with_rc.peak_memory_bytes[stage] / _GIB
            )
            row[f"mem_norc_rank{stage}_gib"] = (
                without.peak_memory_bytes[stage] / _GIB
            )
        rows.append(row)
    return rows
