"""Per-figure / per-table reproduction experiments (see DESIGN.md index)."""

from repro.experiments import (
    chunked_mlp,
    fig2_fig7_schedules,
    fig3_breakdown,
    fig4_memory_imbalance,
    fig5_partition,
    fig6_overlap,
    fig8_throughput,
    fig9_comm,
    fig10_memory_footprint,
    fig11_recompute,
    table1,
    table2,
)
from repro.experiments.common import METHODS, SEQ_LENS, Workload, run_all_methods, run_method

__all__ = [
    "Workload",
    "METHODS",
    "SEQ_LENS",
    "run_method",
    "run_all_methods",
    "table1",
    "table2",
    "fig2_fig7_schedules",
    "fig3_breakdown",
    "fig4_memory_imbalance",
    "fig5_partition",
    "fig6_overlap",
    "fig8_throughput",
    "fig9_comm",
    "fig10_memory_footprint",
    "fig11_recompute",
    "chunked_mlp",
]
