"""Per-figure / per-table reproduction experiments.

Every module registers itself with the experiment registry
(:mod:`repro.experiments.registry`), so the canonical entry point is

>>> from repro.experiments import run_experiment
>>> run_experiment("fig8_throughput", smoke=True).rows

or ``python -m repro experiment run fig8_throughput`` from the shell.
The per-module ``run()`` functions remain importable as before.
"""

from repro.experiments import (
    chunked_mlp,
    fig2_fig7_schedules,
    fig3_breakdown,
    fig4_memory_imbalance,
    fig5_partition,
    fig6_overlap,
    fig8_throughput,
    fig9_comm,
    fig10_memory_footprint,
    fig11_recompute,
    table1,
    table2,
)
from repro.experiments.common import (
    METHODS,
    SEQ_LENS,
    Workload,
    iter_cells,
    run_all_methods,
    run_method,
)
from repro.experiments.diffing import (
    DiffEntry,
    DiffReport,
    Tolerance,
    diff_files,
    diff_results,
    verify_experiments,
)
from repro.experiments.registry import (
    ExperimentResult,
    ExperimentSpec,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)

__all__ = [
    "DiffEntry",
    "DiffReport",
    "Tolerance",
    "diff_files",
    "diff_results",
    "verify_experiments",
    "Workload",
    "METHODS",
    "SEQ_LENS",
    "run_method",
    "run_all_methods",
    "iter_cells",
    "ExperimentResult",
    "ExperimentSpec",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "table1",
    "table2",
    "fig2_fig7_schedules",
    "fig3_breakdown",
    "fig4_memory_imbalance",
    "fig5_partition",
    "fig6_overlap",
    "fig8_throughput",
    "fig9_comm",
    "fig10_memory_footprint",
    "fig11_recompute",
    "chunked_mlp",
]
