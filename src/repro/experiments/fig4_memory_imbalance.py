"""Figure 4: 1F1B activation memory per stage, 13B model, 8 stages.

Per-GPU fp16 activation footprint under Eq. 2 with sequence parallelism 8
(the paper's cluster layout).  At 128k the first two stages exceed the
80 GB A800 capacity while the later stages sit far below it -- the memory
imbalance motivating HelixPipe.
"""

from __future__ import annotations

from repro.costmodel.memory import stage_activation_bytes_1f1b
from repro.experiments.registry import register_experiment
from repro.model.config import GPT3_13B, ModelConfig

__all__ = ["run", "FIG4_SEQ_LENS"]

FIG4_SEQ_LENS: tuple[int, ...] = (4096, 8192, 16384, 32768, 65536, 131072)
_GIB = float(1 << 30)


@register_experiment(
    "fig4_memory_imbalance",
    description="1F1B per-stage activation footprint: the memory "
    "imbalance motivating HelixPipe (Fig. 4)",
    smoke=dict(seq_lens=(131072,)),
)
def run(
    model: ModelConfig = GPT3_13B,
    p: int = 8,
    sp: int = 8,
    micro_batch: int = 1,
    seq_lens: tuple[int, ...] = FIG4_SEQ_LENS,
    capacity_gib: float = 80.0,
) -> list[dict]:
    """One row per (seq_len, stage) with the Eq. 2 footprint in GiB."""
    rows = []
    for s in seq_lens:
        for stage in range(p):
            gib = (
                stage_activation_bytes_1f1b(
                    micro_batch,
                    s,
                    model.hidden_size,
                    model.num_layers,
                    p,
                    stage,
                    sp=sp,
                )
                / _GIB
            )
            rows.append(
                {
                    "seq_len": s,
                    "stage": stage,
                    "activation_gib": gib,
                    "exceeds_capacity": gib > capacity_gib,
                }
            )
    return rows
