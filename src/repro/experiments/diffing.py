"""Golden-baseline regression harness for experiment artifacts.

The reproduction's evidence is the numbers in its
:class:`~repro.experiments.registry.ExperimentResult` artifacts -- and
nothing else in the test suite notices when a cost-model or schedule
change silently shifts them.  This module closes that loop the way the
tuner's :class:`~repro.tuner.cache.CostCache` closes its own (pinned
fingerprints, loud invalidation):

- :func:`diff_results` is a row-aligned diff engine.  Rows are matched
  by *key columns* (inferred as the non-float columns -- model, gpu,
  seq_len, method... -- or passed explicitly), numeric cells compare
  under absolute + relative tolerances, and every divergence becomes a
  typed :class:`DiffEntry`: per-cell numeric drift, non-finite (NaN or
  infinity) mismatches, non-numeric (reason-string) mismatches,
  added/removed rows and columns, parameter drift, and cost-model
  fingerprint mismatch (a *warning*, not drift: refactors flip the
  fingerprint without moving a single number).

- :class:`DiffReport` aggregates the entries, serialises to JSON and
  renders as an aligned ASCII table (the
  :mod:`repro.analysis.tuner_view` house style), naming each drifted
  cell with its row key, both values and the absolute/relative delta.

- :func:`verify_experiments` runs every registered spec (smoke mode by
  default) against golden artifacts committed under ``tests/golden/``,
  reporting drift per spec; ``update=True`` regenerates the goldens --
  the workflow for *intentional* cost-model changes.

``python -m repro experiment diff A.json B.json`` and
``python -m repro experiment verify --smoke [--update]`` drive the two
halves from the command line.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.report import format_table
from repro.experiments.registry import (
    ExperimentResult,
    _jsonable,
    available_experiments,
    get_experiment,
)

__all__ = [
    "Tolerance",
    "DiffEntry",
    "DiffReport",
    "diff_results",
    "diff_files",
    "infer_key_columns",
    "VerifyOutcome",
    "verify_experiments",
    "format_verify_report",
    "golden_path",
    "DEFAULT_GOLDEN_DIR",
]

#: Where ``repro experiment verify`` looks for committed baselines,
#: relative to the repository root (the CLI's working directory).
DEFAULT_GOLDEN_DIR = os.path.join("tests", "golden")

#: Entry kinds, one per divergence class.  ``fingerprint`` is the only
#: warning kind: the stamp flips on any cost-model *source* change,
#: including refactors that move no number, so it must not fail verify
#: by itself.
KIND_VALUE = "value"
KIND_NON_FINITE = "non-finite"
KIND_NON_NUMERIC = "non-numeric"
KIND_ROW_ADDED = "row-added"
KIND_ROW_REMOVED = "row-removed"
KIND_COLUMN_ADDED = "column-added"
KIND_COLUMN_REMOVED = "column-removed"
KIND_PARAM = "param"
KIND_FINGERPRINT = "fingerprint"

_MISSING = "<missing>"


@dataclass(frozen=True)
class Tolerance:
    """Numeric cell tolerance: ``|cand - base| <= atol + rtol * |base|``.

    The defaults are near-exact: canonical artifacts round floats to 12
    significant digits, so a clean re-run on unchanged code matches
    bit-for-bit; ``rtol=1e-9`` absorbs that rounding, and the tiny
    ``atol`` absorbs absolute libm jitter against an exactly-zero
    baseline, which no relative tolerance can (significant-digit
    rounding never reaches 0, and ``rtol * |0|`` is 0).  Diffing across
    an *intentional* model change wants looser bounds
    (``repro experiment diff --rtol 0.01`` for "within a percent").
    """

    atol: float = 1e-12
    rtol: float = 1e-9

    def __post_init__(self) -> None:
        if self.atol < 0 or self.rtol < 0:
            raise ValueError(
                f"tolerances must be non-negative: atol={self.atol}, "
                f"rtol={self.rtol}"
            )

    def matches(self, baseline: float, candidate: float) -> bool:
        """Whether two finite numeric cells agree under the tolerance."""
        return abs(candidate - baseline) <= self.atol + self.rtol * abs(baseline)


@dataclass(frozen=True)
class DiffEntry:
    """One divergence between a baseline and a candidate artifact.

    ``key`` identifies the row (values of the report's key columns,
    empty for artifact-level entries such as parameter or fingerprint
    drift); ``column`` the cell (``None`` for whole-row entries).
    ``delta``/``rel`` are only set for numeric (``value``) drift:
    candidate minus baseline, and its magnitude relative to the
    baseline.
    """

    kind: str
    key: tuple = ()
    column: str | None = None
    baseline: Any = None
    candidate: Any = None
    delta: float | None = None
    rel: float | None = None

    @property
    def is_warning(self) -> bool:
        return self.kind == KIND_FINGERPRINT


@dataclass
class DiffReport:
    """Machine-readable outcome of one artifact comparison.

    ``entries`` holds every divergence in a deterministic order
    (artifact-level first, then per-row in key order).  ``clean`` means
    no *drift* -- fingerprint warnings alone do not fail a comparison.
    """

    baseline_label: str
    candidate_label: str
    experiment: str
    key_columns: tuple[str, ...]
    tolerance: Tolerance
    rows_compared: int
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def drift(self) -> list[DiffEntry]:
        return [e for e in self.entries if not e.is_warning]

    @property
    def warnings(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.is_warning]

    @property
    def clean(self) -> bool:
        return not self.drift

    def to_json(self, indent: int | None = 2) -> str:
        """Strict standard JSON (non-finite deltas/cells as strings)."""
        payload = {
            "experiment": self.experiment,
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "key_columns": list(self.key_columns),
            "atol": self.tolerance.atol,
            "rtol": self.tolerance.rtol,
            "rows_compared": self.rows_compared,
            "clean": self.clean,
            "entries": [
                {k: _jsonable(v) for k, v in dataclasses.asdict(e).items()}
                for e in self.entries
            ],
        }
        return json.dumps(payload, indent=indent, allow_nan=False)

    def format(self) -> str:
        """Aligned ASCII rendering: header, warnings, one row per entry."""
        lines = [
            f"diff {self.experiment}: {self.baseline_label} "
            f"(baseline) vs {self.candidate_label} (candidate)",
            f"  keys: {', '.join(self.key_columns) or '(row position)'}; "
            f"atol={self.tolerance.atol:g}, rtol={self.tolerance.rtol:g}; "
            f"{self.rows_compared} row(s) compared",
        ]
        for w in self.warnings:
            lines.append(
                "  warning: cost-model fingerprint mismatch "
                f"({_cell(w.baseline)} -> {_cell(w.candidate)}); the "
                "artifacts were computed by different cost-model sources"
            )
        drift = self.drift
        if not drift:
            lines.append("  no drift: every compared cell within tolerance")
            return "\n".join(lines)
        lines.append(
            f"  DRIFT: {len(drift)} divergence(s) beyond tolerance"
        )
        rows = []
        for e in drift:
            rows.append(
                {
                    "kind": e.kind,
                    "row": _render_key(self.key_columns, e.key) or "-",
                    "column": e.column or "-",
                    "baseline": _cell(e.baseline),
                    "candidate": _cell(e.candidate),
                    "delta": "-" if e.delta is None else f"{e.delta:+.6g}",
                    "rel_pct": "-" if e.rel is None else f"{100.0 * e.rel:.4g}",
                }
            )
        lines.append(format_table(rows))
        return "\n".join(lines)


def _cell(value: Any) -> str:
    """Short text form of one cell/row value for the rendered table."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, ".10g")
    if isinstance(value, dict):
        text = ",".join(f"{k}={_cell(v)}" for k, v in value.items())
        return text if len(text) <= 60 else text[:57] + "..."
    text = str(value)
    return text if len(text) <= 60 else text[:57] + "..."


def _render_key(key_columns: tuple[str, ...], key: tuple) -> str:
    """``(1.3B, H20, 32768)`` -> ``"model=1.3B gpu=H20 seq_len=32768"``."""
    if not key:
        return ""
    parts = []
    for i, value in enumerate(key):
        if i < len(key_columns):
            parts.append(f"{key_columns[i]}={value}")
        else:  # occurrence disambiguator for duplicated keys
            parts.append(f"#{value}")
    return " ".join(parts)


def _is_number(value: Any) -> bool:
    """Numeric cell (bool excluded: True/False are categorical)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def infer_key_columns(
    baseline: Sequence[Mapping[str, Any]],
    candidate: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
) -> tuple[str, ...]:
    """Key columns: those whose cells are never floats on either side.

    Categorical columns (method names, presets, integer shapes) identify
    a row; float columns are the measurements the diff compares, and so
    are *boolean* columns -- a bool is a derived binary outcome (fig4's
    ``exceeds_capacity``, fig9's ``overlappable``), and keying on it
    would turn a threshold flip into row-removed/row-added noise
    instead of a per-cell delta.  A column missing from some rows still
    keys (absent cells key as ``None``).  When nothing qualifies -- an
    all-float artifact like a swept-input study -- the *first* column
    keys the rows: experiments emit their independent variable first
    (the x axis), and keying on it keeps one drifted measurement from
    cascading into spurious diffs on neighbouring rows, which
    positional matching over value-sorted rows would produce.  With no
    columns at all, rows align by position.
    """
    keys = []
    for col in columns:
        cells = [row[col] for row in [*baseline, *candidate] if col in row]
        if cells and not any(isinstance(v, (bool, float)) for v in cells):
            keys.append(col)
    if not keys and columns:
        return (columns[0],)
    return tuple(keys)


def _row_maps(
    baseline: Sequence[Mapping[str, Any]],
    candidate: Sequence[Mapping[str, Any]],
    key_columns: tuple[str, ...],
) -> tuple[dict[tuple, dict], dict[tuple, dict]]:
    """Key -> row maps for both sides, disambiguating duplicate keys.

    A base key that occurs more than once on either side gets an
    occurrence index appended for all its rows, so duplicated-key
    artifacts still diff row-for-row instead of collapsing.  Within a
    duplicated group, rows that are *exactly equal* across the two
    sides pair first, and only the leftovers pair in order -- pairing
    by raw (value-sorted) position instead would misattribute one
    changed row's drift to its unchanged neighbours, because the change
    itself re-sorts the group.
    """

    def key_cell(value: Any) -> Any:
        # Float key cells (the x-axis fallback, or an explicit --key on
        # a float column) must not demand bitwise equality: sub-tolerance
        # jitter in the key would turn one row into spurious
        # row-removed + row-added drift.  Match on 6 significant digits
        # -- far coarser than canonical rounding, far finer than any
        # real grid of swept inputs.  NaN keys by its string spelling
        # (nan != nan would make identical rows never match); neither
        # token can collide with a real string cell of the same text
        # unless a column mixes floats and their decimal strings.
        if isinstance(value, float):
            if math.isnan(value):
                return "NaN"
            if math.isfinite(value):
                return format(value, ".6g")
        return value

    def group(rows: Sequence[Mapping[str, Any]]) -> dict[tuple, list[dict]]:
        out: dict[tuple, list[dict]] = {}
        for i, row in enumerate(rows):
            key = (
                tuple(key_cell(row.get(c)) for c in key_columns)
                if key_columns
                else (i,)
            )
            out.setdefault(key, []).append(dict(row))
        return out

    bgroups, cgroups = group(baseline), group(candidate)
    base_map: dict[tuple, dict] = {}
    cand_map: dict[tuple, dict] = {}
    for key in {**bgroups, **cgroups}:
        brows = bgroups.get(key, [])
        crows = cgroups.get(key, [])
        if len(brows) <= 1 and len(crows) <= 1:
            if brows:
                base_map[key] = brows[0]
            if crows:
                cand_map[key] = crows[0]
            continue
        taken = [False] * len(crows)
        pairs: list[tuple[dict | None, dict | None]] = []
        spare_b: list[dict] = []
        for brow in brows:
            for j, crow in enumerate(crows):
                if not taken[j] and crow == brow:
                    taken[j] = True
                    pairs.append((brow, crow))
                    break
            else:
                spare_b.append(brow)
        spare_c = [crow for j, crow in enumerate(crows) if not taken[j]]
        for i in range(max(len(spare_b), len(spare_c))):
            pairs.append(
                (
                    spare_b[i] if i < len(spare_b) else None,
                    spare_c[i] if i < len(spare_c) else None,
                )
            )
        for n, (brow, crow) in enumerate(pairs):
            indexed = key + (n,)
            if brow is not None:
                base_map[indexed] = brow
            if crow is not None:
                cand_map[indexed] = crow
    return base_map, cand_map


def _param_entries(
    base_params: Mapping[str, Any], cand_params: Mapping[str, Any]
) -> list[DiffEntry]:
    """Param-drift entries between two parameter dicts (JSON-normalised,
    so tuples/lists and non-finite spellings compare equal)."""
    base = {k: _jsonable(v) for k, v in base_params.items()}
    cand = {k: _jsonable(v) for k, v in cand_params.items()}
    return [
        DiffEntry(KIND_PARAM, (), name, base.get(name, _MISSING),
                  cand.get(name, _MISSING))
        for name in sorted({*base, *cand})
        if base.get(name, _MISSING) != cand.get(name, _MISSING)
    ]


def _compare_cell(
    key: tuple,
    column: str,
    base: Any,
    cand: Any,
    tolerance: Tolerance,
    entries: list[DiffEntry],
) -> None:
    """Append at most one typed entry for a cell pair."""
    if base is _MISSING or cand is _MISSING:
        if base is not cand:
            entries.append(
                DiffEntry(KIND_NON_NUMERIC, key, column, base, cand)
            )
        return
    if _is_number(base) and _is_number(cand):
        b, c = float(base), float(cand)
        if math.isnan(b) and math.isnan(c):
            return
        if not (math.isfinite(b) and math.isfinite(c)):
            if b == c:  # same signed infinity
                return
            entries.append(
                DiffEntry(KIND_NON_FINITE, key, column, base, cand)
            )
            return
        if tolerance.matches(b, c):
            return
        delta = c - b
        rel = abs(delta) / abs(b) if b != 0.0 else math.inf
        entries.append(
            DiffEntry(KIND_VALUE, key, column, base, cand, delta, rel)
        )
        return
    if base != cand or type(base) is not type(cand):
        entries.append(DiffEntry(KIND_NON_NUMERIC, key, column, base, cand))


def diff_results(
    baseline: ExperimentResult,
    candidate: ExperimentResult,
    *,
    tolerance: Tolerance | None = None,
    key_columns: Sequence[str] | None = None,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> DiffReport:
    """Row-aligned comparison of two artifacts of the same experiment.

    Both sides are canonicalised first
    (:meth:`ExperimentResult.canonical_rows`), so production order and
    float noise below 12 significant digits never register.  Comparing
    artifacts of *different* experiments is a usage error and raises.
    """
    if baseline.name != candidate.name:
        raise ValueError(
            f"cannot diff different experiments: {baseline.name!r} "
            f"(baseline) vs {candidate.name!r} (candidate)"
        )
    tolerance = Tolerance() if tolerance is None else tolerance
    base_rows = baseline.canonical_rows()
    cand_rows = candidate.canonical_rows()
    base_cols = list(baseline.columns)
    cand_cols = list(candidate.columns)
    shared_cols = [c for c in base_cols if c in set(cand_cols)]
    if key_columns is None:
        keys = infer_key_columns(base_rows, cand_rows, shared_cols)
    else:
        keys = tuple(key_columns)
        unknown = sorted(set(keys) - set(shared_cols))
        if unknown:
            raise ValueError(
                f"key column(s) {unknown} not shared by both artifacts; "
                f"shared columns: {shared_cols}"
            )

    entries: list[DiffEntry] = []
    if baseline.costmodel != candidate.costmodel:
        entries.append(
            DiffEntry(
                KIND_FINGERPRINT,
                baseline=baseline.costmodel or "<unstamped>",
                candidate=candidate.costmodel or "<unstamped>",
            )
        )
    entries.extend(_param_entries(baseline.params, candidate.params))
    base_col_set, cand_col_set = set(base_cols), set(cand_cols)
    for col in cand_cols:
        if col not in base_col_set:
            entries.append(DiffEntry(KIND_COLUMN_ADDED, (), col))
    for col in base_cols:
        if col not in cand_col_set:
            entries.append(DiffEntry(KIND_COLUMN_REMOVED, (), col))

    base_map, cand_map = _row_maps(base_rows, cand_rows, keys)
    # Compare every shared column, keys included: non-float key cells
    # matched exactly (a no-op to re-check), but float keys match on a
    # coarse 6-significant-digit quantum, and drift between that
    # quantum and the tolerance must still surface as a value entry.
    value_cols = shared_cols
    compared = 0
    for key in base_map:
        if key not in cand_map:
            entries.append(
                DiffEntry(KIND_ROW_REMOVED, key, None, base_map[key], None)
            )
            continue
        compared += 1
        brow, crow = base_map[key], cand_map[key]
        for col in value_cols:
            _compare_cell(
                key,
                col,
                brow.get(col, _MISSING),
                crow.get(col, _MISSING),
                tolerance,
                entries,
            )
    for key in cand_map:
        if key not in base_map:
            entries.append(
                DiffEntry(KIND_ROW_ADDED, key, None, None, cand_map[key])
            )

    return DiffReport(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        experiment=baseline.name,
        key_columns=keys,
        tolerance=tolerance,
        rows_compared=compared,
        entries=entries,
    )


def diff_files(
    baseline_path: str | os.PathLike,
    candidate_path: str | os.PathLike,
    *,
    tolerance: Tolerance | None = None,
    key_columns: Sequence[str] | None = None,
) -> DiffReport:
    """Diff two serialised JSON artifacts (labels: the file paths)."""
    return diff_results(
        ExperimentResult.from_file(baseline_path),
        ExperimentResult.from_file(candidate_path),
        tolerance=tolerance,
        key_columns=key_columns,
        baseline_label=os.fspath(baseline_path),
        candidate_label=os.fspath(candidate_path),
    )


# -- golden-baseline verification --------------------------------------------


def golden_path(name: str, golden_dir: str | os.PathLike) -> str:
    """Path of one experiment's committed golden artifact."""
    return os.path.join(os.fspath(golden_dir), f"{name}.json")


@dataclass
class VerifyOutcome:
    """One experiment's verification result.

    ``status`` is one of ``ok`` (matches the golden), ``drift``
    (diverges; ``report`` holds the cell-level details), ``missing``
    (no golden committed yet), ``updated``/``unchanged`` (update mode:
    the golden was rewritten / already byte-identical).
    """

    name: str
    status: str
    path: str
    report: DiffReport | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "updated", "unchanged")


def verify_experiments(
    golden_dir: str | os.PathLike = DEFAULT_GOLDEN_DIR,
    names: Sequence[str] | None = None,
    *,
    smoke: bool = True,
    update: bool = False,
    tolerance: Tolerance | None = None,
) -> list[VerifyOutcome]:
    """Run registered experiments against their golden baselines.

    Every spec in ``names`` (default: all registered) runs with
    ``smoke`` mode and diffs its canonical artifact against
    ``golden_dir/<name>.json``.  With ``update=True`` the goldens are
    (re)written instead of compared -- the explicit, reviewed workflow
    for intentional cost-model changes.  Outcomes come back in run
    order; drift carries the full :class:`DiffReport`.
    """
    resolved = list(names) if names else available_experiments()
    unknown = sorted(set(resolved) - set(available_experiments()))
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; "
            f"registered: {available_experiments()}"
        )
    outcomes: list[VerifyOutcome] = []
    for name in resolved:
        spec = get_experiment(name)
        path = golden_path(name, golden_dir)
        candidate_label = f"run({name}, smoke={smoke})"
        if update:
            payload = spec.run(smoke=smoke).to_json() + "\n"
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as fh:
                    if fh.read() == payload:
                        outcomes.append(VerifyOutcome(name, "unchanged", path))
                        continue
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
            outcomes.append(VerifyOutcome(name, "updated", path))
            continue
        if not os.path.exists(path):
            outcomes.append(VerifyOutcome(name, "missing", path))
            continue
        golden = ExperimentResult.from_file(path)
        # Compare the resolved parameters *before* running: a mode
        # mismatch (full-protocol run vs smoke goldens) must fail in
        # milliseconds with param-drift entries, not after an
        # hours-long run whose every row then diverges anyway.
        param_report = _params_only_report(
            golden,
            spec.resolve_params(smoke=smoke),
            tolerance or Tolerance(),
            path,
            candidate_label,
        )
        if param_report is not None:
            outcomes.append(VerifyOutcome(name, "drift", path, param_report))
            continue
        report = diff_results(
            golden,
            spec.run(smoke=smoke),
            tolerance=tolerance,
            baseline_label=path,
            candidate_label=candidate_label,
        )
        outcomes.append(
            VerifyOutcome(name, "ok" if report.clean else "drift", path, report)
        )
    return outcomes


def _params_only_report(
    golden: ExperimentResult,
    resolved_params: Mapping[str, Any],
    tolerance: Tolerance,
    baseline_label: str,
    candidate_label: str,
) -> DiffReport | None:
    """A param-drift-only report, or ``None`` when the params agree."""
    entries = _param_entries(golden.params, resolved_params)
    if not entries:
        return None
    return DiffReport(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        experiment=golden.name,
        key_columns=(),
        tolerance=tolerance,
        rows_compared=0,
        entries=entries,
    )


def format_verify_report(
    outcomes: Iterable[VerifyOutcome], golden_dir: str | os.PathLike
) -> str:
    """Human-readable verify summary plus full diffs for each failure."""
    outcomes = list(outcomes)
    failed = [o for o in outcomes if not o.ok]
    lines = [
        f"golden verify: {len(outcomes) - len(failed)}/{len(outcomes)} "
        f"experiment(s) clean against {os.fspath(golden_dir)}"
    ]
    for o in outcomes:
        detail = ""
        if o.status == "drift" and o.report is not None:
            detail = f" ({len(o.report.drift)} divergence(s))"
        elif o.status == "missing":
            detail = " (no golden committed; run verify --update)"
        status = o.status if o.ok else o.status.upper()
        lines.append(f"  {o.name:<28} {status}{detail}")
    for o in outcomes:
        if o.status == "drift" and o.report is not None:
            lines.append("")
            lines.append(f"== {o.name} ==")
            lines.append(o.report.format())
    return "\n".join(lines)
