"""GPU server (node) specifications.

A node groups ``gpus_per_node`` identical GPUs behind NVLink and exposes a
number of InfiniBand host channel adapters (HCAs) for inter-node traffic.
The paper maps one pipeline stage to one node, runs Megatron sequence
parallelism of size 8 inside the node over NVLink, and routes pipeline
point-to-point traffic over the HCAs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import A800, H20, GPUSpec

__all__ = ["NodeSpec", "H20_NODE", "A800_NODE"]

_GIGA = 1.0e9


@dataclass(frozen=True)
class NodeSpec:
    """A GPU server: identical GPUs plus InfiniBand uplinks.

    Parameters
    ----------
    gpu:
        Spec of each GPU in the node.
    gpus_per_node:
        Number of GPUs (the paper uses 8 everywhere).
    num_hcas:
        Number of InfiniBand host channel adapters.
    hca_gbit_per_s:
        Per-HCA line rate in Gbit/s (e.g. NDR = 200, HDR = 100).
    ib_latency_s:
        One-way small-message latency for inter-node p2p.
    """

    gpu: GPUSpec
    gpus_per_node: int = 8
    num_hcas: int = 4
    hca_gbit_per_s: float = 200.0
    ib_latency_s: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.num_hcas <= 0:
            raise ValueError("num_hcas must be positive")
        if self.hca_gbit_per_s <= 0:
            raise ValueError("hca_gbit_per_s must be positive")

    @property
    def node_ib_bytes_per_s(self) -> float:
        """Aggregate inter-node bandwidth of the whole node in bytes/s."""
        return self.num_hcas * self.hca_gbit_per_s * _GIGA / 8.0

    @property
    def per_gpu_ib_bytes_per_s(self) -> float:
        """Fair-share inter-node bandwidth per GPU in bytes/s.

        When all ``gpus_per_node`` ranks of a sequence-parallel group
        exchange pipeline activations with their peers simultaneously,
        each enjoys roughly ``1 / gpus_per_node`` of the node uplink.
        """
        return self.node_ib_bytes_per_s / self.gpus_per_node

    @property
    def total_hbm_bytes(self) -> float:
        """Sum of device memory over the node in bytes."""
        return self.gpus_per_node * self.gpu.hbm_bytes


#: Paper testbed 1: 8 x H20 per node, 4 x NDR-200 InfiniBand.
H20_NODE = NodeSpec(gpu=H20, gpus_per_node=8, num_hcas=4, hca_gbit_per_s=200.0)

#: Paper testbed 2: 8 x A800 per node, 4 x HDR-100 InfiniBand.
A800_NODE = NodeSpec(gpu=A800, gpus_per_node=8, num_hcas=4, hca_gbit_per_s=100.0)
