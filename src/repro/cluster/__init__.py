"""Simulated hardware catalog: GPUs, nodes and cluster topologies."""

from repro.cluster.gpu import A100, A800, GPU_PRESETS, H20, H100, GPUSpec
from repro.cluster.node import A800_NODE, H20_NODE, NodeSpec
from repro.cluster.topology import (
    ClusterSpec,
    a800_cluster,
    abstract_cluster,
    h20_cluster,
)

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "ClusterSpec",
    "H20",
    "A800",
    "A100",
    "H100",
    "GPU_PRESETS",
    "H20_NODE",
    "A800_NODE",
    "h20_cluster",
    "a800_cluster",
    "abstract_cluster",
]
