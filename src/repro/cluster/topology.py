"""Cluster topology: nodes, pipeline-stage mapping and link model.

The paper's deployments map one pipeline stage per node and connect the
nodes with a fat InfiniBand fabric; pipeline p2p therefore crosses node
boundaries while sequence parallelism stays inside a node.  ``ClusterSpec``
captures that arrangement, and :meth:`ClusterSpec.p2p_time` gives the
alpha-beta cost of a pipeline transfer between two stages.

A :class:`networkx.DiGraph` view is exposed for tooling (visualisation,
path queries); the simulator itself uses the direct accessors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.cluster.node import A800_NODE, H20_NODE, NodeSpec

__all__ = ["ClusterSpec", "h20_cluster", "a800_cluster", "abstract_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of GPU nodes, one pipeline stage per node.

    Parameters
    ----------
    node:
        Per-node hardware description.
    num_nodes:
        Number of nodes == number of pipeline stages in the paper setup.
    name:
        Optional human-readable name.
    """

    node: NodeSpec
    num_nodes: int
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @property
    def num_stages(self) -> int:
        """Pipeline size ``p`` (one stage per node)."""
        return self.num_nodes

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    @property
    def sequence_parallel_size(self) -> int:
        """Megatron sequence-parallel size inside a node (all its GPUs)."""
        return self.node.gpus_per_node

    def p2p_bytes_per_s(self) -> float:
        """Per-GPU-pair bandwidth for pipeline p2p across nodes."""
        return self.node.per_gpu_ib_bytes_per_s

    def p2p_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` between one GPU pair across nodes.

        Alpha-beta model: one-way latency plus serialisation at the
        fair-share per-GPU bandwidth.  ``nbytes`` is the *per-GPU shard*
        volume (sequence-parallel ranks transfer their own shards in
        parallel to their peer ranks).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.node.ib_latency_s + nbytes / self.p2p_bytes_per_s()

    def intra_node_collective_time(self, nbytes: float, kind: str = "all_gather") -> float:
        """Seconds for a ring collective over NVLink inside one node.

        ``nbytes`` is the full (unsharded) payload.  Ring all-gather /
        reduce-scatter move ``(t - 1) / t * nbytes`` through each link.
        """
        t = self.node.gpus_per_node
        if t == 1:
            return 0.0
        if kind not in ("all_gather", "reduce_scatter", "all_reduce"):
            raise ValueError(f"unknown collective kind: {kind!r}")
        bw = self.node.gpu.nvlink_bw_gbps * 1.0e9
        steps = nbytes * (t - 1) / t / bw
        if kind == "all_reduce":
            steps *= 2.0  # reduce-scatter followed by all-gather
        return steps

    def as_graph(self) -> "nx.DiGraph":
        """Directed graph of stages with link-bandwidth edge attributes."""
        g = nx.DiGraph(name=self.name or f"{self.node.gpu.name}x{self.num_nodes}")
        for i in range(self.num_nodes):
            g.add_node(i, gpu=self.node.gpu.name, hbm_gib=self.node.gpu.hbm_gib)
        bw = self.p2p_bytes_per_s()
        for i in range(self.num_nodes):
            for j in range(self.num_nodes):
                if i != j:
                    g.add_edge(i, j, bytes_per_s=bw, latency_s=self.node.ib_latency_s)
        return g


def abstract_cluster(
    num_stages: int, bytes_per_s: float = 1.0, latency_s: float = 0.0
) -> ClusterSpec:
    """A unit-world cluster for schedule-figure reproductions.

    Links move ``bytes_per_s`` abstract bytes per abstract second with
    ``latency_s`` latency, so pairing it with
    :class:`repro.schedules.costs.UnitCosts` makes every boundary transfer
    take exactly ``comm_time`` units.
    """
    from repro.cluster.gpu import H20

    node = NodeSpec(
        gpu=H20,
        gpus_per_node=1,
        num_hcas=1,
        hca_gbit_per_s=bytes_per_s * 8.0e-9,
        ib_latency_s=latency_s,
    )
    return ClusterSpec(node=node, num_nodes=num_stages, name=f"unit-x{num_stages}")


def h20_cluster(num_nodes: int) -> ClusterSpec:
    """The paper's H20 testbed with ``num_nodes`` nodes (stages)."""
    return ClusterSpec(node=H20_NODE, num_nodes=num_nodes, name=f"H20x{num_nodes}")


def a800_cluster(num_nodes: int) -> ClusterSpec:
    """The paper's A800 testbed with ``num_nodes`` nodes (stages)."""
    return ClusterSpec(node=A800_NODE, num_nodes=num_nodes, name=f"A800x{num_nodes}")
