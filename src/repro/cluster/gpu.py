"""GPU device specifications.

The simulator needs only a handful of numbers per accelerator: dense
half-precision throughput, HBM capacity and bandwidth, and intra-node
(NVLink) interconnect bandwidth.  The presets below are taken from public
spec sheets for the two GPU types used in the paper's evaluation (H20 and
A800) plus two common references (A100, H100) used in tests and examples.

The paper's qualitative claims hinge on two ratios that these presets
preserve:

* A800 has roughly **2x the dense compute** of H20 (312 vs 148 TFLOPS),
  which shrinks attention time and with it HelixPipe's advantage.
* The A800 cluster has **half the inter-node bandwidth** of the H20
  cluster (4xHDR-100 vs 4xNDR-200 InfiniBand), which is what makes the
  two-fold FILO communication non-overlappable at 32k on A800 (paper
  Fig. 9 / Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "H20", "A800", "A100", "H100", "GPU_PRESETS"]

_TERA = 1.0e12
_GIGA = 1.0e9
_GIB = float(1 << 30)


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single accelerator.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"H20"``).
    fp16_tflops:
        Dense half-precision matrix throughput in TFLOPS (no sparsity).
    hbm_gib:
        Device memory capacity in GiB.
    hbm_bw_gbps:
        Device memory bandwidth in GB/s (decimal giga).
    nvlink_bw_gbps:
        Aggregate per-GPU NVLink bandwidth in GB/s, used for intra-node
        collectives (sequence parallelism).
    mm_efficiency:
        Achievable fraction of peak for large GEMMs.
    attn_efficiency:
        Achievable fraction of peak for fused (flash) attention kernels.
    """

    name: str
    fp16_tflops: float
    hbm_gib: float
    hbm_bw_gbps: float
    nvlink_bw_gbps: float
    mm_efficiency: float = 0.55
    attn_efficiency: float = 0.50

    def __post_init__(self) -> None:
        if self.fp16_tflops <= 0:
            raise ValueError(f"fp16_tflops must be positive, got {self.fp16_tflops}")
        if self.hbm_gib <= 0:
            raise ValueError(f"hbm_gib must be positive, got {self.hbm_gib}")
        if not (0.0 < self.mm_efficiency <= 1.0):
            raise ValueError("mm_efficiency must be in (0, 1]")
        if not (0.0 < self.attn_efficiency <= 1.0):
            raise ValueError("attn_efficiency must be in (0, 1]")

    @property
    def matmul_flops_per_s(self) -> float:
        """Sustained GEMM throughput in FLOP/s."""
        return self.fp16_tflops * _TERA * self.mm_efficiency

    @property
    def attn_flops_per_s(self) -> float:
        """Sustained fused-attention throughput in FLOP/s."""
        return self.fp16_tflops * _TERA * self.attn_efficiency

    @property
    def hbm_bytes(self) -> float:
        """Device memory capacity in bytes."""
        return self.hbm_gib * _GIB

    @property
    def hbm_bytes_per_s(self) -> float:
        """Device memory bandwidth in bytes/s."""
        return self.hbm_bw_gbps * _GIGA

    def gemm_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` of dense GEMM work."""
        return flops / self.matmul_flops_per_s

    def attn_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` of fused attention work."""
        return flops / self.attn_flops_per_s

    def membound_time(self, nbytes: float) -> float:
        """Seconds for a memory-bandwidth-bound op touching ``nbytes``."""
        return nbytes / self.hbm_bytes_per_s


#: NVIDIA H20 (Hopper, export variant): low compute, high bandwidth.
H20 = GPUSpec(
    name="H20",
    fp16_tflops=148.0,
    hbm_gib=96.0,
    hbm_bw_gbps=4000.0,
    nvlink_bw_gbps=900.0,
)

#: NVIDIA A800 (Ampere, export variant of A100): 2x H20 compute.
A800 = GPUSpec(
    name="A800",
    fp16_tflops=312.0,
    hbm_gib=80.0,
    hbm_bw_gbps=2039.0,
    nvlink_bw_gbps=400.0,
)

#: NVIDIA A100 80GB SXM.
A100 = GPUSpec(
    name="A100",
    fp16_tflops=312.0,
    hbm_gib=80.0,
    hbm_bw_gbps=2039.0,
    nvlink_bw_gbps=600.0,
)

#: NVIDIA H100 SXM.
H100 = GPUSpec(
    name="H100",
    fp16_tflops=989.0,
    hbm_gib=80.0,
    hbm_bw_gbps=3350.0,
    nvlink_bw_gbps=900.0,
)

GPU_PRESETS: dict[str, GPUSpec] = {g.name: g for g in (H20, A800, A100, H100)}
