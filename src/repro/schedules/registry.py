"""Unified schedule registry.

Every pipeline schedule the repository can build is described by a
:class:`ScheduleSpec` -- its name, option schema, micro-batch
divisibility constraint and default recomputation strategy -- and built
through one uniform entry point:

>>> from repro.schedules.registry import get_schedule
>>> spec = get_schedule("helix")
>>> sched = spec.build((4, 8), costs)          # (num_stages, micro_batches)

``workload_like`` is anything that can say how many stages and micro
batches to schedule: a ``(p, m)`` tuple, an
:class:`~repro.workloads.Workload`, or any object exposing
``num_stages``/``p`` and ``num_micro_batches``.  Builders register
themselves with the :func:`register_schedule` decorator; the registry
imports the built-in builder modules lazily on first lookup, so import
order never matters.

Every registry build runs the full verification pass pipeline
(:mod:`repro.schedules.passes`); builder failures (infeasible plans,
divisibility violations, unsolvable MILPs) surface uniformly as
:class:`ScheduleBuildError` with the reason preserved, which is what the
auto-tuner reports as a candidate's infeasibility.
"""

from __future__ import annotations

import dataclasses
import importlib
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.costs import CostProvider
from repro.schedules.ir import Schedule
from repro.schedules.passes import run_passes

__all__ = [
    "ScheduleBuildError",
    "ScheduleSpec",
    "register_schedule",
    "get_schedule",
    "available_schedules",
    "build_schedule",
    "as_shape",
    "workload_option_defaults",
    "stable_value_key",
    "workload_cache_key",
]


class ScheduleBuildError(ValueError):
    """A registered builder could not produce a schedule.

    Carries the schedule name and a human-readable ``reason`` so sweeps
    (the auto-tuner, the planner example) can report *why* a candidate
    is infeasible instead of crashing.
    """

    def __init__(self, schedule: str, reason: str) -> None:
        self.schedule = schedule
        self.reason = reason
        super().__init__(f"{schedule}: {reason}")


def as_shape(workload_like: Any) -> tuple[int, int]:
    """Coerce ``workload_like`` to a ``(num_stages, num_micro_batches)`` pair."""
    if isinstance(workload_like, tuple):
        if len(workload_like) != 2:
            raise TypeError(
                f"expected a (num_stages, num_micro_batches) pair, "
                f"got {workload_like!r}"
            )
        p, m = workload_like
        return int(p), int(m)
    for attr in ("num_stages", "p"):
        p = getattr(workload_like, attr, None)
        if p is not None:
            break
    m = getattr(workload_like, "num_micro_batches", None)
    if p is None or m is None:
        raise TypeError(
            "workload_like must be a (p, m) tuple or expose "
            f"num_stages/p and num_micro_batches; got {type(workload_like).__name__}"
        )
    return int(p), int(m)


def _divisor_one(num_stages: int, options: Mapping[str, Any]) -> int:
    return 1


@dataclass(frozen=True)
class ScheduleSpec:
    """Description of one registered schedule.

    Parameters
    ----------
    name:
        Registry key (also the default reporting name).
    builder:
        ``builder(num_stages, num_micro_batches, costs, **options)``.
    description:
        One-line summary for listings.
    family:
        Coarse grouping ("layerwise", "interleaved", "helix").
    options:
        Option schema: every overridable keyword with its default.
        Unknown option names are rejected at build time.
    default_recompute:
        The :class:`RecomputeStrategy` the schedule is designed around;
        workload-level helpers use it to derive the cost provider when
        the caller does not pick one explicitly.
    recompute_choices:
        Strategies the auto-tuner may sweep for this schedule.  Defaults
        to all of them; schedules that adapt recomputation internally
        (AdaPipe) or model only some strategies faithfully (HelixPipe
        never recomputes attention) restrict the sweep here.
    divisor_fn:
        ``divisor_fn(num_stages, options) -> int``: the micro-batch
        granularity the schedule is designed to run at (HelixPipe's loop
        size ``fold * p``, one round of ``p`` for layer-wise pipelines).
        Planning sweeps round candidate micro-batch counts down to a
        multiple of this; builders with a hard requirement additionally
        raise on violation.
    workload_options:
        Options a workload can supply from its own context when the
        caller leaves them unset (e.g. ``memory_cap_bytes`` from the
        cluster's HBM size for AdaPipe).
    tune_options:
        Option values the auto-tuner sweeps as a third grid axis, keyed
        by option name (which must appear in ``options``).  Each value
        is either a sequence of candidate values or a callable
        ``num_stages -> sequence`` for grids that depend on the pipeline
        size (ZB1P's ``max_outstanding``).  Resolved through
        :meth:`option_grid`.
    tunable:
        Whether :func:`repro.tuner.autotune` includes this spec in its
        default sweep.  Pure aliases of another (spec, strategy) pair
        opt out to avoid duplicate candidates.
    """

    name: str
    builder: Callable[..., Schedule]
    description: str = ""
    family: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)
    default_recompute: RecomputeStrategy = RecomputeStrategy.NONE
    recompute_choices: tuple[RecomputeStrategy, ...] = tuple(RecomputeStrategy)
    divisor_fn: Callable[[int, Mapping[str, Any]], int] = _divisor_one
    workload_options: tuple[str, ...] = ()
    tune_options: Mapping[str, Any] = field(default_factory=dict)
    tunable: bool = True

    def __post_init__(self) -> None:
        unknown = sorted(set(self.tune_options) - set(self.options))
        if unknown:
            raise ValueError(
                f"{self.name}: tune_options {unknown} not in the option "
                f"schema {sorted(self.options)}"
            )

    def option_grid(self, num_stages: int) -> dict[str, tuple[Any, ...]]:
        """Tunable option values for a pipeline of ``num_stages`` stages.

        Callable grid entries are resolved against ``num_stages``; the
        result maps option name -> tuple of candidate values (always
        containing the schema default so the sweep includes the
        spec's own configuration).
        """
        out: dict[str, tuple[Any, ...]] = {}
        for name, values in self.tune_options.items():
            resolved = tuple(values(num_stages) if callable(values) else values)
            default = self.options[name]
            if default not in resolved:
                resolved = (default,) + resolved
            out[name] = resolved
        return out

    # -- constraints ---------------------------------------------------------

    def micro_batch_divisor(self, num_stages: int, **options: Any) -> int:
        """Micro-batch granularity for ``num_stages`` under ``options``."""
        merged = {**self.options, **options}
        return max(1, self.divisor_fn(num_stages, merged))

    def round_micro_batches(self, m: int, num_stages: int, **options: Any) -> int:
        """Largest feasible micro-batch count ``<= m`` (0 if none)."""
        d = self.micro_batch_divisor(num_stages, **options)
        return (int(m) // d) * d

    # -- building ------------------------------------------------------------

    def build(
        self,
        workload_like: Any,
        costs: CostProvider,
        *,
        verify: bool = True,
        **options: Any,
    ) -> Schedule:
        """Build the schedule for a workload shape with a cost provider.

        Unknown options are rejected against the spec's schema, builder
        errors are re-raised as :class:`ScheduleBuildError`, and the
        result is run through the verification pass pipeline unless
        ``verify=False``.
        """
        p, m = as_shape(workload_like)
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            raise ScheduleBuildError(
                self.name,
                f"unknown option(s) {unknown}; schema: {sorted(self.options)}",
            )
        merged = {**self.options, **options}
        try:
            sched = self.builder(p, m, costs, **merged)
        except ScheduleBuildError:
            # Already carries a schedule name and reason (a nested
            # registry build, or a builder raising it directly); wrapping
            # again would double the prefix: "name: name: reason".
            raise
        except (ValueError, RuntimeError) as err:
            raise ScheduleBuildError(self.name, str(err)) from err
        if verify:
            run_passes(sched)
        return sched


_REGISTRY: dict[str, ScheduleSpec] = {}

#: Modules whose import registers the built-in schedules.  Imported
#: lazily on first lookup so that ``repro.schedules.registry`` has no
#: import-time dependency on the builders (which themselves import this
#: module to self-register).
_BUILTIN_MODULES = (
    "repro.schedules.gpipe",
    "repro.schedules.one_f_one_b",
    "repro.schedules.interleaved",
    "repro.schedules.zb1p",
    "repro.schedules.zb_milp",
    "repro.schedules.adapipe",
    "repro.core.filo",
)
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    for mod in _BUILTIN_MODULES:
        importlib.import_module(mod)
    # Set only after every import succeeded: a failed builder module
    # must fail again (loudly) on the next lookup, not leave a silently
    # partial registry.  Re-imports of the successful modules are no-ops.
    _builtin_loaded = True


def register_schedule(
    name: str,
    *,
    description: str = "",
    family: str = "",
    options: Mapping[str, Any] | None = None,
    default_recompute: RecomputeStrategy = RecomputeStrategy.NONE,
    recompute_choices: tuple[RecomputeStrategy, ...] | None = None,
    divisor: Callable[[int, Mapping[str, Any]], int] | None = None,
    workload_options: tuple[str, ...] = (),
    tune_options: Mapping[str, Any] | None = None,
    tunable: bool = True,
) -> Callable[[Callable[..., Schedule]], Callable[..., Schedule]]:
    """Decorator registering a builder under ``name``.

    The decorated function keeps its original signature and is returned
    unchanged, so a builder can be registered several times with
    different bound options (HelixPipe's fold-1 / fold-2 variants).
    """

    def deco(fn: Callable[..., Schedule]) -> Callable[..., Schedule]:
        if name in _REGISTRY:
            raise ValueError(f"schedule {name!r} already registered")
        _REGISTRY[name] = ScheduleSpec(
            name=name,
            builder=fn,
            description=description,
            family=family,
            options=dict(options or {}),
            default_recompute=default_recompute,
            recompute_choices=(
                tuple(RecomputeStrategy)
                if recompute_choices is None
                else tuple(recompute_choices)
            ),
            divisor_fn=divisor or _divisor_one,
            workload_options=tuple(workload_options),
            tune_options=dict(tune_options or {}),
            tunable=tunable,
        )
        return fn

    return deco


def get_schedule(name: str) -> ScheduleSpec:
    """Look up a registered schedule by name."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r}; registered: {available_schedules()}"
        ) from None


def available_schedules() -> list[str]:
    """Sorted names of every registered schedule."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def build_schedule(
    name: str, workload_like: Any, costs: CostProvider, **options: Any
) -> Schedule:
    """One-shot convenience: ``get_schedule(name).build(...)``."""
    return get_schedule(name).build(workload_like, costs, **options)


def workload_option_defaults(
    spec: ScheduleSpec, workload: Any, memory_cap_bytes: float | None = None
) -> dict[str, Any]:
    """Resolve a spec's ``workload_options`` from a workload's context.

    The single source of truth for how workload-derived option names map
    to workload attributes, shared by :class:`repro.workloads.Workload`
    and the auto-tuner so the two can never diverge.  ``workload`` is
    duck-typed: it needs ``cluster`` (for the HBM cap fallback) and
    ``static_memory()``.
    """
    out: dict[str, Any] = {}
    for name in spec.workload_options:
        if name == "memory_cap_bytes":
            out[name] = (
                memory_cap_bytes
                if memory_cap_bytes is not None
                else workload.cluster.node.gpu.hbm_bytes
            )
        elif name == "static_memory_bytes":
            out[name] = workload.static_memory()
        else:  # pragma: no cover - future option names fail loudly
            raise KeyError(
                f"{spec.name}: no workload resolver for option {name!r}"
            )
    return out


# -- canonical workload identity ---------------------------------------------

_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def stable_value_key(obj: Any) -> Any:
    """A process-stable, hashable, JSON-friendly identity for ``obj``.

    Dataclasses key on their type name plus recursively-keyed field
    values, so two instances with equal fields share a key across
    processes and interpreter restarts.  Objects may opt in explicitly
    with a ``cache_key()`` method.  Anything else falls back to
    ``repr`` -- *except* the default ``object.__repr__``, whose
    ``0x...`` memory address differs per process and would poison a
    shared or persisted cache with keys that never hit; those are
    rejected loudly.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    cache_key = getattr(obj, "cache_key", None)
    if callable(cache_key):
        return stable_value_key(cache_key())
    if isinstance(obj, Enum):
        return (type(obj).__qualname__, obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__qualname__,) + tuple(
            (f.name, stable_value_key(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, (tuple, list)):
        return tuple(stable_value_key(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        # Set repr order is hash-randomised per process; sort the
        # element keys so equal sets share a key across interpreters.
        return ("set",) + tuple(
            sorted((stable_value_key(v) for v in obj), key=repr)
        )
    if isinstance(obj, Mapping):
        # Key the keys too ({1: x} must not alias {"1": x}) and sort by
        # repr so mixed-type keys order deterministically, as the set
        # branch above does.
        return ("map",) + tuple(
            sorted(
                (
                    (stable_value_key(k), stable_value_key(v))
                    for k, v in obj.items()
                ),
                key=repr,
            )
        )
    r = repr(obj)
    if _ADDRESS_REPR.search(r):
        raise TypeError(
            f"cannot derive a stable cache key for {type(obj).__qualname__}: "
            f"its repr embeds a memory address ({r!r}), which differs per "
            "process and would never hit in a shared or persisted cache; "
            "make it a dataclass or give it a cache_key() method"
        )
    return r


def workload_cache_key(workload: Any) -> tuple:
    """Canonical cache identity of a workload's shape and hardware.

    The single source of truth for how the tuner, its process-pool
    workers and the persistent cost cache identify a workload: equal
    keys mean the same model x cluster x sequence length x micro-batch
    size, regardless of which process computed them.  Duck-typed
    workloads can override the whole key with ``cache_key()``.
    """
    cache_key = getattr(workload, "cache_key", None)
    if callable(cache_key):
        key = stable_value_key(cache_key())
        # Scalars (a string name, a precomputed hash) are legal hook
        # returns; wrap rather than iterate so '7B' stays one component.
        return key if isinstance(key, tuple) else (key,)
    return (
        stable_value_key(workload.model),
        stable_value_key(workload.cluster),
        int(workload.seq_len),
        int(workload.micro_batch),
    )
