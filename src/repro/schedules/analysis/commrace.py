"""Communication-race and head-of-line-blocking analyses.

The IR's execution semantics are forgiving: SENDs issue asynchronously
and RECVs match by globally-unique tag, so any pairing that is
*deliverable* executes.  Real transports are stricter -- NCCL p2p
matches send/recv operations on a channel **in issue order**, not by
tag -- so a schedule that verifies and simulates cleanly can still race
or head-of-line block when lowered onto ordered channels (the paper's
Figure 6a pathology is exactly such a serialisation).  These passes
prove the stronger, transport-portable properties statically:

``comm-pairing`` (errors)
    Channel-level pairing dataflow: orphaned SENDs/RECVs, endpoint
    mirror violations, payload size mismatches, duplicate tags and
    self-channels, each anchored to its rank/step/tag.
``comm-order`` (warnings)
    Same-channel send/recv ordering races: for every directed channel
    ``src -> dst``, the receiver must post its RECVs in the sender's
    issue order.  A RECV posted out of order executes fine under tag
    matching but would consume the wrong payload (or block) on an
    in-order transport.  Out-of-order tags are found as the complement
    of the longest in-order subsequence, so a single displaced message
    is reported once, not once per crossing.
``comm-hol`` (warnings)
    Head-of-line-blocking cycles: abstract execution under in-order
    channel matching (a RECV completes only when its message is at the
    head of the channel's send queue).  A schedule that is
    deadlock-free under tag matching but stuck here contains a blocking
    cycle through one or more channels; the cycle of waiting stages is
    reconstructed and reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.schedules.analysis.framework import (
    AnalysisContext,
    PassIssue,
    Severity,
    register_pass,
)
from repro.schedules.ir import RecvInstr, Schedule, SendInstr

__all__ = [
    "CommOp",
    "ChannelGraph",
    "build_channel_graph",
    "check_comm_pairing",
    "check_comm_order",
    "check_hol_blocking",
]

#: Cap per-class issue floods (a systematically-broken schedule repeats
#: one defect hundreds of times; the first few locate it).
_MAX_ISSUES = 8


@dataclass(frozen=True)
class CommOp:
    """One SEND or RECV with its program position."""

    stage: int
    step: int
    instr: SendInstr | RecvInstr

    @property
    def tag(self) -> str:
        return self.instr.tag


@dataclass
class ChannelGraph:
    """Cross-rank channel dependency view of a schedule.

    ``sends``/``recvs`` map a directed channel ``(src, dst)`` to the
    channel's operations in *program order* (send order on ``src``,
    posting order on ``dst``); ``send_by_tag``/``recv_by_tag`` index the
    first operation per tag.
    """

    sends: dict[tuple[int, int], list[CommOp]] = field(default_factory=dict)
    recvs: dict[tuple[int, int], list[CommOp]] = field(default_factory=dict)
    send_by_tag: dict[str, CommOp] = field(default_factory=dict)
    recv_by_tag: dict[str, CommOp] = field(default_factory=dict)
    duplicate_sends: list[CommOp] = field(default_factory=list)
    duplicate_recvs: list[CommOp] = field(default_factory=list)

    def channels(self) -> list[tuple[int, int]]:
        return sorted(set(self.sends) | set(self.recvs))


def build_channel_graph(schedule: Schedule) -> ChannelGraph:
    """Index every SEND/RECV by channel and tag, in program order."""
    g = ChannelGraph()
    for stage, prog in enumerate(schedule.programs):
        for step, instr in enumerate(prog):
            op = CommOp(stage=stage, step=step, instr=instr)
            if isinstance(instr, SendInstr):
                g.sends.setdefault((stage, instr.peer), []).append(op)
                if instr.tag in g.send_by_tag:
                    g.duplicate_sends.append(op)
                else:
                    g.send_by_tag[instr.tag] = op
            elif isinstance(instr, RecvInstr):
                g.recvs.setdefault((instr.peer, stage), []).append(op)
                if instr.tag in g.recv_by_tag:
                    g.duplicate_recvs.append(op)
                else:
                    g.recv_by_tag[instr.tag] = op
    return g


def _capped(issues: list[PassIssue], more: Iterable[PassIssue]) -> None:
    for issue in more:
        if len(issues) >= _MAX_ISSUES * 6:
            return
        issues.append(issue)


# -- pairing -----------------------------------------------------------------


@register_pass(
    "comm-pairing",
    description="orphaned/mismatched P2P pairs on the channel graph",
    category="hazard",
)
def check_comm_pairing(
    schedule: Schedule, context: AnalysisContext
) -> list[PassIssue]:
    """Every SEND needs exactly one mirrored, size-matched RECV.

    The channel-graph counterpart of the ``structure`` executability
    pass: same invariants, but findings carry full rank/step/tag
    provenance and are grouped per defect class, so a dropped receive in
    a thousand-instruction schedule points at the exact program point.
    """
    g = build_channel_graph(schedule)
    issues: list[PassIssue] = []

    def issue(msg: str, op: CommOp, severity: Severity = Severity.ERROR) -> PassIssue:
        return PassIssue(
            "comm-pairing",
            msg,
            severity=severity,
            stage=op.stage,
            step=op.step,
            tag=op.tag,
        )

    for op in g.duplicate_sends[:_MAX_ISSUES]:
        issues.append(issue("duplicate SEND for this tag", op))
    for op in g.duplicate_recvs[:_MAX_ISSUES]:
        issues.append(issue("duplicate RECV for this tag", op))

    orphaned_sends = sorted(set(g.send_by_tag) - set(g.recv_by_tag))
    for tag in orphaned_sends[:_MAX_ISSUES]:
        op = g.send_by_tag[tag]
        issues.append(
            issue(
                f"orphaned SEND to stage {op.instr.peer}: no RECV anywhere "
                "matches this tag (dropped receive?)",
                op,
            )
        )
    orphaned_recvs = sorted(set(g.recv_by_tag) - set(g.send_by_tag))
    for tag in orphaned_recvs[:_MAX_ISSUES]:
        op = g.recv_by_tag[tag]
        issues.append(
            issue(
                f"orphaned RECV from stage {op.instr.peer}: no SEND anywhere "
                "produces this tag",
                op,
            )
        )

    mirror, size = [], []
    for tag, s in g.send_by_tag.items():
        r = g.recv_by_tag.get(tag)
        if r is None:
            continue
        if s.instr.peer != r.stage or r.instr.peer != s.stage:
            mirror.append(
                issue(
                    f"endpoint mismatch: SEND {s.stage}->{s.instr.peer} but "
                    f"RECV expects {r.instr.peer}->{r.stage}",
                    s,
                )
            )
        if s.instr.nbytes != r.instr.nbytes:
            size.append(
                issue(
                    f"payload size mismatch: SEND {s.instr.nbytes:g} B vs "
                    f"RECV {r.instr.nbytes:g} B",
                    s,
                )
            )
    _capped(issues, mirror[:_MAX_ISSUES])
    _capped(issues, size[:_MAX_ISSUES])

    for (src, dst), ops in sorted(g.sends.items()):
        if src == dst:
            _capped(
                issues,
                (issue("self-channel: SEND to the sending stage", op) for op in ops[:1]),
            )
    return issues


# -- ordering races ----------------------------------------------------------


def _longest_in_order(seq: list[int]) -> set[int]:
    """Indices of one longest strictly-increasing subsequence of ``seq``.

    The complement is the minimal set of "displaced" elements: removing
    them makes the channel perfectly in-order, so each displaced message
    is reported exactly once however many crossings it causes.
    """
    if not seq:
        return set()
    import bisect

    tails: list[int] = []  # tails[k] = smallest tail value of an IS of length k+1
    tail_idx: list[int] = []
    prev = [-1] * len(seq)
    for i, v in enumerate(seq):
        k = bisect.bisect_left(tails, v)
        if k == len(tails):
            tails.append(v)
            tail_idx.append(i)
        else:
            tails[k] = v
            tail_idx[k] = i
        prev[i] = tail_idx[k - 1] if k > 0 else -1
    out: set[int] = set()
    i = tail_idx[len(tails) - 1]
    while i != -1:
        out.add(i)
        i = prev[i]
    return out


@register_pass(
    "comm-order",
    description="same-channel send/recv ordering races (in-order transports)",
    category="hazard",
    requires=("comm-pairing",),
)
def check_comm_order(
    schedule: Schedule, context: AnalysisContext
) -> list[PassIssue]:
    """RECVs must be posted in the channel's send issue order.

    Tag matching makes posting order irrelevant to the simulator, but an
    in-order transport (NCCL p2p on one channel) matches the k-th
    receive against the k-th send: a displaced RECV consumes the wrong
    payload or stalls the channel.  Warnings, not errors -- the IR
    executes these schedules correctly; they are portability hazards
    (``helix-naive`` exhibits exactly this, which is one reason the
    paper's final schedule reorders its communication).
    """
    g = build_channel_graph(schedule)
    issues: list[PassIssue] = []
    for (src, dst), sends in sorted(g.sends.items()):
        recvs = g.recvs.get((src, dst), [])
        rpos = {op.tag: k for k, op in enumerate(recvs)}
        matched = [op for op in sends if op.tag in rpos]
        seq = [rpos[op.tag] for op in matched]
        keep = _longest_in_order(seq)
        displaced = [k for k in range(len(matched)) if k not in keep]
        for k in displaced[:_MAX_ISSUES]:
            r = recvs[seq[k]]
            issues.append(
                PassIssue(
                    "comm-order",
                    f"RECV posted out of send order on channel "
                    f"{src}->{dst}: message is send #{k} but recv #{seq[k]} "
                    "(races an in-order transport)",
                    severity=Severity.WARNING,
                    stage=r.stage,
                    step=r.step,
                    tag=r.tag,
                )
            )
        extra = len(displaced) - _MAX_ISSUES
        if extra > 0:
            issues.append(
                PassIssue(
                    "comm-order",
                    f"... {extra} more displaced RECV(s) on channel {src}->{dst}",
                    severity=Severity.WARNING,
                    stage=dst,
                )
            )
    return issues


# -- head-of-line blocking ---------------------------------------------------


@register_pass(
    "comm-hol",
    description="head-of-line blocking cycles under in-order channel matching",
    category="hazard",
    requires=("comm-pairing", "deadlock"),
)
def check_hol_blocking(
    schedule: Schedule, context: AnalysisContext
) -> list[PassIssue]:
    """Abstract-execute under in-order channel matching; report cycles.

    Model: SENDs still issue asynchronously (buffered transport), but a
    RECV completes only when its message is the *head* of its channel's
    undelivered send queue -- the in-order matching discipline of real
    p2p channels.  A schedule deadlock-free under tag matching (the
    ``deadlock`` pass) that gets stuck here contains a head-of-line
    blocking cycle: some stage's next message is stuck behind an earlier
    send on the same channel whose receiver transitively waits on that
    stage.  The cycle of blocked stages is walked and reported.
    """
    p = schedule.num_stages
    programs = schedule.programs
    g = build_channel_graph(schedule)
    # Per-channel send order and each channel's delivery cursor.
    send_index: dict[str, int] = {}
    channel_of: dict[str, tuple[int, int]] = {}
    for ch, ops in g.sends.items():
        for k, op in enumerate(ops):
            send_index[op.tag] = k
            channel_of[op.tag] = ch
    next_head = {ch: 0 for ch in g.sends}

    pcs = [0] * p
    issued: set[str] = set()
    progress = True
    while progress:
        progress = False
        for stage in range(p):
            prog = programs[stage]
            while pcs[stage] < len(prog):
                instr = prog[pcs[stage]]
                if isinstance(instr, RecvInstr):
                    tag = instr.tag
                    ch = channel_of.get(tag)
                    if (
                        tag not in issued
                        or ch is None
                        or send_index[tag] != next_head[ch]
                    ):
                        break
                    next_head[ch] += 1
                elif isinstance(instr, SendInstr):
                    issued.add(instr.tag)
                pcs[stage] += 1
                progress = True

    blocked = [s for s in range(p) if pcs[s] < len(programs[s])]
    if not blocked:
        return []

    issues: list[PassIssue] = []

    def waiting_on(stage: int) -> tuple[int, str] | None:
        """The stage (and why) that ``stage``'s head RECV waits for."""
        instr = programs[stage][pcs[stage]]
        if not isinstance(instr, RecvInstr):
            return None
        tag = instr.tag
        ch = channel_of.get(tag)
        if tag not in issued:
            # Waiting for the send itself: the sender's pc is stuck.
            return (instr.peer, f"SEND {tag!r} not yet issued")
        if ch is not None and send_index[tag] != next_head[ch]:
            head_tag = g.sends[ch][next_head[ch]].tag
            head_recv = g.recv_by_tag.get(head_tag)
            who = head_recv.stage if head_recv is not None else instr.peer
            return (
                who,
                f"message {tag!r} is #{send_index[tag]} on channel "
                f"{ch[0]}->{ch[1]} behind undelivered head {head_tag!r}",
            )
        return None

    # Walk the wait-for graph from a blocked stage until it revisits a
    # stage: that suffix is the head-of-line blocking cycle.
    start = blocked[0]
    chain: list[tuple[int, str]] = []
    seen_at: dict[int, int] = {}
    stage = start
    while stage not in seen_at:
        seen_at[stage] = len(chain)
        nxt = waiting_on(stage)
        if nxt is None:  # blocked on something non-cyclic; report flatly
            break
        chain.append((stage, nxt[1]))
        stage = nxt[0]
    cycle = chain[seen_at[stage]:] if stage in seen_at else chain
    channels = {
        channel_of[programs[s][pcs[s]].tag]
        for s, _ in cycle
        if isinstance(programs[s][pcs[s]], RecvInstr)
        and programs[s][pcs[s]].tag in channel_of
    }
    desc = "; ".join(f"stage {s} waits: {why}" for s, why in cycle[:4])
    more = "" if len(cycle) <= 4 else f" (+{len(cycle) - 4} more)"
    head = programs[blocked[0]][pcs[blocked[0]]]
    issues.append(
        PassIssue(
            "comm-hol",
            f"head-of-line blocking under in-order channel matching: "
            f"{len(blocked)} stage(s) stuck across {max(1, len(channels))} "
            f"channel(s) -- {desc}{more}",
            severity=Severity.WARNING,
            stage=blocked[0],
            step=pcs[blocked[0]],
            tag=getattr(head, "tag", None),
        )
    )
    for s in blocked[1:_MAX_ISSUES]:
        instr = programs[s][pcs[s]]
        issues.append(
            PassIssue(
                "comm-hol",
                f"stage stuck at pc {pcs[s]}/{len(programs[s])} under "
                "in-order matching",
                severity=Severity.WARNING,
                stage=s,
                step=pcs[s],
                tag=getattr(instr, "tag", None),
            )
        )
    return issues
