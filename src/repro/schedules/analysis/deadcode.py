"""Dead / redundant instruction hygiene pass.

Builders assemble programs from warm-up, steady-state, and cool-down
phases; off-by-one phase boundaries leave behind instructions that are
*executable* (every verification pass accepts them) yet do no useful
work and cost wall-clock or book-keeping anyway:

* **no-op computes** -- zero duration, no stash effect, no workspace:
  typically an op priced for the wrong segment or a warm-up iteration
  that the steady-state loop already covers;
* **no-op stash push/pop pairs** -- a stash of +X released by the
  immediately-following compute on the same (micro batch, segment) when
  that release performs no work (zero duration, no workspace): nothing
  ever consumed the activation, so the pair is pure accounting churn.
  (A real backward that immediately consumes its forward's stash -- the
  helix fold boundary -- does work and is *not* flagged.);
* **unreachable micro batches** -- compute for a micro-batch index
  outside ``[0, num_micro_batches)``: a warm-up op for an iteration
  that never runs.

All findings are warnings: the schedule is correct, just wasteful.
"""

from __future__ import annotations

from repro.schedules.analysis.framework import (
    AnalysisContext,
    PassIssue,
    Severity,
    register_pass,
)
from repro.schedules.ir import ComputeInstr, Schedule

__all__ = ["check_dead_instructions"]

_MAX_ISSUES = 8


def _seg_key(instr: ComputeInstr) -> tuple:
    seg = instr.segment
    return (instr.micro_batch, seg.kind, seg.layer, seg.num_layers)


@register_pass(
    "dead-code",
    description="no-op computes, redundant stash push/pop pairs, unreachable ops",
    category="hygiene",
    requires=("structure",),
)
def check_dead_instructions(
    schedule: Schedule, context: AnalysisContext
) -> list[PassIssue]:
    noop: list[PassIssue] = []
    pushpop: list[PassIssue] = []
    unreachable: list[PassIssue] = []
    m = schedule.num_micro_batches
    for stage, prog in enumerate(schedule.programs):
        prev: ComputeInstr | None = None
        prev_step = -1
        for step, instr in enumerate(prog):
            if not isinstance(instr, ComputeInstr):
                continue
            if (
                instr.duration <= 0.0
                and instr.stash_delta == 0.0
                and instr.workspace <= 0.0
            ):
                noop.append(
                    PassIssue(
                        "dead-code",
                        f"no-op compute {instr.label}: zero duration and no "
                        "memory effect (dead warm-up op?)",
                        severity=Severity.WARNING,
                        stage=stage,
                        step=step,
                    )
                )
            if not (0 <= instr.micro_batch < m):
                unreachable.append(
                    PassIssue(
                        "dead-code",
                        f"unreachable {instr.label}: micro batch "
                        f"{instr.micro_batch} outside [0, {m})",
                        severity=Severity.WARNING,
                        stage=stage,
                        step=step,
                    )
                )
            if (
                prev is not None
                and prev.stash_delta > 0.0
                and instr.stash_delta == -prev.stash_delta
                and _seg_key(instr) == _seg_key(prev)
                and instr.duration <= 0.0
                and instr.workspace <= 0.0
            ):
                pushpop.append(
                    PassIssue(
                        "dead-code",
                        f"no-op stash push/pop pair: {prev.label} stashes "
                        f"{prev.stash_delta:g} B at step {prev_step} and "
                        f"{instr.label} releases it immediately",
                        severity=Severity.WARNING,
                        stage=stage,
                        step=step,
                    )
                )
            prev, prev_step = instr, step
    issues: list[PassIssue] = []
    for bucket in (noop, pushpop, unreachable):
        issues.extend(bucket[:_MAX_ISSUES])
        if len(bucket) > _MAX_ISSUES:
            issues.append(
                PassIssue(
                    "dead-code",
                    f"... {len(bucket) - _MAX_ISSUES} more finding(s) of "
                    "this kind",
                    severity=Severity.WARNING,
                )
            )
    return issues
