"""Static peak-memory analysis: per-rank stash liveness by forward dataflow.

The simulator tracks memory as ``static + running sum(stash_delta)``
with the transient ``workspace`` added while a compute instruction runs.
Because memory only changes at *compute* instructions -- which execute
serially, in program order, on their own stage -- the per-stage memory
trajectory is completely independent of communication timing.  A single
forward walk over each program therefore reproduces the simulator's
measured peak **exactly** (not as a bound), with no event loop and no
cost model: this is the cheap, pre-simulation answer to "does this
schedule fit on the GPU?" that the tuner's feasibility filter and the
``repro lint`` gate rely on.

:func:`static_peak_memory` is the dataflow itself;
:func:`stash_liveness` exposes the full per-step trajectory (useful for
plotting or explaining *where* the peak happens); the registered
``peak-memory`` pass checks the peaks against the context's
``memory_cap_bytes``.
"""

from __future__ import annotations

from repro.schedules.analysis.framework import (
    AnalysisContext,
    PassIssue,
    Severity,
    register_pass,
)
from repro.schedules.ir import ComputeInstr, Schedule

__all__ = [
    "static_peak_memory",
    "stash_liveness",
    "check_peak_memory",
]


def static_peak_memory(
    schedule: Schedule,
    static_memory_bytes: list[float] | float = 0.0,
) -> list[float]:
    """Per-stage peak memory in bytes, exactly as the simulator measures it.

    Replicates the engine's accounting: the peak starts at the static
    baseline; reaching a compute instruction raises the high-water mark
    by its (positive) workspace; completing it applies ``stash_delta``.
    Communication never touches memory, so the walk is timing-exact.
    """
    if isinstance(static_memory_bytes, (int, float)):
        static = [float(static_memory_bytes)] * schedule.num_stages
    else:
        static = [float(x) for x in static_memory_bytes]
        if len(static) != schedule.num_stages:
            raise ValueError(
                f"static_memory_bytes has {len(static)} entries for "
                f"{schedule.num_stages} stages"
            )
    peaks: list[float] = []
    for stage, prog in enumerate(schedule.programs):
        cur = static[stage]
        peak = cur
        for instr in prog:
            if not isinstance(instr, ComputeInstr):
                continue
            ws = instr.workspace
            if ws > 0.0:
                high = cur + ws
                if high > peak:
                    peak = high
            cur += instr.stash_delta
            if cur > peak:
                peak = cur
        peaks.append(peak)
    return peaks


def stash_liveness(
    schedule: Schedule,
    stage: int,
    static_memory_bytes: float = 0.0,
) -> list[tuple[int, float, float]]:
    """The stage's memory trajectory: ``(step, resident, high_water)``.

    One entry per compute instruction, in program order: ``resident`` is
    the memory held *after* the instruction completes (static plus live
    stash), ``high_water`` the transient maximum while it ran (resident
    before completion plus workspace).  The maximum ``high_water`` over
    the trajectory equals ``static_peak_memory(...)[stage]``.
    """
    cur = float(static_memory_bytes)
    out: list[tuple[int, float, float]] = []
    for step, instr in enumerate(schedule.programs[stage]):
        if not isinstance(instr, ComputeInstr):
            continue
        ws = instr.workspace
        high = cur + (ws if ws > 0.0 else 0.0)
        cur += instr.stash_delta
        if cur > high:
            high = cur
        out.append((step, cur, high))
    return out


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


@register_pass(
    "peak-memory",
    description="static per-rank peak activation memory vs the GPU capacity",
    category="memory",
    requires=("stash-balance",),
)
def check_peak_memory(
    schedule: Schedule, context: AnalysisContext
) -> list[PassIssue]:
    """Flag stages whose static peak exceeds ``context.memory_cap_bytes``.

    Without a cap the pass still runs the dataflow (surfacing nothing),
    so ``repro lint`` can report the computed peaks in its JSON output.
    Requires ``stash-balance``: on a program that over-releases, "peak"
    would be an artefact of the accounting bug being reported there.
    """
    static = context.static_per_stage(schedule)
    peaks = static_peak_memory(schedule, static)
    cap = context.memory_cap_bytes
    if cap is None:
        return []
    issues: list[PassIssue] = []
    for stage, peak in enumerate(peaks):
        if peak > cap:
            issues.append(
                PassIssue(
                    "peak-memory",
                    f"static peak {_fmt_bytes(peak)} exceeds memory cap "
                    f"{_fmt_bytes(cap)} ({_fmt_bytes(static[stage])} static "
                    f"+ {_fmt_bytes(peak - static[stage])} activations)",
                    severity=Severity.ERROR,
                    stage=stage,
                )
            )
    return issues
