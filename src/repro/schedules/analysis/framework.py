"""Static-analysis pass framework over the schedule IR.

The verification passes in :mod:`repro.schedules.passes` prove
executability; the analyses in this package prove stronger properties
(communication-hazard freedom, static peak memory, instruction hygiene)
*before* any simulation.  All of them plug into one framework:

* every analysis is a registered :class:`AnalysisPass` -- a named
  function from ``(schedule, context)`` to a list of
  :class:`PassIssue` findings;
* every finding carries a :class:`Severity` and structured provenance
  (rank/stage, program step index, message tag), so reports can be
  rendered as aligned tables or machine-readable JSON;
* :func:`run_analysis` runs a pass pipeline with dependency skipping
  (a pass declaring ``requires=("structure",)`` is skipped, with a
  recorded reason, when the structure pass found errors -- its own
  findings would be noise on a malformed program) and returns an
  :class:`AnalysisReport`.

Writing a new pass
------------------

Register a function taking the schedule (and optionally the analysis
context) and returning issues; it becomes available to
:func:`run_analysis` and the ``repro lint`` CLI immediately::

    from repro.schedules.analysis.framework import (
        PassIssue, Severity, register_pass,
    )

    @register_pass(
        "my-pass",
        description="one-line summary for listings",
        category="hazard",          # executability | hazard | memory | hygiene
        requires=("structure",),    # skip when these passes found errors
    )
    def check_my_property(schedule, context):
        issues = []
        for stage, prog in enumerate(schedule.programs):
            for step, instr in enumerate(prog):
                if _violates(instr):
                    issues.append(PassIssue(
                        "my-pass",
                        "what went wrong, in one sentence",
                        severity=Severity.WARNING,
                        stage=stage,
                        step=step,
                        tag=getattr(instr, "tag", None),
                    ))
        return issues

Passes must be *pure* observers: they may read the schedule and context
but never mutate either.  Severity semantics: ``ERROR`` findings mean
the schedule is wrong (``repro lint`` exits non-zero); ``WARNING`` means
the schedule executes under the IR's asynchronous tag-matched semantics
but carries a portability or hygiene hazard; ``INFO`` is advisory.
"""

from __future__ import annotations

import enum
import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.schedules.ir import Schedule

__all__ = [
    "Severity",
    "PassIssue",
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "register_pass",
    "get_pass",
    "available_passes",
    "run_analysis",
    "format_issue_table",
]


class Severity(enum.Enum):
    """How bad a finding is.  Orders ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class PassIssue:
    """One finding of an analysis pass, with structured provenance.

    ``stage`` is the rank/program the finding anchors to, ``step`` the
    instruction's index within that program, ``tag`` the message tag
    involved (communication findings).  All three are optional --
    schedule-wide findings leave them ``None``.
    """

    pass_name: str
    message: str
    severity: Severity = Severity.ERROR
    stage: int | None = None
    step: int | None = None
    tag: str | None = None

    def __str__(self) -> str:
        ctx = []
        if self.stage is not None:
            ctx.append(f"stage {self.stage}")
        if self.step is not None:
            ctx.append(f"step {self.step}")
        if self.tag is not None:
            ctx.append(f"tag {self.tag!r}")
        where = f" ({', '.join(ctx)})" if ctx else ""
        sev = "" if self.severity is Severity.ERROR else f" {self.severity.value}:"
        return f"[{self.pass_name}]{sev}{where} {self.message}"


@dataclass
class AnalysisContext:
    """Workload-derived inputs the passes may consult.

    ``static_memory_bytes`` is the per-stage model-state baseline the
    simulator would be given (scalar = same on every stage);
    ``memory_cap_bytes`` the per-GPU capacity the peak-memory pass
    checks against (``None`` disables the capacity check).
    """

    static_memory_bytes: list[float] | float = 0.0
    memory_cap_bytes: float | None = None

    def static_per_stage(self, schedule: Schedule) -> list[float]:
        """The static baseline expanded to one entry per stage."""
        s = self.static_memory_bytes
        if isinstance(s, (int, float)):
            return [float(s)] * schedule.num_stages
        if len(s) != schedule.num_stages:
            raise ValueError(
                f"static_memory_bytes has {len(s)} entries for "
                f"{schedule.num_stages} stages"
            )
        return [float(x) for x in s]


#: A pass body: ``(schedule, context) -> issues``.
PassBody = Callable[[Schedule, AnalysisContext], list[PassIssue]]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered analysis: metadata plus the pass body.

    ``requires`` names passes whose ERROR findings make this pass
    meaningless (e.g. dataflow over unpaired tags); :func:`run_analysis`
    skips it with a recorded reason instead of reporting noise.
    """

    name: str
    fn: PassBody
    description: str = ""
    category: str = "correctness"
    requires: tuple[str, ...] = ()

    def run(
        self, schedule: Schedule, context: AnalysisContext | None = None
    ) -> list[PassIssue]:
        return self.fn(schedule, context or AnalysisContext())


_PASS_REGISTRY: dict[str, AnalysisPass] = {}

#: Modules whose import registers the built-in passes, in report order:
#: executability first (the legacy ``Schedule.validate()`` pipeline),
#: then the dataflow analyses.  Imported lazily so this module has no
#: import-time dependency on the pass bodies (which import it back).
_BUILTIN_PASS_MODULES = (
    "repro.schedules.passes",
    "repro.schedules.analysis.commrace",
    "repro.schedules.analysis.memory",
    "repro.schedules.analysis.deadcode",
)
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    for mod in _BUILTIN_PASS_MODULES:
        importlib.import_module(mod)
    # Only after every import succeeded (same discipline as the schedule
    # registry): a failing pass module must fail loudly on next lookup.
    _builtin_loaded = True


def register_pass(
    name: str,
    *,
    description: str = "",
    category: str = "correctness",
    requires: Sequence[str] = (),
) -> Callable[[Callable[..., list[PassIssue]]], Callable[..., list[PassIssue]]]:
    """Decorator registering an analysis pass under ``name``.

    The decorated function may take ``(schedule)`` or
    ``(schedule, context)``; single-argument passes (the legacy
    executability checks) are wrapped so every registered body has the
    uniform two-argument signature.  The function itself is returned
    unchanged, so direct calls keep working.
    """

    def deco(fn: Callable[..., list[PassIssue]]) -> Callable[..., list[PassIssue]]:
        if name in _PASS_REGISTRY:
            raise ValueError(f"analysis pass {name!r} already registered")
        params = [
            p
            for p in inspect.signature(fn).parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        if len(params) == 1:
            body: PassBody = lambda schedule, context, _fn=fn: _fn(schedule)
        else:
            body = fn
        _PASS_REGISTRY[name] = AnalysisPass(
            name=name,
            fn=body,
            description=description,
            category=category,
            requires=tuple(requires),
        )
        return fn

    return deco


def get_pass(name: str) -> AnalysisPass:
    """Look up a registered pass by name."""
    _ensure_builtin()
    try:
        return _PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown analysis pass {name!r}; registered: {available_passes()}"
        ) from None


def available_passes() -> list[str]:
    """Names of every registered pass, in registration (report) order."""
    _ensure_builtin()
    return list(_PASS_REGISTRY)


# -- reports -----------------------------------------------------------------


def format_issue_table(issues: Iterable[PassIssue]) -> str:
    """Render issues as an aligned ASCII table (severity-sorted input
    is the caller's choice; rows render in the order given)."""
    rows = [("pass", "severity", "stage", "step", "tag", "message")]
    for i in issues:
        rows.append(
            (
                i.pass_name,
                i.severity.value,
                "-" if i.stage is None else str(i.stage),
                "-" if i.step is None else str(i.step),
                "-" if i.tag is None else i.tag,
                i.message,
            )
        )
    widths = [max(len(r[c]) for r in rows) for c in range(5)]
    lines = []
    for r in rows:
        head = "  ".join(r[c].ljust(widths[c]) for c in range(5))
        lines.append(f"{head}  {r[5]}".rstrip())
    lines.insert(1, "  ".join("-" * w for w in widths) + "  " + "-" * 7)
    return "\n".join(lines)


@dataclass
class AnalysisReport:
    """Everything one :func:`run_analysis` invocation found.

    ``skipped`` maps pass name -> reason for passes whose declared
    dependencies reported errors.
    """

    schedule_name: str
    issues: list[PassIssue] = field(default_factory=list)
    passes_run: tuple[str, ...] = ()
    skipped: dict[str, str] = field(default_factory=dict)

    def by_severity(self, severity: Severity) -> list[PassIssue]:
        return [i for i in self.issues if i.severity is severity]

    @property
    def errors(self) -> list[PassIssue]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[PassIssue]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos do not fail an analysis)."""
        return not self.errors

    @property
    def max_severity(self) -> Severity | None:
        return max((i.severity for i in self.issues), default=None)

    def format(self) -> str:
        lines = [
            f"schedule {self.schedule_name!r}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} info "
            f"({len(self.passes_run)} passes run)"
        ]
        if self.issues:
            ordered = sorted(
                self.issues, key=lambda i: (-i.severity.rank,)
            )
            lines.append(format_issue_table(ordered))
        for name, reason in self.skipped.items():
            lines.append(f"skipped {name}: {reason}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule_name,
            "ok": self.ok,
            "passes_run": list(self.passes_run),
            "skipped": dict(self.skipped),
            "issues": [
                {
                    "pass": i.pass_name,
                    "severity": i.severity.value,
                    "stage": i.stage,
                    "step": i.step,
                    "tag": i.tag,
                    "message": i.message,
                }
                for i in self.issues
            ],
        }


def _dependency_order(passes: list[AnalysisPass]) -> list[AnalysisPass]:
    """Stable topological order: prerequisites before dependents.

    Registration order is import-order dependent (whichever pass module
    gets imported first registers first), so the default pipeline sorts
    by ``requires`` instead -- a pass never runs before the passes whose
    errors would gate it.  Ties keep the given order; a dependency cycle
    (a registration bug) degrades to the given order rather than looping.
    """
    names = {p.name for p in passes}
    remaining = list(passes)
    done: set[str] = set()
    ordered: list[AnalysisPass] = []
    while remaining:
        for idx, p in enumerate(remaining):
            if all(r in done or r not in names for r in p.requires):
                ordered.append(p)
                done.add(p.name)
                del remaining[idx]
                break
        else:
            ordered.extend(remaining)
            break
    return ordered


def run_analysis(
    schedule: Schedule,
    passes: Sequence[str | AnalysisPass] | None = None,
    context: AnalysisContext | None = None,
) -> AnalysisReport:
    """Run an analysis pipeline and collect every finding.

    Unlike :func:`repro.schedules.passes.run_passes` (which stops at the
    first failing executability pass and raises), this runs *every*
    requested pass -- skipping only those whose declared ``requires``
    dependencies reported errors -- and returns the full report.

    ``passes`` accepts registered names or :class:`AnalysisPass`
    objects; ``None`` runs every registered pass in registration order.
    """
    context = context or AnalysisContext()
    if passes is None:
        resolved = _dependency_order([get_pass(n) for n in available_passes()])
    else:
        resolved = [p if isinstance(p, AnalysisPass) else get_pass(p) for p in passes]

    report = AnalysisReport(schedule_name=schedule.name)
    failed: set[str] = set()
    ran: list[str] = []
    for p in resolved:
        broken = sorted(set(p.requires) & failed)
        if broken:
            report.skipped[p.name] = (
                f"prerequisite pass(es) {', '.join(broken)} reported errors"
            )
            continue
        issues = p.run(schedule, context)
        ran.append(p.name)
        report.issues.extend(issues)
        if any(i.severity is Severity.ERROR for i in issues):
            failed.add(p.name)
    report.passes_run = tuple(ran)
    return report
