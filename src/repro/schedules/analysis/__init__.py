"""Static analysis over the schedule IR: pass framework + dataflow passes.

See :mod:`repro.schedules.analysis.framework` for the pass-author API.
Built-in passes (also runnable via ``repro lint``):

========================  ===========  =========================================
pass                      severity     property proved
========================  ===========  =========================================
``structure``             error        stage fields, tag pairing, no self-sends
``deadlock``              error        deadlock-freedom under async tag matching
``program-order``         error        F/RC/BI/BW ordering per (mb, segment)
``stash-balance``         error        stash never negative, zero net at end
``comm-pairing``          error        channel-graph P2P pairing provenance
``comm-order``            warning      send/recv ordering races per channel
``comm-hol``              warning      head-of-line blocking cycles (in-order)
``peak-memory``           error        static per-rank peak vs GPU capacity
``dead-code``             warning      no-op computes, redundant stash pairs
========================  ===========  =========================================
"""

from repro.schedules.analysis.framework import (
    AnalysisContext,
    AnalysisPass,
    AnalysisReport,
    PassIssue,
    Severity,
    available_passes,
    format_issue_table,
    get_pass,
    register_pass,
    run_analysis,
)
from repro.schedules.analysis.memory import static_peak_memory, stash_liveness

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "PassIssue",
    "Severity",
    "available_passes",
    "format_issue_table",
    "get_pass",
    "register_pass",
    "run_analysis",
    "static_peak_memory",
    "stash_liveness",
]
