"""Verification passes over built pipeline schedules.

Every schedule the repository produces -- whatever builder emitted it --
is run through the same pass pipeline before an executor touches it:

``structure``
    Per-instruction sanity: the ``stage`` field matches the program the
    instruction sits in, message tags pair up (exactly one SEND and one
    RECV per tag, mirrored endpoints, equal sizes), and no self-sends.
``deadlock``
    Static deadlock-freedom under the IR's execution semantics (SENDs
    issue asynchronously once the program counter reaches them, RECVs
    block until the matching SEND has been issued).  A fixed-point
    abstract execution advances every stage as far as possible; if any
    program counter is still short of its program end afterwards, the
    schedule contains a cyclic wait or a RECV whose SEND can never be
    issued, and the blocked stages/tags are reported.
``program-order``
    Per-stage, per-(micro batch, segment) ordering: forward before any
    backward, RC between forward and its backward, BI before BW, and no
    duplicated passes.
``stash-balance``
    The Table 2 accounting property: per stage, the running sum of
    ``stash_delta`` never goes negative (nothing is released before it
    was stashed) and returns to zero at the end of the iteration (every
    stashed byte is released -- schedules must not leak activations
    across iterations).

Passes return :class:`PassIssue` lists instead of asserting inline, so
callers can either raise (:func:`run_passes` default, via
:class:`ScheduleVerificationError`) or collect diagnostics.  The
pipeline replaces the ad-hoc assertions that used to live in the
individual builders and in :mod:`repro.sim.engine`; the simulator keeps
its runtime :class:`~repro.sim.engine.DeadlockError` only as a backstop.

The four checks here are also registered (category ``executability``,
severity ERROR) with the :mod:`repro.schedules.analysis` framework, so
``run_analysis`` and ``repro lint`` run them alongside the dataflow
analyses; :func:`run_passes` keeps its historical fail-fast contract for
``Schedule.validate()``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.schedules.analysis.framework import (
    PassIssue,
    Severity,
    format_issue_table,
    register_pass,
)
from repro.schedules.ir import (
    BACKWARD_OPS,
    ComputeInstr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)

__all__ = [
    "PassIssue",
    "Severity",
    "ScheduleVerificationError",
    "check_structure",
    "check_deadlock_freedom",
    "check_program_order",
    "check_stash_balance",
    "DEFAULT_PASSES",
    "run_passes",
]


class ScheduleVerificationError(ValueError):
    """A schedule failed one of the verification passes."""

    def __init__(self, schedule_name: str, issues: Sequence[PassIssue]) -> None:
        self.schedule_name = schedule_name
        self.issues = list(issues)
        shown = "\n  ".join(str(i) for i in self.issues[:8])
        extra = "" if len(self.issues) <= 8 else f"\n  ... {len(self.issues) - 8} more"
        super().__init__(
            f"schedule {schedule_name!r} failed verification:\n  {shown}{extra}"
        )

    def format(self) -> str:
        """The full issue list as an aligned table (no 8-row cap)."""
        header = f"schedule {self.schedule_name!r} failed verification:"
        return f"{header}\n{format_issue_table(self.issues)}"


PassFn = Callable[[Schedule], list[PassIssue]]


# -- structure ---------------------------------------------------------------


@register_pass(
    "structure",
    description="stage fields, SEND/RECV tag pairing, endpoint mirroring",
    category="executability",
)
def check_structure(schedule: Schedule) -> list[PassIssue]:
    """Stage fields, SEND/RECV tag pairing, endpoint mirroring, sizes."""
    issues: list[PassIssue] = []
    sends: dict[str, SendInstr] = {}
    recvs: dict[str, RecvInstr] = {}
    if len(schedule.programs) != schedule.num_stages:
        issues.append(
            PassIssue(
                "structure",
                f"{len(schedule.programs)} programs for "
                f"{schedule.num_stages} stages",
            )
        )
        return issues
    for stage, prog in enumerate(schedule.programs):
        for instr in prog:
            if instr.stage != stage:
                issues.append(
                    PassIssue(
                        "structure",
                        f"instruction {instr.label} has stage {instr.stage} "
                        f"but sits in program {stage}",
                        stage=stage,
                    )
                )
            if isinstance(instr, SendInstr):
                if instr.peer == instr.stage:
                    issues.append(
                        PassIssue("structure", f"self-send {instr.label}", stage=stage)
                    )
                if instr.tag in sends:
                    issues.append(
                        PassIssue(
                            "structure", f"duplicate send tag {instr.tag}", stage=stage
                        )
                    )
                sends[instr.tag] = instr
            elif isinstance(instr, RecvInstr):
                if instr.tag in recvs:
                    issues.append(
                        PassIssue(
                            "structure", f"duplicate recv tag {instr.tag}", stage=stage
                        )
                    )
                recvs[instr.tag] = instr
    for tag in sorted(set(sends) - set(recvs))[:8]:
        issues.append(
            PassIssue(
                "structure",
                f"unpaired tag {tag!r}: SEND has no matching RECV "
                "(dropped receive?)",
                stage=sends[tag].stage,
            )
        )
    for tag in sorted(set(recvs) - set(sends))[:8]:
        issues.append(
            PassIssue(
                "structure",
                f"unpaired tag {tag!r}: RECV has no matching SEND",
                stage=recvs[tag].stage,
            )
        )
    for tag, s in sends.items():
        r = recvs.get(tag)
        if r is None:
            continue
        if s.peer != r.stage or r.peer != s.stage:
            issues.append(
                PassIssue(
                    "structure",
                    f"endpoints mismatch for tag {tag}: "
                    f"{s.stage}->{s.peer} vs {r.peer}->{r.stage}",
                    stage=s.stage,
                )
            )
        if s.nbytes != r.nbytes:
            issues.append(
                PassIssue("structure", f"size mismatch for tag {tag}", stage=s.stage)
            )
    return issues


# -- deadlock-freedom --------------------------------------------------------


@register_pass(
    "deadlock",
    description="static deadlock-freedom under async tag-matched semantics",
    category="executability",
    requires=("structure",),
)
def check_deadlock_freedom(schedule: Schedule) -> list[PassIssue]:
    """Abstract-execute the programs to a fixed point; report stuck stages.

    Mirrors the executor semantics exactly: compute instructions never
    block, a SEND is issued the moment the program counter reaches it,
    and a RECV completes once its tag has been issued by the peer.
    Bandwidth and durations are irrelevant to progress, so this check is
    sound and complete for the IR's blocking model.
    """
    pcs = [0] * schedule.num_stages
    issued: set[str] = set()
    progress = True
    while progress:
        progress = False
        for stage, prog in enumerate(schedule.programs):
            while pcs[stage] < len(prog):
                instr = prog[pcs[stage]]
                if isinstance(instr, RecvInstr) and instr.tag not in issued:
                    break
                if isinstance(instr, SendInstr):
                    issued.add(instr.tag)
                pcs[stage] += 1
                progress = True
    issues: list[PassIssue] = []
    for stage, prog in enumerate(schedule.programs):
        if pcs[stage] < len(prog):
            instr = prog[pcs[stage]]
            waiting = (
                f"waiting on tag {instr.tag!r} from stage {instr.peer}"
                if isinstance(instr, RecvInstr)
                else f"at {instr.label}"
            )
            issues.append(
                PassIssue(
                    "deadlock",
                    f"static deadlock: pc {pcs[stage]}/{len(prog)} {waiting}",
                    stage=stage,
                )
            )
    return issues


# -- program order -----------------------------------------------------------


def _seg_key(instr: ComputeInstr) -> tuple:
    seg = instr.segment
    return (instr.micro_batch, seg.kind, seg.layer, seg.num_layers)


@register_pass(
    "program-order",
    description="per-(micro batch, segment) F/RC/BI/BW ordering",
    category="executability",
)
def check_program_order(schedule: Schedule) -> list[PassIssue]:
    """Per-stage F/RC/B/BI/BW ordering for each (micro batch, segment)."""
    issues: list[PassIssue] = []
    for stage, prog in enumerate(schedule.programs):
        seen: dict[tuple, list[OpType]] = {}
        for instr in prog:
            if not isinstance(instr, ComputeInstr):
                continue
            ops = seen.setdefault(_seg_key(instr), [])
            op = instr.op
            if op is OpType.F and ops:
                issues.append(
                    PassIssue(
                        "program-order",
                        f"duplicate forward {instr.label}",
                        stage=stage,
                    )
                )
            elif op in BACKWARD_OPS or op is OpType.RC:
                if OpType.F not in ops:
                    issues.append(
                        PassIssue(
                            "program-order",
                            f"{instr.label} before its forward",
                            stage=stage,
                        )
                    )
                if op is OpType.RC and (ops and ops[-1] in BACKWARD_OPS):
                    issues.append(
                        PassIssue(
                            "program-order",
                            f"recompute {instr.label} after its backward",
                            stage=stage,
                        )
                    )
                if op in (OpType.B, OpType.BI) and any(
                    o in (OpType.B, OpType.BI) for o in ops
                ):
                    issues.append(
                        PassIssue(
                            "program-order",
                            f"duplicate backward {instr.label}",
                            stage=stage,
                        )
                    )
                if op is OpType.BW and OpType.BI not in ops:
                    issues.append(
                        PassIssue(
                            "program-order",
                            f"{instr.label} before its backward-B",
                            stage=stage,
                        )
                    )
            ops.append(op)
    return issues


# -- stash balance -----------------------------------------------------------

#: Relative tolerance for the per-stage stash accounting.  Deltas are
#: sums/fractions of exactly-representable byte counts, so only a few
#: ulps of slack are needed.
_STASH_REL_TOL = 1e-9


@register_pass(
    "stash-balance",
    description="running stash never negative, zero net at end of iteration",
    category="executability",
)
def check_stash_balance(schedule: Schedule) -> list[PassIssue]:
    """Running stash never negative; zero net stash at end of iteration."""
    issues: list[PassIssue] = []
    for stage, prog in enumerate(schedule.programs):
        total_stashed = sum(
            i.stash_delta
            for i in prog
            if isinstance(i, ComputeInstr) and i.stash_delta > 0
        )
        tol = _STASH_REL_TOL * max(1.0, total_stashed)
        running = 0.0
        went_negative = False
        for instr in prog:
            if not isinstance(instr, ComputeInstr):
                continue
            running += instr.stash_delta
            if running < -tol:
                issues.append(
                    PassIssue(
                        "stash-balance",
                        f"running stash {running:.6g} B negative after "
                        f"{instr.label}",
                        stage=stage,
                    )
                )
                went_negative = True
                break
        # The net check is only meaningful when the scan reached the end.
        if not went_negative and abs(running) > tol:
            issues.append(
                PassIssue(
                    "stash-balance",
                    f"net stash {running:.6g} B at end of iteration "
                    "(activations leaked or over-released)",
                    stage=stage,
                )
            )
    return issues


# -- pipeline ----------------------------------------------------------------

DEFAULT_PASSES: tuple[PassFn, ...] = (
    check_structure,
    check_deadlock_freedom,
    check_program_order,
    check_stash_balance,
)


def run_passes(
    schedule: Schedule,
    passes: Iterable[PassFn] = DEFAULT_PASSES,
    raise_on_issue: bool = True,
) -> list[PassIssue]:
    """Run the verification pipeline; raise or return the issues found.

    Passes run in order and the pipeline stops at the first pass that
    reports issues -- later passes assume the invariants of earlier ones
    (the deadlock fixed point is meaningless on unpaired tags, say), so
    cascading reports would only be noise.
    """
    for p in passes:
        issues = p(schedule)
        if issues:
            if raise_on_issue:
                raise ScheduleVerificationError(schedule.name, issues)
            return issues
    return []
