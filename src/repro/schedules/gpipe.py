"""GPipe: layer-wise FILO schedule (Huang et al., 2019; paper Section 6.2).

All micro batches run forward, then backward in reverse (first-in,
last-out).  Peak activation memory is the full ``m`` micro batches on
every stage, which is why GPipe is usually paired with full
recomputation; it serves here as the FILO reference point that HelixPipe's
schedule refines.
"""

from __future__ import annotations

from repro.schedules.costs import CostProvider
from repro.schedules.ir import Schedule
from repro.schedules.layerwise import LayerwiseBuilder, SymbolicOp
from repro.schedules.registry import register_schedule

__all__ = ["build_gpipe"]


@register_schedule(
    "gpipe",
    description="Layer-wise FILO: all forwards, then all backwards (GPipe)",
    family="layerwise",
    options={"include_embed": True, "include_head": True},
    divisor=lambda p, opts: p,
)
def build_gpipe(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """All forwards in order, then all backwards in reverse order."""
    builder = LayerwiseBuilder(
        name="gpipe",
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        include_embed=include_embed,
        include_head=include_head,
    )
    orders: list[list[SymbolicOp]] = []
    for _ in range(num_stages):
        order: list[SymbolicOp] = [("F", k) for k in range(num_micro_batches)]
        order.extend(("B", k) for k in reversed(range(num_micro_batches)))
        orders.append(order)
    return builder.build(orders)
