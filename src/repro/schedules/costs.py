"""Cost providers: map segments to durations, stash bytes and volumes.

Schedule builders are hardware-agnostic; they ask a cost provider for

* per-segment phase durations (forward / backward-B / backward-W /
  recompute),
* stashed-activation bytes created by a forward and released by a
  backward (split between BI and BW when they are decoupled),
* message sizes for each boundary kind.

Two providers are supplied: :class:`PipelineCosts` derives everything
from the roofline timing model, Table 1 memory accounting and the cluster
spec; :class:`UnitCosts` reproduces the abstract 1:3:2 unit-time setting
of the paper's schedule figures (Figures 2, 5, 6, 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.comm.volumes import boundary_volumes
from repro.costmodel.memory import (
    FP16_BYTES,
    RecomputeStrategy,
    logits_stash_bytes,
)
from repro.costmodel.timing import LayerTimes, PhaseTimes, TimingModel, unit_layer_times
from repro.model.config import ModelConfig
from repro.model.partition import Segment, SegmentKind

__all__ = ["SegCost", "CostProvider", "PipelineCosts", "UnitCosts"]

#: Table 1 activation elements (x bsh) attributed to each phase of a layer:
#: pre = ln1 + qkv inputs, attn = flash-attention intermediates,
#: post = o/ln2/linear1/gelu/linear2 inputs.
_PHASE_STASH_X_BSH = {"pre": 2.0, "attn": 3.0, "post": 11.0}
#: Under recomputation-without-attention the attention phase keeps its
#: input+output (2bsh) and the fused post+pre phase its two boundary
#: tensors (2bsh); everything else is recomputed (Section 4.4.1).
_PHASE_STASH_WO_ATTN_X_BSH = {"pre": 0.0, "attn": 2.0, "post": 2.0}
#: Fraction of a layer-wise stash that backward-B can already release
#: (everything except the linear inputs that backward-W still needs:
#: qkv bsh + o bsh + linear1 bsh + linear2 4bsh = 7 of 16).
_BI_RELEASE_FRACTION = 9.0 / 16.0


@dataclass(frozen=True)
class SegCost:
    """Durations (seconds) and stash bytes for one segment."""

    f: float  # forward duration
    bi: float  # backward w.r.t. inputs
    bw: float  # backward w.r.t. weights
    rc: float  # recompute-forward duration (0 when nothing is recomputed)
    stash_bytes: float  # activation bytes created by F, freed by backward
    workspace_bytes: float = 0.0  # transient bytes while any op of it runs
    #: Bytes of intermediates re-materialised by a recompute pass; they
    #: live from the RC instruction until the matching backward frees them.
    rc_extra_stash_bytes: float = 0.0

    @property
    def b(self) -> float:
        """Fused backward duration (includes recompute when folded)."""
        return self.bi + self.bw


class CostProvider:
    """Interface expected by schedule builders."""

    num_layers: int
    recompute: RecomputeStrategy

    def segment_cost(self, seg: Segment) -> SegCost:
        raise NotImplementedError

    def boundary_bytes(self, kind: str) -> float:
        """Per-GPU message size for 'layerwise' / 'pre_to_attn' / 'attn_to_post'."""
        raise NotImplementedError

    def bi_release_fraction(self) -> float:
        """Fraction of stash released by BI when B/W are decoupled."""
        return _BI_RELEASE_FRACTION

    def head_logits_stash_bytes(self) -> float:
        """fp32 logits bytes stashed per outstanding head backward-W."""
        return 0.0


class PipelineCosts(CostProvider):
    """Hardware-derived costs for a (model, cluster, b, s) workload.

    Parameters
    ----------
    model, cluster:
        Architecture and hardware.
    micro_batch, seq_len:
        Workload shape.
    recompute:
        Strategy applied during backward (Section 4.4.1).
    ship_qkv_weights:
        Move the QKV GEMM to the attention stage and shrink the
        pre->attn boundary to ``2bsh + 3h^2`` (Section 4.2).
    chunked_mlp:
        Bound the transient MLP workspace to ``chunk_elems`` rows
        (Section 4.4.2); affects workspace bytes only.
    """

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterSpec,
        micro_batch: int = 1,
        seq_len: int = 32768,
        recompute: RecomputeStrategy = RecomputeStrategy.WITHOUT_ATTENTION,
        ship_qkv_weights: bool = True,
        chunked_mlp: bool = True,
        mlp_chunk_rows: int = 2048,
        causal: bool = True,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.b = micro_batch
        self.s = seq_len
        self.sp = cluster.sequence_parallel_size
        self.num_layers = model.num_layers
        self.recompute = recompute
        self.ship_qkv_weights = ship_qkv_weights
        self.chunked_mlp = chunked_mlp
        self.mlp_chunk_rows = mlp_chunk_rows
        self.timing = TimingModel(
            cluster.node.gpu, model, micro_batch, seq_len, sp=self.sp, causal=causal
        )
        self.layer = self.timing.layer_times()
        self.volumes = boundary_volumes(
            micro_batch, seq_len, model.hidden_size, ship_qkv_weights
        )
        self._bsh_bytes = float(micro_batch) * seq_len * model.hidden_size * FP16_BYTES
        # Builders price the same handful of frozen Segments thousands of
        # times per build (every micro batch repeats the stage's layout),
        # and segment_cost is pure, so memoise per provider instance.
        self._seg_memo: dict[Segment, SegCost] = {}

    # -- internals ----------------------------------------------------------

    def _phase_stash(self, phase: str) -> float:
        if self.recompute is RecomputeStrategy.WITHOUT_ATTENTION:
            x = _PHASE_STASH_WO_ATTN_X_BSH[phase]
        elif self.recompute is RecomputeStrategy.NONE:
            x = _PHASE_STASH_X_BSH[phase]
        elif self.recompute is RecomputeStrategy.SELECTIVE:
            x = {"pre": 2.0, "attn": 0.0, "post": 11.0}[phase]
        else:  # FULL: layer input only, charged to the pre phase
            x = {"pre": 1.0, "attn": 0.0, "post": 0.0}[phase]
        return x * self._bsh_bytes / self.sp

    def _layer_stash(self) -> float:
        return sum(self._phase_stash(ph) for ph in ("pre", "attn", "post"))

    def _phase_rc_extra(self, phase: str) -> float:
        """Bytes re-materialised for ``phase`` by its recompute pass."""
        recomputed = {
            RecomputeStrategy.NONE: (),
            RecomputeStrategy.SELECTIVE: ("attn",),
            RecomputeStrategy.WITHOUT_ATTENTION: ("pre", "post"),
            RecomputeStrategy.FULL: ("pre", "attn", "post"),
        }[self.recompute]
        if phase not in recomputed:
            return 0.0
        full = _PHASE_STASH_X_BSH[phase] * self._bsh_bytes / self.sp
        return max(0.0, full - self._phase_stash(phase))

    def _layer_recompute_time(self) -> float:
        """Forward time re-executed per layer before its backward."""
        lt = self.layer
        if self.recompute is RecomputeStrategy.NONE:
            return 0.0
        if self.recompute is RecomputeStrategy.SELECTIVE:
            return lt.attn.fwd
        if self.recompute is RecomputeStrategy.WITHOUT_ATTENTION:
            return lt.pre.fwd + lt.post.fwd
        return lt.fwd  # FULL

    def _mlp_workspace(self) -> float:
        """Transient MLP intermediate: 4h wide, full s (or one chunk)."""
        rows = min(self.mlp_chunk_rows, self.s) if self.chunked_mlp else self.s
        h = self.model.hidden_size
        return 4.0 * self.b * rows * h * FP16_BYTES / self.sp

    def _pre_times(self) -> PhaseTimes:
        lt = self.layer
        if self.ship_qkv_weights:
            return PhaseTimes(
                lt.pre.fwd - lt.qkv.fwd,
                lt.pre.bwd_b - lt.qkv.bwd_b,
                lt.pre.bwd_w - lt.qkv.bwd_w,
            )
        return lt.pre

    def _attn_times(self) -> PhaseTimes:
        lt = self.layer
        if self.ship_qkv_weights:
            return PhaseTimes(
                lt.attn.fwd + lt.qkv.fwd,
                lt.attn.bwd_b + lt.qkv.bwd_b,
                lt.attn.bwd_w + lt.qkv.bwd_w,
            )
        return lt.attn

    # -- CostProvider API ----------------------------------------------------

    def segment_cost(self, seg: Segment) -> SegCost:
        cached = self._seg_memo.get(seg)
        if cached is None:
            cached = self._seg_memo[seg] = self._segment_cost(seg)
        return cached

    def _segment_cost(self, seg: Segment) -> SegCost:
        lt = self.layer
        k = seg.kind
        if k is SegmentKind.LAYERS:
            n = seg.num_layers
            rc = self._layer_recompute_time() * n
            rc_extra = sum(
                self._phase_rc_extra(ph) for ph in ("pre", "attn", "post")
            ) * n
            # Layer-wise schedules fold recompute into the backward pass.
            return SegCost(
                f=lt.fwd * n,
                bi=(lt.pre.bwd_b + lt.attn.bwd_b + lt.post.bwd_b) * n + rc,
                bw=(lt.pre.bwd_w + lt.attn.bwd_w + lt.post.bwd_w) * n,
                rc=0.0,
                stash_bytes=self._layer_stash() * n,
                workspace_bytes=self._mlp_workspace(),
                rc_extra_stash_bytes=rc_extra,
            )
        if k is SegmentKind.PRE:
            t = self._pre_times()
            return SegCost(
                f=t.fwd,
                bi=t.bwd_b,
                bw=t.bwd_w,
                rc=t.fwd if self._recompute_pre_post() else 0.0,
                stash_bytes=self._phase_stash("pre"),
                rc_extra_stash_bytes=self._phase_rc_extra("pre"),
            )
        if k is SegmentKind.ATTN:
            t = self._attn_times()
            return SegCost(
                f=t.fwd,
                bi=t.bwd_b,
                bw=t.bwd_w,
                rc=0.0,  # attention is never recomputed by HelixPipe
                stash_bytes=self._phase_stash("attn"),
            )
        if k is SegmentKind.POST:
            return SegCost(
                f=lt.post.fwd,
                bi=lt.post.bwd_b,
                bw=lt.post.bwd_w,
                rc=lt.post.fwd if self._recompute_pre_post() else 0.0,
                stash_bytes=self._phase_stash("post"),
                workspace_bytes=self._mlp_workspace(),
                rc_extra_stash_bytes=self._phase_rc_extra("post"),
            )
        if k is SegmentKind.POST_PRE:
            pre = self._pre_times()
            t = PhaseTimes(
                lt.post.fwd + pre.fwd,
                lt.post.bwd_b + pre.bwd_b,
                lt.post.bwd_w + pre.bwd_w,
            )
            return SegCost(
                f=t.fwd,
                bi=t.bwd_b,
                bw=t.bwd_w,
                rc=t.fwd if self._recompute_pre_post() else 0.0,
                stash_bytes=self._phase_stash("post") + self._phase_stash("pre"),
                workspace_bytes=self._mlp_workspace(),
                rc_extra_stash_bytes=self._phase_rc_extra("post")
                + self._phase_rc_extra("pre"),
            )
        if k is SegmentKind.EMBED:
            t = self.timing.embedding_times()
            return SegCost(
                f=t.fwd, bi=t.bwd_b, bw=t.bwd_w, rc=0.0,
                stash_bytes=self._bsh_bytes / self.sp,
            )
        if k is SegmentKind.HEAD:
            t = self.timing.head_times()
            return SegCost(
                f=t.fwd, bi=t.bwd_b, bw=t.bwd_w, rc=0.0,
                stash_bytes=self._bsh_bytes / self.sp,
            )
        raise ValueError(f"unknown segment kind: {k}")

    def _recompute_pre_post(self) -> bool:
        return self.recompute in (
            RecomputeStrategy.WITHOUT_ATTENTION,
            RecomputeStrategy.FULL,
        )

    def boundary_bytes(self, kind: str) -> float:
        return self.volumes.bytes(kind, sp=self.sp)

    def head_logits_stash_bytes(self) -> float:
        return logits_stash_bytes(self.b, self.s, self.model.vocab_size, sp=self.sp)


class UnitCosts(CostProvider):
    """Abstract unit-time costs matching the paper's schedule figures.

    Pre : attention : post forward times default to 1:3:2, backward equals
    forward (the figures draw them the same width), boundaries cost
    ``comm_time`` each, and memory stash is one abstract unit per layer.
    """

    def __init__(
        self,
        num_layers: int,
        ratio: tuple[float, float, float] = (1.0, 3.0, 2.0),
        comm_time: float = 0.0,
        recompute: RecomputeStrategy = RecomputeStrategy.NONE,
        backward_multiplier: float = 1.0,
    ) -> None:
        self.num_layers = num_layers
        self.ratio = ratio
        self.comm_time = comm_time
        self.recompute = recompute
        self.backward_multiplier = backward_multiplier
        self._lt: LayerTimes = unit_layer_times(ratio)

    #: Stashed abstract units per phase (x 1 per layer) for each strategy,
    #: mirroring :data:`_PHASE_STASH_X_BSH` in unit-world terms.
    _UNIT_STASH = {
        RecomputeStrategy.NONE: {"pre": 2.0, "attn": 3.0, "post": 11.0},
        RecomputeStrategy.SELECTIVE: {"pre": 2.0, "attn": 0.0, "post": 11.0},
        RecomputeStrategy.WITHOUT_ATTENTION: {"pre": 0.0, "attn": 2.0, "post": 2.0},
        RecomputeStrategy.FULL: {"pre": 1.0, "attn": 0.0, "post": 0.0},
    }

    def _stash(self, phase: str) -> float:
        return self._UNIT_STASH[self.recompute][phase]

    def _rc_extra(self, phase: str) -> float:
        recomputed = {
            RecomputeStrategy.NONE: (),
            RecomputeStrategy.SELECTIVE: ("attn",),
            RecomputeStrategy.WITHOUT_ATTENTION: ("pre", "post"),
            RecomputeStrategy.FULL: ("pre", "attn", "post"),
        }[self.recompute]
        if phase not in recomputed:
            return 0.0
        full = self._UNIT_STASH[RecomputeStrategy.NONE][phase]
        return max(0.0, full - self._stash(phase))

    def segment_cost(self, seg: Segment) -> SegCost:
        lt = self._lt
        m = self.backward_multiplier
        k = seg.kind
        recompute_pre_post = self.recompute in (
            RecomputeStrategy.WITHOUT_ATTENTION,
            RecomputeStrategy.FULL,
        )
        if k is SegmentKind.LAYERS:
            n = seg.num_layers
            rc = (lt.pre.fwd + lt.post.fwd) * n if recompute_pre_post else 0.0
            if self.recompute is RecomputeStrategy.SELECTIVE:
                rc = lt.attn.fwd * n
            elif self.recompute is RecomputeStrategy.FULL:
                rc = lt.fwd * n
            return SegCost(
                f=lt.fwd * n,
                bi=(lt.pre.bwd_b + lt.attn.bwd_b + lt.post.bwd_b) * m * n + rc,
                bw=(lt.pre.bwd_w + lt.post.bwd_w) * m * n,
                rc=0.0,
                stash_bytes=sum(self._stash(ph) for ph in ("pre", "attn", "post")) * n,
                rc_extra_stash_bytes=sum(
                    self._rc_extra(ph) for ph in ("pre", "attn", "post")
                )
                * n,
            )
        if k is SegmentKind.PRE:
            return SegCost(
                f=lt.pre.fwd,
                bi=lt.pre.bwd_b * m,
                bw=lt.pre.bwd_w * m,
                rc=lt.pre.fwd if recompute_pre_post else 0.0,
                stash_bytes=self._stash("pre"),
                rc_extra_stash_bytes=self._rc_extra("pre"),
            )
        if k is SegmentKind.ATTN:
            return SegCost(
                f=lt.attn.fwd,
                bi=lt.attn.bwd_b * m,
                bw=0.0,
                rc=0.0,
                stash_bytes=self._stash("attn"),
            )
        if k is SegmentKind.POST:
            return SegCost(
                f=lt.post.fwd,
                bi=lt.post.bwd_b * m,
                bw=lt.post.bwd_w * m,
                rc=lt.post.fwd if recompute_pre_post else 0.0,
                stash_bytes=self._stash("post"),
                rc_extra_stash_bytes=self._rc_extra("post"),
            )
        if k is SegmentKind.POST_PRE:
            f = lt.post.fwd + lt.pre.fwd
            return SegCost(
                f=f,
                bi=(lt.post.bwd_b + lt.pre.bwd_b) * m,
                bw=(lt.post.bwd_w + lt.pre.bwd_w) * m,
                rc=f if recompute_pre_post else 0.0,
                stash_bytes=self._stash("post") + self._stash("pre"),
                rc_extra_stash_bytes=self._rc_extra("post") + self._rc_extra("pre"),
            )
        if k in (SegmentKind.EMBED, SegmentKind.HEAD):
            return SegCost(f=0.0, bi=0.0, bw=0.0, rc=0.0, stash_bytes=0.0)
        raise ValueError(f"unknown segment kind: {k}")

    def boundary_bytes(self, kind: str) -> float:
        # Unit world: one abstract byte so transfers take `comm_time`
        # under a unit-bandwidth link; the simulator uses the cluster's
        # p2p model, so unit schedules pair with `uniform_link` clusters.
        return self.comm_time

    def head_logits_stash_bytes(self) -> float:
        return 0.0
