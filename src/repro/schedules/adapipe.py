"""AdaPipe baseline: adaptive recomputation + adaptive partition (Sun et
al., ASPLOS'24; paper Sections 5.1 and 6.3).

AdaPipe keeps the 1F1B micro-batch order but chooses, per pipeline stage,

* how many consecutive layers the stage owns (**adaptive partition**), and
* which recomputation strategy the stage applies (**adaptive
  recomputation**),

to minimise the bottleneck stage time subject to each stage's memory
capacity under 1F1B's skewed ``p - i`` outstanding-micro-batch footprint.
The original system solves this with a two-level DP; we implement the
same structure directly: ``dp[i][l]`` = best achievable bottleneck time
after assigning the first ``l`` layers to the first ``i`` stages, with
per-stage choices enumerated exactly.

The paper's observation (Section 5.2) falls out of this model: at very
long sequence lengths attention dominates every layer, so no partition
re-balancing can beat plain 1F1B -- AdaPipe matches but does not exceed
it -- while its recomputation choices do let it *fit* longer sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.memory import RecomputeStrategy
from repro.model.partition import Segment, SegmentKind
from repro.schedules.costs import CostProvider, PipelineCosts, SegCost
from repro.schedules.ir import Schedule
from repro.schedules.layerwise import LayerwiseBuilder
from repro.schedules.one_f_one_b import one_f_one_b_order
from repro.schedules.registry import register_schedule

__all__ = ["AdaPipePlan", "plan_adapipe", "build_adapipe", "AdaPipeCosts"]

_STRATEGIES = (
    RecomputeStrategy.NONE,
    RecomputeStrategy.SELECTIVE,
    RecomputeStrategy.WITHOUT_ATTENTION,
    RecomputeStrategy.FULL,
)


@dataclass(frozen=True)
class AdaPipePlan:
    """Chosen layer counts and recompute strategies per stage."""

    layers_per_stage: tuple[int, ...]
    strategy_per_stage: tuple[RecomputeStrategy, ...]
    bottleneck_time: float

    @property
    def num_stages(self) -> int:
        return len(self.layers_per_stage)


def _stage_time(cost: SegCost, num_micro_batches: int) -> float:
    """Steady-state compute time of a stage over one iteration."""
    return (cost.f + cost.b) * num_micro_batches


def plan_adapipe(
    cost_providers: dict[RecomputeStrategy, CostProvider],
    num_stages: int,
    num_micro_batches: int,
    memory_cap_bytes: float | None = None,
    static_memory_bytes: float = 0.0,
) -> AdaPipePlan:
    """DP over (stage, layers assigned) minimising the bottleneck stage.

    Parameters
    ----------
    cost_providers:
        One provider per candidate recompute strategy (they share the
        workload shape; only stash/duration differ).
    memory_cap_bytes:
        Per-GPU memory capacity; stages whose 1F1B footprint
        (``(p - i)`` outstanding micro batches of their stash plus
        ``static_memory_bytes``) exceeds it are infeasible.  ``None``
        disables the constraint.
    """
    any_provider = next(iter(cost_providers.values()))
    L = any_provider.num_layers
    p = num_stages
    if p <= 0 or L < p:
        raise ValueError("need at least one layer per stage")

    # Pre-compute per-(n layers, strategy) stage time and stash bytes.
    per_layer: dict[RecomputeStrategy, SegCost] = {
        strat: prov.segment_cost(Segment(SegmentKind.LAYERS, 0, 1))
        for strat, prov in cost_providers.items()
    }
    strategies = [s for s in _STRATEGIES if s in per_layer]

    def max_feasible_layers(stage: int, strat: RecomputeStrategy) -> int:
        # The 1F1B footprint is affine in the layer count ``n``:
        # ``static + (p - stage) * stash * n + rc_extra + workspace``,
        # so the memory constraint has a closed-form largest feasible
        # ``n`` instead of one check per (stage, n, strategy) DP cell.
        # The division estimate is corrected against the exact affine
        # predicate so float rounding cannot flip a boundary case.
        if memory_cap_bytes is None:
            return L
        c = per_layer[strat]
        osb = (p - stage) * c.stash_bytes
        base = static_memory_bytes + c.rc_extra_stash_bytes + c.workspace_bytes

        def fits(n: int) -> bool:
            return (
                static_memory_bytes
                + osb * n
                + c.rc_extra_stash_bytes
                + c.workspace_bytes
                <= memory_cap_bytes
            )

        if osb <= 0.0:
            return L if fits(1) else 0
        n = int((memory_cap_bytes - base) / osb)
        n = min(max(n, 0), L)
        while n > 0 and not fits(n):
            n -= 1
        while n < L and fits(n + 1):
            n += 1
        return n

    INF = float("inf")
    # dp[l] after processing i stages: (bottleneck, choices tuple)
    dp: dict[int, tuple[float, tuple]] = {0: (0.0, ())}
    for stage in range(p):
        nxt: dict[int, tuple[float, tuple]] = {}
        remaining_stages = p - stage - 1
        # (strategy, per-layer stage time, feasible-layer cap), in the
        # fixed _STRATEGIES order the exhaustive loop used -- tie-breaks
        # (strict improvement only) depend on visit order.
        choices_here = [
            (
                strat,
                _stage_time(per_layer[strat], num_micro_batches),
                max_feasible_layers(stage, strat),
            )
            for strat in strategies
        ]
        for assigned, (bott, choices) in dp.items():
            max_n = L - assigned - remaining_stages
            for n in range(1, max_n + 1):
                key = assigned + n
                for strat, unit, nmax in choices_here:
                    if n > nmax:
                        continue
                    t = unit * n
                    cand = bott if bott > t else t
                    prev = nxt.get(key)
                    if prev is None or cand < prev[0]:
                        nxt[key] = (cand, choices + ((n, strat),))
        dp = nxt
        if not dp:
            raise ValueError(
                "AdaPipe: no feasible plan under the memory cap "
                f"(stage {stage}, cap {memory_cap_bytes})"
            )
    if L not in dp:
        raise ValueError("AdaPipe: could not assign all layers")
    bott, choices = dp[L]
    return AdaPipePlan(
        layers_per_stage=tuple(n for n, _ in choices),
        strategy_per_stage=tuple(s for _, s in choices),
        bottleneck_time=bott,
    )


class AdaPipeCosts(CostProvider):
    """Dispatches segment costs to the per-stage strategy chosen by the plan.

    LAYERS segments are identified by their first layer, which maps to a
    stage through the plan's partition.
    """

    def __init__(
        self,
        cost_providers: dict[RecomputeStrategy, CostProvider],
        plan: AdaPipePlan,
    ) -> None:
        self.providers = cost_providers
        self.plan = plan
        any_provider = next(iter(cost_providers.values()))
        self.num_layers = any_provider.num_layers
        self.recompute = RecomputeStrategy.NONE  # per-stage override below
        self._stage_of_layer: dict[int, int] = {}
        start = 0
        for stage, n in enumerate(plan.layers_per_stage):
            for l in range(start, start + n):
                self._stage_of_layer[l] = stage
            start += n
        self._default = any_provider

    def segment_cost(self, seg: Segment) -> SegCost:
        if seg.kind is SegmentKind.LAYERS:
            stage = self._stage_of_layer[seg.layer]
            strat = self.plan.strategy_per_stage[stage]
            return self.providers[strat].segment_cost(seg)
        return self._default.segment_cost(seg)

    def boundary_bytes(self, kind: str) -> float:
        return self._default.boundary_bytes(kind)

    def head_logits_stash_bytes(self) -> float:
        return self._default.head_logits_stash_bytes()


@register_schedule(
    "adapipe",
    description="AdaPipe: 1F1B with adaptive partition + recomputation (DP)",
    family="layerwise",
    options={
        "memory_cap_bytes": None,
        "static_memory_bytes": 0.0,
        "include_embed": True,
        "include_head": True,
    },
    # AdaPipe chooses recomputation per stage itself; the tuner only
    # feeds it the strategy-free base costs.
    recompute_choices=(RecomputeStrategy.NONE,),
    divisor=lambda p, opts: p,
    workload_options=("memory_cap_bytes", "static_memory_bytes"),
)
def build_adapipe(
    num_stages: int,
    num_micro_batches: int,
    cost_providers: dict[RecomputeStrategy, CostProvider] | CostProvider,
    memory_cap_bytes: float | None = None,
    static_memory_bytes: float = 0.0,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """Plan and materialise AdaPipe (1F1B order, adaptive partition/recompute).

    ``cost_providers`` may be a single :class:`PipelineCosts`; variants
    for the other strategies are derived from it automatically.
    """
    if isinstance(cost_providers, CostProvider):
        base = cost_providers
        if not isinstance(base, PipelineCosts):
            cost_providers = {base.recompute: base}
        else:
            cost_providers = {
                strat: PipelineCosts(
                    model=base.model,
                    cluster=base.cluster,
                    micro_batch=base.b,
                    seq_len=base.s,
                    recompute=strat,
                    ship_qkv_weights=base.ship_qkv_weights,
                    chunked_mlp=base.chunked_mlp,
                    mlp_chunk_rows=base.mlp_chunk_rows,
                )
                for strat in _STRATEGIES
            }
    plan = plan_adapipe(
        cost_providers,
        num_stages,
        num_micro_batches,
        memory_cap_bytes=memory_cap_bytes,
        static_memory_bytes=static_memory_bytes,
    )
    costs = AdaPipeCosts(cost_providers, plan)
    partition: list[list[Segment]] = []
    start = 0
    for stage, n in enumerate(plan.layers_per_stage):
        segs: list[Segment] = []
        if stage == 0 and include_embed:
            segs.append(Segment(SegmentKind.EMBED))
        segs.append(Segment(SegmentKind.LAYERS, layer=start, num_layers=n))
        if stage == num_stages - 1 and include_head:
            segs.append(Segment(SegmentKind.HEAD))
        partition.append(segs)
        start += n
    builder = LayerwiseBuilder(
        name="adapipe",
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        include_embed=include_embed,
        include_head=include_head,
        partition=partition,
    )
    orders = [
        one_f_one_b_order(num_stages, num_micro_batches, i)
        for i in range(num_stages)
    ]
    sched = builder.build(orders)
    sched.name = "adapipe"
    sched.meta["plan"] = plan
    return sched
