"""Deterministic list scheduling over pipeline task DAGs.

Schedule builders that cannot write down a closed-form per-stage order
(HelixPipe's multi-loop FILO, interleaved pipelines) describe their work
as a task DAG -- each task pinned to a stage with a priority key -- and
derive the per-stage instruction order from a work-conserving greedy
simulation: whenever a stage is free it starts its ready task with the
smallest key.  Ties and event order are fully deterministic.

This mirrors what a static pipeline runtime does when turning a logical
schedule into per-rank operation streams.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PlannedTask", "list_schedule", "critical_path_levels"]


@dataclass
class PlannedTask:
    """One schedulable unit pinned to a stage."""

    tid: int
    stage: int
    key: tuple
    duration: float
    deps: list[int]
    payload: Any = None
    undone_deps: int = field(default=0, repr=False)
    start: float = field(default=0.0, repr=False)


def critical_path_levels(tasks: list["PlannedTask"]) -> dict[int, float]:
    """Remaining critical-path length (own duration included) per task."""
    by_id = {t.tid: t for t in tasks}
    dependents: dict[int, list[int]] = {t.tid: [] for t in tasks}
    for t in tasks:
        for d in t.deps:
            dependents[d].append(t.tid)
    level: dict[int, float] = {}
    remaining = {t.tid: len(dependents[t.tid]) for t in tasks}
    stack = [tid for tid, n in remaining.items() if n == 0]
    while stack:
        tid = stack.pop()
        t = by_id[tid]
        level[tid] = t.duration + max((level[d] for d in dependents[tid]), default=0.0)
        for d in t.deps:
            remaining[d] -= 1
            if remaining[d] == 0:
                stack.append(d)
    if len(level) != len(tasks):
        raise RuntimeError("cycle detected while computing critical-path levels")
    return level


def list_schedule(tasks: list[PlannedTask], num_stages: int) -> list[list[PlannedTask]]:
    """Greedy work-conserving schedule; returns per-stage task order.

    Raises ``RuntimeError`` if the DAG has a cycle (not all tasks become
    ready).
    """
    by_id = {t.tid: t for t in tasks}
    dependents: dict[int, list[int]] = {t.tid: [] for t in tasks}
    for t in tasks:
        t.undone_deps = len(t.deps)
        for d in t.deps:
            dependents[d].append(t.tid)
    ready: list[list[tuple]] = [[] for _ in range(num_stages)]
    for t in tasks:
        if t.undone_deps == 0:
            heapq.heappush(ready[t.stage], (t.key, t.tid))
    stage_free = [0.0] * num_stages
    events: list[tuple[float, int, int]] = []
    seq = itertools.count()
    order: list[list[PlannedTask]] = [[] for _ in range(num_stages)]
    scheduled = 0

    def try_start(stage: int, now: float) -> None:
        nonlocal scheduled
        if stage_free[stage] > now or not ready[stage]:
            return
        _, tid = heapq.heappop(ready[stage])
        t = by_id[tid]
        t.start = now
        stage_free[stage] = now + t.duration
        order[stage].append(t)
        scheduled += 1
        heapq.heappush(events, (now + t.duration, next(seq), tid))

    for s in range(num_stages):
        try_start(s, 0.0)
    while events:
        now, _, tid = heapq.heappop(events)
        for dep_tid in dependents[tid]:
            dt = by_id[dep_tid]
            dt.undone_deps -= 1
            if dt.undone_deps == 0:
                heapq.heappush(ready[dt.stage], (dt.key, dep_tid))
        for s in range(num_stages):
            try_start(s, now)
    if scheduled != len(tasks):
        raise RuntimeError(
            f"list_schedule placed {scheduled}/{len(tasks)} tasks; "
            "dependency cycle in the task graph"
        )
    return order
