"""Deterministic list scheduling over pipeline task DAGs.

Schedule builders that cannot write down a closed-form per-stage order
(HelixPipe's multi-loop FILO, interleaved pipelines) describe their work
as a task DAG -- each task pinned to a stage with a priority key -- and
derive the per-stage instruction order from a work-conserving greedy
simulation: whenever a stage is free it starts its ready task with the
smallest key.  Ties and event order are fully deterministic.

This mirrors what a static pipeline runtime does when turning a logical
schedule into per-rank operation streams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PlannedTask", "list_schedule", "critical_path_levels"]


@dataclass
class PlannedTask:
    """One schedulable unit pinned to a stage."""

    tid: int
    stage: int
    key: tuple
    duration: float
    deps: list[int]
    payload: Any = None
    undone_deps: int = field(default=0, repr=False)
    start: float = field(default=0.0, repr=False)


def critical_path_levels(tasks: list["PlannedTask"]) -> dict[int, float]:
    """Remaining critical-path length (own duration included) per task."""
    by_id = {t.tid: t for t in tasks}
    dependents: dict[int, list[int]] = {t.tid: [] for t in tasks}
    for t in tasks:
        for d in t.deps:
            dependents[d].append(t.tid)
    level: dict[int, float] = {}
    remaining = {t.tid: len(dependents[t.tid]) for t in tasks}
    stack = [tid for tid, n in remaining.items() if n == 0]
    while stack:
        tid = stack.pop()
        t = by_id[tid]
        level[tid] = t.duration + max((level[d] for d in dependents[tid]), default=0.0)
        for d in t.deps:
            remaining[d] -= 1
            if remaining[d] == 0:
                stack.append(d)
    if len(level) != len(tasks):
        raise RuntimeError("cycle detected while computing critical-path levels")
    return level


def list_schedule(tasks: list[PlannedTask], num_stages: int) -> list[list[PlannedTask]]:
    """Greedy work-conserving schedule; returns per-stage task order.

    Raises ``RuntimeError`` if the DAG has a cycle (not all tasks become
    ready).

    The builders call this once per candidate schedule, which puts it on
    the auto-tuner's cold path, so the implementation works on dense
    arrays: tasks addressed by list index, dependency counts and
    adjacency in parallel lists, and the per-event stage scan inlined
    with its guard first (most stages are busy or have nothing ready at
    any given event, so the common case is two list reads).  Event
    sequence numbers -- and therefore every tie-break -- are identical
    to the original dict-based implementation.
    """
    n = len(tasks)
    index = {t.tid: i for i, t in enumerate(tasks)}
    ndeps = [0] * n
    dependents: list[list[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        nd = len(t.deps)
        t.undone_deps = nd
        ndeps[i] = nd
        for d in t.deps:
            dependents[index[d]].append(i)
    heappush, heappop = heapq.heappush, heapq.heappop
    ready: list[list[tuple]] = [[] for _ in range(num_stages)]
    for i, t in enumerate(tasks):
        if ndeps[i] == 0:
            heappush(ready[t.stage], (t.key, t.tid, i))
    stage_free = [0.0] * num_stages
    events: list[tuple[float, int, int]] = []
    seq = 0
    order: list[list[PlannedTask]] = [[] for _ in range(num_stages)]
    scheduled = 0
    stages = range(num_stages)

    now = 0.0
    while True:
        # Start the ready task with the smallest key on every free
        # stage (at most one per stage per event: starting may only be
        # repeated once the start's own completion event fires).
        for s in stages:
            rq = ready[s]
            if rq and stage_free[s] <= now:
                i = heappop(rq)[2]
                t = tasks[i]
                t.start = now
                end = now + t.duration
                stage_free[s] = end
                order[s].append(t)
                scheduled += 1
                heappush(events, (end, seq, i))
                seq += 1
        if not events:
            break
        now, _, i = heappop(events)
        for j in dependents[i]:
            nd = ndeps[j] - 1
            ndeps[j] = nd
            tj = tasks[j]
            tj.undone_deps = nd
            if nd == 0:
                heappush(ready[tj.stage], (tj.key, tj.tid, j))
    if scheduled != n:
        raise RuntimeError(
            f"list_schedule placed {scheduled}/{n} tasks; "
            "dependency cycle in the task graph"
        )
    return order
