"""Pipeline schedule IR, verification passes, registry and builders."""

from repro.schedules.adapipe import build_adapipe
from repro.schedules.costs import CostProvider, PipelineCosts, SegCost, UnitCosts
from repro.schedules.gpipe import build_gpipe
from repro.schedules.ir import (
    ComputeInstr,
    Instr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.interleaved import build_interleaved_1f1b
from repro.schedules.one_f_one_b import build_1f1b
from repro.schedules.passes import (
    PassIssue,
    ScheduleVerificationError,
    run_passes,
)
from repro.schedules.registry import (
    ScheduleBuildError,
    ScheduleSpec,
    available_schedules,
    build_schedule,
    get_schedule,
    register_schedule,
)
from repro.schedules.zb1p import build_zb1p
from repro.schedules.zb_milp import build_zb_milp

__all__ = [
    "Schedule",
    "OpType",
    "Instr",
    "ComputeInstr",
    "SendInstr",
    "RecvInstr",
    "CostProvider",
    "PipelineCosts",
    "UnitCosts",
    "SegCost",
    "PassIssue",
    "ScheduleVerificationError",
    "run_passes",
    "ScheduleSpec",
    "ScheduleBuildError",
    "register_schedule",
    "get_schedule",
    "available_schedules",
    "build_schedule",
    "build_1f1b",
    "build_gpipe",
    "build_zb1p",
    "build_zb_milp",
    "build_adapipe",
    "build_interleaved_1f1b",
]
