"""1F1B pipeline schedule (PipeDream-flush / DAPPLE; paper Section 2.3.1).

Stage ``i`` warms up with ``p - 1 - i`` forwards, then alternates one
forward / one backward, then drains the outstanding backwards.  Peak
activation memory at stage ``i`` is ``p - i`` outstanding micro batches
(paper Eq. 2) and the bubble is ``(p-1)(t_F + t_B)`` (paper Eq. 1).
"""

from __future__ import annotations

from repro.schedules.costs import CostProvider
from repro.schedules.ir import Schedule
from repro.schedules.layerwise import LayerwiseBuilder, SymbolicOp
from repro.schedules.registry import register_schedule

__all__ = ["build_1f1b", "one_f_one_b_order"]


def one_f_one_b_order(
    num_stages: int, num_micro_batches: int, stage: int
) -> list[SymbolicOp]:
    """Symbolic (op, micro_batch) order of 1F1B for one stage."""
    p, m = num_stages, num_micro_batches
    warmup = min(p - 1 - stage, m)
    order: list[SymbolicOp] = [("F", k) for k in range(warmup)]
    f, b = warmup, 0
    while f < m:
        order.append(("F", f))
        f += 1
        order.append(("B", b))
        b += 1
    while b < m:
        order.append(("B", b))
        b += 1
    return order


@register_schedule(
    "1f1b",
    description="PipeDream-flush / DAPPLE one-forward-one-backward",
    family="layerwise",
    options={"include_embed": True, "include_head": True},
    divisor=lambda p, opts: p,
)
def build_1f1b(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """Materialise 1F1B for every stage."""
    builder = LayerwiseBuilder(
        name="1f1b",
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        include_embed=include_embed,
        include_head=include_head,
    )
    orders = [
        one_f_one_b_order(num_stages, num_micro_batches, i)
        for i in range(num_stages)
    ]
    return builder.build(orders)
