"""Schedule intermediate representation (IR).

A pipeline schedule is compiled to one **program per stage**: an ordered
list of instructions.  Two independent executors interpret the same IR:

* :mod:`repro.sim` runs it against the hardware cost model (durations,
  link bandwidths) and reports time/memory;
* :mod:`repro.runtime` runs it with real numpy math on virtual devices and
  checks gradient equality against a single-device reference.

Execution semantics (shared by both executors):

* Compute instructions (``F``, ``B``, ``BI``, ``BW``, ``RC``) execute in
  program order on the stage's compute engine.
* ``SEND`` issues asynchronously once the program counter reaches it (all
  earlier compute has finished, so the payload exists); the transfer then
  occupies the communication engines, not the compute engine.
* ``RECV`` blocks the program counter until the matching message (same
  ``tag``) has fully arrived.  Placing independent compute *before* a
  ``RECV`` is how schedules overlap communication with computation — the
  two-fold FILO schedule (Section 4.3.2) is exactly such a reordering.

Message tags are globally unique strings; every ``SEND`` must have exactly
one matching ``RECV`` on the peer stage (validated by
:func:`validate_program`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Union

from repro.model.partition import Segment

__all__ = [
    "OpType",
    "ComputeInstr",
    "SendInstr",
    "RecvInstr",
    "Instr",
    "Schedule",
    "validate_program",
    "compute_only",
    "instr_from_proto",
]


class OpType(Enum):
    F = "F"  # forward
    B = "B"  # fused backward (input + weight gradients)
    BI = "BI"  # backward w.r.t. inputs (paper: backward B)
    BW = "BW"  # backward w.r.t. weights (paper: backward W)
    RC = "RC"  # recompute forward before the corresponding backward


BACKWARD_OPS = frozenset({OpType.B, OpType.BI, OpType.BW})


@dataclass(frozen=True)
class ComputeInstr:
    """One compute step of a segment for a micro batch on a stage.

    Parameters
    ----------
    op, stage, micro_batch, segment:
        What is computed, where, for which micro batch.
    duration:
        Predicted seconds (simulator only; the functional runtime ignores
        it).
    stash_delta:
        Bytes of stashed activation memory created (>0, applied when the
        instruction completes) or released (<0).
    workspace:
        Transient bytes held only while the instruction runs.
    """

    op: OpType
    stage: int
    micro_batch: int
    segment: Segment
    duration: float = 0.0
    stash_delta: float = 0.0
    workspace: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.op.value}[mb{self.micro_batch},{self.segment.label}]"


@dataclass(frozen=True)
class SendInstr:
    """Asynchronous point-to-point send of one tagged message."""

    stage: int
    peer: int
    tag: str
    nbytes: float
    micro_batch: int = -1
    payload: str = "act"

    @property
    def label(self) -> str:
        return f"SEND[{self.tag}->{self.peer}]"


@dataclass(frozen=True)
class RecvInstr:
    """Blocking wait for one tagged message from ``peer``."""

    stage: int
    peer: int
    tag: str
    nbytes: float
    micro_batch: int = -1
    payload: str = "act"

    @property
    def label(self) -> str:
        return f"RECV[{self.tag}<-{self.peer}]"


Instr = Union[ComputeInstr, SendInstr, RecvInstr]


_instr_new = object.__new__


def instr_from_proto(cls: type, proto: dict, micro_batch: int) -> Instr:
    """Construct an instruction from a prototype field dict, bypassing
    the dataclass ``__init__``.

    Builders that emit thousands of near-identical instructions per
    schedule (the helix FILO emitter: one instruction stream per micro
    batch over a fixed per-position template) pay ~3x the construction
    cost in the generated ``__init__`` of a frozen dataclass (field
    re-binding through ``object.__setattr__``).  Seeding ``__dict__``
    directly produces a bit-identical instance -- equality, hashing and
    field access all go through ``__dict__`` -- at a third of the cost.

    ``proto`` must hold every dataclass field except ``micro_batch``
    (extra keys would silently become phantom attributes).
    """
    # The instance __dict__ is mutated in place: frozen dataclasses
    # route attribute (and __dict__) rebinding through a raising
    # __setattr__, but reading the dict and updating it is unmediated.
    inst = _instr_new(cls)
    d = inst.__dict__
    d.update(proto)
    d["micro_batch"] = micro_batch
    return inst


@dataclass
class Schedule:
    """A named pipeline schedule: one instruction program per stage."""

    name: str
    num_stages: int
    num_micro_batches: int
    programs: list[list[Instr]] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.programs and len(self.programs) != self.num_stages:
            raise ValueError(
                f"{self.name}: got {len(self.programs)} programs for "
                f"{self.num_stages} stages"
            )

    def instructions(self) -> Iterable[Instr]:
        for prog in self.programs:
            yield from prog

    def compute_instructions(self) -> Iterable[ComputeInstr]:
        for instr in self.instructions():
            if isinstance(instr, ComputeInstr):
                yield instr

    def total_compute_time(self, stage: int) -> float:
        """Sum of compute durations on ``stage`` (lower bound on busy time)."""
        return sum(
            i.duration for i in self.programs[stage] if isinstance(i, ComputeInstr)
        )

    def validate(self) -> None:
        """Run the full verification pass pipeline (see :mod:`..passes`)."""
        from repro.schedules.passes import run_passes

        run_passes(self)


def validate_program(schedule: Schedule) -> None:
    """Structural sanity checks, raising ``ValueError`` on violation.

    * every instruction's ``stage`` field matches the program it sits in;
    * message tags pair up: exactly one SEND and one RECV per tag, with
      mirrored endpoints and equal sizes;
    * no self-sends.

    This is the structural subset of the verification pipeline; use
    :meth:`Schedule.validate` (or :func:`repro.schedules.passes.run_passes`)
    for the full set of passes including static deadlock-freedom,
    program-order and stash-balance checks.
    """
    from repro.schedules.passes import ScheduleVerificationError, check_structure

    issues = check_structure(schedule)
    if issues:
        raise ScheduleVerificationError(schedule.name, issues)


def compute_only(schedule: Schedule, stage: int) -> list[ComputeInstr]:
    """The compute instructions of one stage, in program order."""
    return [i for i in schedule.programs[stage] if isinstance(i, ComputeInstr)]
