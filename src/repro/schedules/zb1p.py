"""ZB1P: zero-bubble pipeline, memory-parity variant (Qi et al., 2024).

ZB1P inherits 1F1B's layer partition and F/BI order but decouples the
backward pass: BI (input gradients) keeps the inter-stage dependency
chain, while BW (weight gradients) carries no dependencies and is delayed
to fill pipeline bubbles.  Peak memory stays at 1F1B's level because a
micro batch's stash is only fully released after its BW (paper Eq. 4).

The generator below is the greedy heuristic form: one BW is interleaved
after each BI once enough BI inventory exists, and leftovers drain at the
end.  Placing each BW *before* the blocking RECV of the next pass lets
the event-driven simulator use it to absorb exactly the idle the zero
bubble paper targets; the measured bubble is validated against paper
Eq. 3 in the benchmark suite.  An exact MILP placement is available in
:mod:`repro.schedules.zb_milp` as an optional refinement.

Note the fp32 logits stash this schedule must keep per outstanding head
BW -- that is the last-stage memory spike of paper Figure 10.
"""

from __future__ import annotations

from repro.schedules.costs import CostProvider
from repro.schedules.ir import Schedule
from repro.schedules.layerwise import LayerwiseBuilder, SymbolicOp
from repro.schedules.registry import register_schedule

__all__ = ["build_zb1p", "zb1p_order"]


def zb1p_order(
    num_stages: int,
    num_micro_batches: int,
    stage: int,
    max_outstanding: int | None = None,
) -> list[SymbolicOp]:
    """Symbolic ZB1P op order for one stage.

    Parameters
    ----------
    max_outstanding:
        Memory cap: maximum number of micro batches whose BW may still be
        pending after their forward ran.  Defaults to ``num_stages``,
        which reproduces 1F1B's worst-case activation footprint (Eq. 4).
    """
    p, m = num_stages, num_micro_batches
    cap = p if max_outstanding is None else max_outstanding
    if cap < 1:
        raise ValueError("max_outstanding must be >= 1")
    warmup = min(p - 1 - stage, m)
    order: list[SymbolicOp] = [("F", k) for k in range(warmup)]
    f, bi, bw = warmup, 0, 0
    while bi < m:
        if f < m:
            order.append(("F", f))
            f += 1
        order.append(("BI", bi))
        bi += 1
        # Interleave one delayed BW per cycle once inventory exists; emit
        # more eagerly if the memory cap would otherwise be violated.
        if bw < bi and (f - bw) >= cap:
            order.append(("BW", bw))
            bw += 1
        elif bw < bi and f == m:
            # Drain phase: one BW fills the idle gap between BIs.
            order.append(("BW", bw))
            bw += 1
    while bw < m:
        order.append(("BW", bw))
        bw += 1
    return order


@register_schedule(
    "zb1p",
    description="Zero-bubble 1P: decoupled BI/BW, greedy W placement",
    family="layerwise",
    options={
        "include_embed": True,
        "include_head": True,
        "max_outstanding": None,
    },
    divisor=lambda p, opts: p,
    # None = unbounded W deferral (fastest, highest stash); capping at p
    # trades bubble for peak memory, which matters under tight HBM caps.
    tune_options={"max_outstanding": lambda p: (None, p)},
)
def build_zb1p(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    include_embed: bool = True,
    include_head: bool = True,
    max_outstanding: int | None = None,
) -> Schedule:
    """Materialise the heuristic ZB1P schedule."""
    builder = LayerwiseBuilder(
        name="zb1p",
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        include_embed=include_embed,
        include_head=include_head,
    )
    orders = [
        zb1p_order(num_stages, num_micro_batches, i, max_outstanding)
        for i in range(num_stages)
    ]
    sched = builder.build(orders)
    sched.name = "zb1p"
    return sched
