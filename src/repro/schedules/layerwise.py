"""Shared machinery for layer-granularity pipelines (1F1B, ZB1P, GPipe).

These schedules all map ``L/p`` consecutive layers to stage ``i`` (paper
Section 2.3), differ only in the per-stage *order* of micro-batch passes,
and exchange one ``bsh`` activation (or gradient) per stage boundary.

A concrete schedule supplies an **op order**: a per-stage list of symbolic
``(op, micro_batch)`` pairs with ``op in {"F", "B", "BI", "BW"}``.  The
materialiser expands each pair into segment-level compute instructions
with durations/stash bytes from a :class:`~repro.schedules.costs.CostProvider`
and splices in the boundary SEND/RECV pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.partition import Segment, SegmentKind, layerwise_partition
from repro.schedules.costs import CostProvider
from repro.schedules.ir import (
    ComputeInstr,
    Instr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)

__all__ = ["LayerwiseBuilder", "SymbolicOp"]

SymbolicOp = tuple[str, int]  # ("F" | "B" | "BI" | "BW", micro_batch)


@dataclass
class LayerwiseBuilder:
    """Materialise a layer-wise pipeline schedule from symbolic op orders.

    Parameters
    ----------
    name:
        Schedule name for reporting.
    num_stages, num_micro_batches:
        Pipeline shape (``m`` need not be a multiple of ``p``).
    costs:
        Duration / memory / volume provider.
    include_embed, include_head:
        Attach the embedding to stage 0 and the LM head to the last stage
        (Section 4.6; enabled by default so memory spikes are modelled).
    """

    name: str
    num_stages: int
    num_micro_batches: int
    costs: CostProvider
    include_embed: bool = True
    include_head: bool = True
    #: Override the even layer split (used by AdaPipe's adaptive
    #: partition); must still cover the model stage by stage.
    partition: list[list[Segment]] | None = None

    def __post_init__(self) -> None:
        if self.num_stages <= 0 or self.num_micro_batches <= 0:
            raise ValueError("num_stages and num_micro_batches must be positive")
        if self.partition is None:
            self.partition = layerwise_partition(
                self.costs.num_layers,
                self.num_stages,
                include_embed=self.include_embed,
                include_head=self.include_head,
            )
        elif len(self.partition) != self.num_stages:
            raise ValueError("partition must have one segment list per stage")

    # -- tags ------------------------------------------------------------------

    @staticmethod
    def _fwd_tag(mb: int, src: int) -> str:
        return f"fwd:mb{mb}:{src}->{src + 1}"

    @staticmethod
    def _bwd_tag(mb: int, src: int) -> str:
        return f"bwd:mb{mb}:{src}->{src - 1}"

    # -- materialisation ----------------------------------------------------------

    def build(self, op_orders: list[list[SymbolicOp]]) -> Schedule:
        if len(op_orders) != self.num_stages:
            raise ValueError("need one op order per stage")
        programs: list[list[Instr]] = []
        for stage, order in enumerate(op_orders):
            prog: list[Instr] = []
            for op, mb in order:
                if op == "F":
                    prog.extend(self._forward_group(stage, mb))
                elif op == "B":
                    prog.extend(self._backward_group(stage, mb, decoupled=False))
                elif op == "BI":
                    prog.extend(self._backward_group(stage, mb, decoupled=True))
                elif op == "BW":
                    prog.extend(self._weight_group(stage, mb))
                else:
                    raise ValueError(f"unknown symbolic op {op!r}")
            programs.append(prog)
        sched = Schedule(
            name=self.name,
            num_stages=self.num_stages,
            num_micro_batches=self.num_micro_batches,
            programs=programs,
            meta={"family": "layerwise", "num_layers": self.costs.num_layers},
        )
        # Verification is the registry's job (spec.build runs the pass
        # pipeline unless verify=False); validating here too would run
        # every pass twice per build on the tuner's hot path.
        return sched

    # -- groups -------------------------------------------------------------------

    def _forward_group(self, stage: int, mb: int) -> list[Instr]:
        p = self.num_stages
        nbytes = self.costs.boundary_bytes("layerwise")
        out: list[Instr] = []
        if stage > 0:
            out.append(
                RecvInstr(
                    stage=stage,
                    peer=stage - 1,
                    tag=self._fwd_tag(mb, stage - 1),
                    nbytes=nbytes,
                    micro_batch=mb,
                    payload="fwd_boundary",
                )
            )
        for seg in self.partition[stage]:
            c = self.costs.segment_cost(seg)
            out.append(
                ComputeInstr(
                    op=OpType.F,
                    stage=stage,
                    micro_batch=mb,
                    segment=seg,
                    duration=c.f,
                    stash_delta=c.stash_bytes,
                    workspace=c.workspace_bytes,
                )
            )
        if stage < p - 1:
            out.append(
                SendInstr(
                    stage=stage,
                    peer=stage + 1,
                    tag=self._fwd_tag(mb, stage),
                    nbytes=nbytes,
                    micro_batch=mb,
                    payload="fwd_boundary",
                )
            )
        return out

    def _backward_group(self, stage: int, mb: int, decoupled: bool) -> list[Instr]:
        """B (fused) or BI pass over the stage's segments in reverse order."""
        p = self.num_stages
        nbytes = self.costs.boundary_bytes("layerwise")
        logits = self.costs.head_logits_stash_bytes()
        frac = self.costs.bi_release_fraction()
        out: list[Instr] = []
        if stage < p - 1:
            out.append(
                RecvInstr(
                    stage=stage,
                    peer=stage + 1,
                    tag=self._bwd_tag(mb, stage + 1),
                    nbytes=nbytes,
                    micro_batch=mb,
                    payload="bwd_boundary",
                )
            )
        for seg in reversed(self.partition[stage]):
            c = self.costs.segment_cost(seg)
            is_head = seg.kind is SegmentKind.HEAD
            if decoupled:
                # BI releases part of the stash; BW releases the rest.
                delta = -c.stash_bytes * frac
                if is_head:
                    delta += logits  # fp32 logits kept until BW (Fig. 10)
                out.append(
                    ComputeInstr(
                        op=OpType.BI,
                        stage=stage,
                        micro_batch=mb,
                        segment=seg,
                        duration=c.bi,
                        stash_delta=delta,
                        workspace=c.workspace_bytes + c.rc_extra_stash_bytes,
                    )
                )
            else:
                out.append(
                    ComputeInstr(
                        op=OpType.B,
                        stage=stage,
                        micro_batch=mb,
                        segment=seg,
                        duration=c.b,
                        stash_delta=-c.stash_bytes,
                        workspace=c.workspace_bytes
                        + c.rc_extra_stash_bytes
                        + (logits if is_head else 0.0),
                    )
                )
            if seg.kind is SegmentKind.LAYERS and stage > 0:
                out.append(
                    SendInstr(
                        stage=stage,
                        peer=stage - 1,
                        tag=self._bwd_tag(mb, stage),
                        nbytes=nbytes,
                        micro_batch=mb,
                        payload="bwd_boundary",
                    )
                )
        return out

    def _weight_group(self, stage: int, mb: int) -> list[Instr]:
        """The delayed backward-W pass of ZB1P (no communication)."""
        logits = self.costs.head_logits_stash_bytes()
        frac = self.costs.bi_release_fraction()
        out: list[Instr] = []
        for seg in reversed(self.partition[stage]):
            c = self.costs.segment_cost(seg)
            # Emit BW even when its modelled duration is zero (unit-cost
            # worlds): the functional runtime accumulates the deferred
            # weight gradients here.
            delta = -c.stash_bytes * (1.0 - frac)
            if seg.kind is SegmentKind.HEAD:
                delta -= logits
            out.append(
                ComputeInstr(
                    op=OpType.BW,
                    stage=stage,
                    micro_batch=mb,
                    segment=seg,
                    duration=c.bw,
                    stash_delta=delta,
                )
            )
        return out
