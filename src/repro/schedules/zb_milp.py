"""Exact backward-W placement for ZB1P via mixed-integer programming.

The zero bubble paper pairs its heuristic with an ILP that decides, for
each stage, how many delayed W passes to interleave at each point of the
steady phase.  We reproduce the essential decision with
``scipy.optimize.milp``: given a stage's 1F1B-ordered F/BI stream, choose
after which BI each BW runs so that

* BW_k runs after BI_k (data dependency),
* at most ``cap`` micro batches are outstanding (memory parity, Eq. 4),
* the weighted tail (BWs left after the final BI, which extend the
  iteration) is minimised -- W passes scheduled earlier fill bubbles for
  free in the event-driven simulator.

The search space per stage is tiny (m slots x m passes), so the exact
solve is instant; the result is an op order consumable by
:class:`~repro.schedules.layerwise.LayerwiseBuilder` exactly like the
heuristic's.

A finding worth recording: this static "earliest feasible W" optimum is
*not* always better end-to-end than the greedy heuristic, because the
event-driven execution fills idle gaps dynamically -- a W forced early
can displace a critical-path F/BI, while the heuristic's W-before-RECV
placement only consumes time the stage would have spent blocked.  The
zero bubble paper's full ILP models start times explicitly to avoid
this; we keep this light version as an ablation of that design choice
(see ``benchmarks``/tests for the measured comparison).
"""

from __future__ import annotations

from functools import lru_cache

from repro.schedules.costs import CostProvider
from repro.schedules.ir import Schedule
from repro.schedules.layerwise import LayerwiseBuilder, SymbolicOp
from repro.schedules.one_f_one_b import one_f_one_b_order
from repro.schedules.registry import register_schedule

__all__ = ["zb_milp_order", "build_zb_milp"]


@lru_cache(maxsize=None)
def _placement_milp(m: int, cap: int, warmup: int) -> tuple[int, ...]:
    """How many BWs to emit after each of the ``m`` BIs (exact solve).

    Variables ``x[i]`` = number of BW passes emitted right after BI_i.
    Constraints: cumulative BW <= cumulative BI (dependency), outstanding
    forwards minus completed BWs <= cap (memory), all m scheduled.
    Objective: schedule W mass as early as feasible (weights grow with
    the slot index), which leaves the shortest mandatory tail.

    Memoized, with a closed-form fast path: the strictly increasing slot
    costs make the objective (by summation by parts)
    ``c_{m-1} m - sum_i (c_{i+1} - c_i) cum_i``, so the *unique* optimum
    maximises every cumulative prefix.  The dependency bound
    ``cum_i <= i + 1`` is attained by one BW after each BI, which is
    memory-feasible iff ``cap >= warmup`` -- always true for the default
    ``cap = p`` (``warmup <= p - 1``).  The solver provably returns this
    placement, so the fast path is byte-identical; the MILP only runs
    for an explicit ``max_outstanding`` tighter than the warm-up depth.
    """
    if cap >= warmup:
        return (1,) * m
    # numpy/scipy are needed only on this branch (explicit
    # max_outstanding tighter than the warm-up depth); deferring them
    # keeps the schedules package importable on a numpy-free install.
    try:
        import numpy as np
        from scipy.optimize import LinearConstraint, milp
    except ImportError:
        raise ImportError(
            "zb-milp with max_outstanding < warm-up depth needs the exact "
            "MILP solve, which requires numpy + scipy"
        ) from None
    # Cost favours early slots; strictly increasing to break ties.
    c = np.arange(1, m + 1, dtype=float)
    lower_tri = np.tril(np.ones((m, m)))
    # Dependency: sum_{j<=i} x_j <= i + 1  (only BI_0..BI_i have run).
    dep = LinearConstraint(lower_tri, ub=np.arange(1, m + 1, dtype=float))
    # Memory: forwards issued by slot i is min(m, warmup + i + 1);
    # outstanding = forwards - cumulative BW <= cap, i.e.
    # -sum_{j<=i} x_j <= cap - forwards_i.
    b_mem = np.array([float(cap - min(m, warmup + i + 1)) for i in range(m)])
    mem = LinearConstraint(-lower_tri, ub=b_mem)
    total = LinearConstraint(np.ones((1, m)), lb=[float(m)], ub=[float(m)])
    constraints = [dep, mem, total]
    res = milp(
        c=c,
        integrality=np.ones(m),
        bounds=(0, m),
        constraints=constraints,
    )
    if not res.success:  # pragma: no cover - relaxed fallback
        raise RuntimeError(f"ZB MILP infeasible: {res.message}")
    return tuple(int(round(v)) for v in res.x)


def zb_milp_order(
    num_stages: int,
    num_micro_batches: int,
    stage: int,
    max_outstanding: int | None = None,
) -> list[SymbolicOp]:
    """ZB1P op order with MILP-optimal BW placement for one stage."""
    p, m = num_stages, num_micro_batches
    cap = p if max_outstanding is None else max_outstanding
    warmup = min(p - 1 - stage, m)
    base = one_f_one_b_order(p, m, stage)
    placement = _placement_milp(m, cap, warmup)
    order: list[SymbolicOp] = []
    bi_seen = 0
    bw = 0
    for op, mb in base:
        if op == "F":
            order.append(("F", mb))
            continue
        order.append(("BI", mb))
        for _ in range(placement[bi_seen]):
            order.append(("BW", bw))
            bw += 1
        bi_seen += 1
    while bw < m:  # pragma: no cover - MILP schedules all m
        order.append(("BW", bw))
        bw += 1
    return order


@register_schedule(
    "zb-milp",
    description="Zero-bubble 1P with exact MILP backward-W placement",
    family="layerwise",
    options={
        "include_embed": True,
        "include_head": True,
        "max_outstanding": None,
    },
    divisor=lambda p, opts: p,
)
def build_zb_milp(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    include_embed: bool = True,
    include_head: bool = True,
    max_outstanding: int | None = None,
) -> Schedule:
    """Materialise ZB1P with the exact MILP W placement."""
    builder = LayerwiseBuilder(
        name="zb1p-milp",
        num_stages=num_stages,
        num_micro_batches=num_micro_batches,
        costs=costs,
        include_embed=include_embed,
        include_head=include_head,
    )
    orders = [
        zb_milp_order(num_stages, num_micro_batches, i, max_outstanding)
        for i in range(num_stages)
    ]
    sched = builder.build(orders)
    sched.name = "zb1p-milp"
    return sched
