"""Interleaved 1F1B (Megatron virtual pipeline; paper Section 6.2).

Each stage owns ``v`` *chunks* of ``L / (p v)`` consecutive layers --
chunk ``c`` lives on stage ``c mod p`` -- so a micro batch crosses every
stage ``v`` times.  The bubble shrinks roughly by ``v`` at the price of
``v`` times the p2p traffic and, as the paper notes, the need for many
micro batches to saturate the pipeline, which is why HelixPipe does not
build on it for long sequences.

The schedule is expressed as a task DAG (forward/backward of each (chunk,
micro batch), chained across chunks) and ordered per stage by the shared
list scheduler with 1F1B-style priorities: within a round of ``p`` micro
batches, lower chunk first in forward, the FILO mirror in backward, and
a chained backward entry so gradients drain in order.
"""

from __future__ import annotations

import itertools

from repro.model.partition import Segment, SegmentKind
from repro.schedules.costs import CostProvider
from repro.schedules.ir import (
    ComputeInstr,
    Instr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.planner import PlannedTask, list_schedule
from repro.schedules.registry import register_schedule

__all__ = ["build_interleaved_1f1b"]


@register_schedule(
    "interleaved",
    description="Megatron interleaved 1F1B (virtual pipeline chunks)",
    family="interleaved",
    options={
        "num_chunks_per_stage": 2,
        "include_embed": True,
        "include_head": True,
    },
    divisor=lambda p, opts: p,
    # Deeper virtual pipelines shrink the warm-up bubble at the price of
    # more p2p; layer-divisibility violations surface as infeasible rows.
    tune_options={"num_chunks_per_stage": (2, 4)},
)
def build_interleaved_1f1b(
    num_stages: int,
    num_micro_batches: int,
    costs: CostProvider,
    num_chunks_per_stage: int = 2,
    include_embed: bool = True,
    include_head: bool = True,
) -> Schedule:
    """Build the interleaved schedule with ``v = num_chunks_per_stage``."""
    p, m, v = num_stages, num_micro_batches, num_chunks_per_stage
    if p <= 0 or m <= 0 or v <= 0:
        raise ValueError("num_stages, num_micro_batches, num_chunks must be positive")
    L = costs.num_layers
    total_chunks = p * v
    if L % total_chunks != 0:
        raise ValueError(
            f"num_layers ({L}) must be divisible by p*v ({total_chunks})"
        )
    per_chunk = L // total_chunks

    def chunk_stage(c: int) -> int:
        return c % p

    def chunk_seg(c: int) -> Segment:
        return Segment(SegmentKind.LAYERS, layer=c * per_chunk, num_layers=per_chunk)

    # -- task graph -------------------------------------------------------------
    ids = itertools.count()
    tasks: list[PlannedTask] = []
    f_id: dict[tuple[int, int], int] = {}
    prev_b_entry: int | None = None
    seg_costs = {c: costs.segment_cost(chunk_seg(c)) for c in range(total_chunks)}
    embed_cost = costs.segment_cost(Segment(SegmentKind.EMBED))
    head_cost = costs.segment_cost(Segment(SegmentKind.HEAD))
    for mb in range(m):
        rnd = mb // p
        for c in range(total_chunks):
            dur = seg_costs[c].f
            if c == 0 and include_embed:
                dur += embed_cost.f
            if c == total_chunks - 1 and include_head:
                dur += head_cost.f
            t = PlannedTask(
                tid=next(ids),
                stage=chunk_stage(c),
                key=(0, rnd, c, mb % p),
                duration=dur,
                deps=[] if c == 0 else [f_id[(c - 1, mb)]],
                payload=("F", c, mb),
            )
            tasks.append(t)
            f_id[(c, mb)] = t.tid
    for mb in range(m):
        rnd = mb // p
        prev: int | None = None
        for c in range(total_chunks - 1, -1, -1):
            dur = seg_costs[c].b
            if c == 0 and include_embed:
                dur += embed_cost.b
            if c == total_chunks - 1 and include_head:
                dur += head_cost.b
            deps = [f_id[(total_chunks - 1, mb)]] if prev is None else [prev]
            if prev is None and prev_b_entry is not None:
                deps.append(prev_b_entry)
            t = PlannedTask(
                tid=next(ids),
                stage=chunk_stage(c),
                key=(1, rnd, total_chunks - 1 - c, mb % p),
                duration=dur,
                deps=deps,
                payload=("B", c, mb),
            )
            tasks.append(t)
            if prev is None:
                prev_b_entry = t.tid
            prev = t.tid

    order = list_schedule(tasks, p)

    # -- emission ---------------------------------------------------------------
    programs: list[list[Instr]] = [[] for _ in range(p)]

    def fwd_tag(c: int, mb: int) -> str:
        return f"il.fwd:c{c}:mb{mb}"

    def bwd_tag(c: int, mb: int) -> str:
        return f"il.bwd:c{c}:mb{mb}"

    for stage, seq in enumerate(order):
        prog = programs[stage]
        for t in seq:
            op, c, mb = t.payload
            seg = chunk_seg(c)
            sc = seg_costs[c]
            if op == "F":
                if c > 0:
                    src = chunk_stage(c - 1)
                    if src != stage:
                        prog.append(
                            RecvInstr(stage, src, fwd_tag(c, mb),
                                      costs.boundary_bytes("layerwise"),
                                      micro_batch=mb, payload="fwd_boundary")
                        )
                if c == 0 and include_embed:
                    ec = embed_cost
                    prog.append(ComputeInstr(OpType.F, stage, mb,
                                             Segment(SegmentKind.EMBED),
                                             duration=ec.f, stash_delta=ec.stash_bytes))
                prog.append(ComputeInstr(OpType.F, stage, mb, seg, duration=sc.f,
                                         stash_delta=sc.stash_bytes,
                                         workspace=sc.workspace_bytes))
                if c == total_chunks - 1:
                    if include_head:
                        hc = head_cost
                        prog.append(ComputeInstr(OpType.F, stage, mb,
                                                 Segment(SegmentKind.HEAD),
                                                 duration=hc.f,
                                                 stash_delta=hc.stash_bytes))
                else:
                    dst = chunk_stage(c + 1)
                    if dst != stage:
                        prog.append(
                            SendInstr(stage, dst, fwd_tag(c + 1, mb),
                                      costs.boundary_bytes("layerwise"),
                                      micro_batch=mb, payload="fwd_boundary")
                        )
            else:  # backward
                if c < total_chunks - 1:
                    src = chunk_stage(c + 1)
                    if src != stage:
                        prog.append(
                            RecvInstr(stage, src, bwd_tag(c, mb),
                                      costs.boundary_bytes("layerwise"),
                                      micro_batch=mb, payload="bwd_boundary")
                        )
                if c == total_chunks - 1 and include_head:
                    hc = head_cost
                    prog.append(ComputeInstr(OpType.B, stage, mb,
                                             Segment(SegmentKind.HEAD),
                                             duration=hc.b,
                                             stash_delta=-hc.stash_bytes))
                prog.append(ComputeInstr(OpType.B, stage, mb, seg, duration=sc.b,
                                         stash_delta=-sc.stash_bytes,
                                         workspace=sc.workspace_bytes
                                         + sc.rc_extra_stash_bytes))
                if c > 0:
                    dst = chunk_stage(c - 1)
                    if dst != stage:
                        prog.append(
                            SendInstr(stage, dst, bwd_tag(c - 1, mb),
                                      costs.boundary_bytes("layerwise"),
                                      micro_batch=mb, payload="bwd_boundary")
                        )
                elif include_embed:
                    ec = embed_cost
                    prog.append(ComputeInstr(OpType.B, stage, mb,
                                             Segment(SegmentKind.EMBED),
                                             duration=ec.b,
                                             stash_delta=-ec.stash_bytes))
    sched = Schedule(
        name=f"interleaved-1f1b-v{v}",
        num_stages=p,
        num_micro_batches=m,
        programs=programs,
        meta={"family": "interleaved", "num_chunks": v, "num_layers": L},
    )
    # Verification is the registry's job (spec.build runs the pass
    # pipeline unless verify=False); validating here too would run
    # every pass twice per build on the tuner's hot path.
    return sched
