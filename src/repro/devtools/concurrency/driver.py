"""Entry point tying model extraction and the pass pipeline together.

:func:`lint_code` is what ``repro lint-code`` and CI call: build the
project model over the requested paths (defaulting to the threaded
packages, ``src/repro/service`` and ``src/repro/tuner``), run every
registered pass (or a chosen subset), and return the report.  ``ok``
semantics mirror ``repro lint``: ERRORs always fail, ``strict=True``
additionally fails on WARNINGs.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.devtools.concurrency.framework import (
    CodeAnalysisReport,
    run_code_analysis,
)
from repro.devtools.concurrency.model import ProjectModel, build_model

__all__ = ["DEFAULT_LINT_PATHS", "lint_code", "report_passes_gate"]

#: Packages swept by default: everything that runs under the threaded
#: HTTP service.  Extend with ``--paths`` as more of ``src/`` goes
#: multi-threaded.
DEFAULT_LINT_PATHS = (
    os.path.join("src", "repro", "service"),
    os.path.join("src", "repro", "tuner"),
)


def lint_code(
    paths: Sequence[str | os.PathLike] | None = None,
    passes: Sequence[str] | None = None,
    *,
    root: str | os.PathLike | None = None,
) -> tuple[CodeAnalysisReport, ProjectModel]:
    """Sweep ``paths`` with the concurrency passes.

    ``paths`` defaults to :data:`DEFAULT_LINT_PATHS` resolved against
    ``root`` (default: the current working directory).  Returns both the
    report and the extracted model so callers (the runtime cross-check,
    tests) can reuse the static lock graph without re-parsing.
    """
    if paths is None:
        base = os.fspath(root) if root is not None else os.getcwd()
        paths = [os.path.join(base, p) for p in DEFAULT_LINT_PATHS]
    model = build_model(paths)
    report = run_code_analysis(model, passes=passes)
    return report, model


def report_passes_gate(report: CodeAnalysisReport, *, strict: bool = False) -> bool:
    """Gate semantics shared with ``repro lint``: errors always fail,
    ``strict`` promotes warnings to failures."""
    if not report.ok:
        return False
    if strict and report.warnings:
        return False
    return True
