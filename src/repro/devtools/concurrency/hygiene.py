"""thread-hygiene pass: lifecycle discipline for threads and resources.

Three checks:

* **untracked daemon thread** (ERROR): a ``threading.Thread(...,
  daemon=True)`` that is started but never stored anywhere the code
  could later join or drain it (not appended/assigned/returned).  These
  die mid-write at interpreter exit -- the exact failure mode graceful
  shutdown exists to prevent.  Non-daemon untracked spawns are
  WARNINGs (they at least block exit until done).
* **unclosed thread-local resource** (WARNING): a class owning a
  ``threading.local()`` attribute but no ``close()`` method; per-thread
  resources (sqlite connections, file handles) leak for every handler
  thread the server retires.
* **module-global mutation from a thread target** (WARNING): a function
  used as a ``Thread(target=...)`` that rebinds or mutates module-level
  mutable state without a module-level lock held.
"""

from __future__ import annotations

from repro.devtools.concurrency.framework import (
    CodeIssue,
    Severity,
    register_code_pass,
)
from repro.devtools.concurrency.model import ProjectModel

PASS_NAME = "thread-hygiene"


@register_code_pass(
    PASS_NAME,
    description="threads tracked for shutdown; thread-local resources closed",
    category="hygiene",
)
def check_thread_hygiene(model: ProjectModel) -> list[CodeIssue]:
    issues: list[CodeIssue] = []
    for fn in model.all_functions():
        for spawn in fn.spawns:
            if spawn.tracked:
                continue
            if model.allowed(fn, spawn.line, PASS_NAME):
                continue
            what = "daemon thread" if spawn.daemon else "thread"
            target = f" (target={spawn.target})" if spawn.target else ""
            issues.append(
                CodeIssue(
                    PASS_NAME,
                    f"{what}{target} started but not tracked for "
                    "shutdown (store it so close()/join() can drain it)",
                    severity=Severity.ERROR if spawn.daemon else Severity.WARNING,
                    file=spawn.file,
                    line=spawn.line,
                    function=fn.qualname,
                    symbol=spawn.target,
                )
            )
    for mod in model.modules:
        for cls in mod.classes.values():
            for attr in cls.thread_local_attrs:
                if cls.has_close:
                    continue
                if mod.allowed(cls.line, PASS_NAME):
                    continue
                issues.append(
                    CodeIssue(
                        PASS_NAME,
                        f"{cls.name}.{attr} holds threading.local() state "
                        "but the class has no close(); per-thread resources "
                        "leak as handler threads retire",
                        severity=Severity.WARNING,
                        file=cls.file,
                        line=cls.line,
                        symbol=f"{cls.name}.{attr}",
                    )
                )
        # Thread targets mutating module-level state without a lock.
        for fn in mod.functions.values():
            short = fn.name
            if short not in mod.thread_targets:
                continue
            for mut in fn.global_mutations:
                if any(h.label.startswith(f"{mod.name}.") for h in mut.held):
                    continue
                if mod.allowed(mut.line, PASS_NAME):
                    continue
                issues.append(
                    CodeIssue(
                        PASS_NAME,
                        f"thread target mutates module-level {mut.name!r} "
                        "without a module lock held",
                        severity=Severity.WARNING,
                        file=mut.file,
                        line=mut.line,
                        function=fn.qualname,
                        symbol=mut.name,
                    )
                )
    return issues
