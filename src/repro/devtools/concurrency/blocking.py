"""blocking-under-lock pass: slow operations while holding a lock.

Flags potentially long-running operations -- ``subprocess`` calls,
sqlite ``execute``/``commit``/``connect``, file I/O, ``Thread.join()``,
``Event.wait()``, ``time.sleep`` -- performed while holding any lock,
directly or through a resolvable call chain (the ``may_block``
fixpoint).  These are WARNINGs, not ERRORs: sometimes serialization is
the point (the planner's ``_eval_lock`` deliberately serializes cache
evaluation).  Deliberate cases must say so with an allowlist comment on
either the blocking line or the lock's ``with`` line::

    with self._eval_lock:  # lint-code: allow(blocking-under-lock) -- serialized on purpose
        plans = autotune(...)
"""

from __future__ import annotations

from repro.devtools.concurrency.framework import (
    CodeIssue,
    Severity,
    register_code_pass,
)
from repro.devtools.concurrency.model import ProjectModel

PASS_NAME = "blocking-under-lock"


@register_code_pass(
    PASS_NAME,
    description="no subprocess/sqlite/file-io/join/wait while holding a lock",
    category="concurrency",
)
def check_blocking_under_lock(model: ProjectModel) -> list[CodeIssue]:
    issues: list[CodeIssue] = []
    may_block = model.may_block()
    seen: set[tuple[str, int, str, str]] = set()

    def report(fn, line: int, held, kind: str, detail: str) -> None:
        for h in held:
            if model.allowed(fn, h.line, PASS_NAME):
                return
        if model.allowed(fn, line, PASS_NAME):
            return
        inner = min(held, key=lambda h: -h.line)
        key = (fn.qualname, line, inner.label, kind)
        if key in seen:
            return
        seen.add(key)
        issues.append(
            CodeIssue(
                PASS_NAME,
                f"{kind} operation ({detail}) while holding {inner.label}",
                severity=Severity.WARNING,
                file=fn.file,
                line=line,
                function=fn.qualname,
                symbol=inner.label,
            )
        )

    for fn in model.all_functions():
        for op in fn.blocking:
            if op.held:
                report(fn, op.line, op.held, op.kind, op.detail)
        for call in fn.calls:
            if not call.held:
                continue
            for callee in model.resolve_call(call, fn):
                for kind, witness in may_block.get(
                    callee.qualname, {}
                ).items():
                    report(fn, call.line, call.held, kind, witness)
    return issues
