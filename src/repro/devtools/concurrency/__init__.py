"""Lock-discipline static analyzer for the repo's threaded packages.

The concurrency sibling of :mod:`repro.schedules.analysis`: an AST
model of the repo's own sources (:mod:`.model`), a registered-pass
framework (:mod:`.framework`), four built-in passes (``guarded-by``,
``lock-order``, ``blocking-under-lock``, ``thread-hygiene``), a runtime
lock-order verifier (:mod:`.runtime`) and the ``repro lint-code``
driver (:mod:`.driver`).
"""

from repro.devtools.concurrency.driver import (
    DEFAULT_LINT_PATHS,
    lint_code,
    report_passes_gate,
)
from repro.devtools.concurrency.framework import (
    CodeAnalysisReport,
    CodeIssue,
    CodePass,
    Severity,
    available_code_passes,
    format_code_issue_table,
    get_code_pass,
    register_code_pass,
    run_code_analysis,
)
from repro.devtools.concurrency.model import (
    ProjectModel,
    build_model,
    parse_module,
)
from repro.devtools.concurrency.runtime import (
    LockOrderRecorder,
    LockOrderVerdict,
    RecordingLock,
    instrument,
    verify_lock_order,
)

__all__ = [
    "DEFAULT_LINT_PATHS",
    "lint_code",
    "report_passes_gate",
    "CodeAnalysisReport",
    "CodeIssue",
    "CodePass",
    "Severity",
    "available_code_passes",
    "format_code_issue_table",
    "get_code_pass",
    "register_code_pass",
    "run_code_analysis",
    "ProjectModel",
    "build_model",
    "parse_module",
    "LockOrderRecorder",
    "LockOrderVerdict",
    "RecordingLock",
    "instrument",
    "verify_lock_order",
]
