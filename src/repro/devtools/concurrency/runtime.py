"""Runtime lock-order verification: record what threads actually do.

The static lock-order pass models acquisitions by reading the AST; this
module checks that model against reality.  :func:`instrument` wraps the
lock attributes of live objects in :class:`RecordingLock` proxies that
log, per thread, every ``held -> acquired`` pair into a shared
:class:`LockOrderRecorder`.  Running a real workload (the service or
tuner test suites) then yields the *observed* lock-order edge set, and
:func:`verify_lock_order` cross-checks it against the static graph:

* no observed edge may *invert* a static edge (``B -> A`` at runtime
  when the static graph says ``A -> B`` somewhere) -- that is exactly
  the two-thread deadlock pattern;
* the union of observed and static edges must stay acyclic.

Observed edges *not* predicted statically are reported as ``extra`` but
are not failures on their own -- the static analysis is deliberately
conservative about unresolvable calls -- as long as they keep the
combined graph acyclic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.devtools.concurrency.lockorder import static_lock_graph
from repro.devtools.concurrency.model import ProjectModel

__all__ = [
    "LockOrderRecorder",
    "RecordingLock",
    "instrument",
    "LockOrderVerdict",
    "verify_lock_order",
]


class LockOrderRecorder:
    """Thread-safe collector of observed lock-acquisition order edges.

    Each thread keeps its own stack of currently-held lock labels; on
    every acquisition the recorder adds one ``(held, acquired)`` edge
    per lock on the stack.  Reentrant re-acquisition of the same label
    does not add a self-edge (RLocks re-enter legitimately).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str], int] = {}
        self._acquired: dict[str, int] = {}
        self._held = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, label: str) -> None:
        stack = self._stack()
        with self._lock:
            self._acquired[label] = self._acquired.get(label, 0) + 1
            for held in stack:
                if held != label:
                    key = (held, label)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(label)

    def on_release(self, label: str) -> None:
        stack = self._stack()
        # Release in LIFO discipline is the common case; out-of-order
        # release just removes the most recent matching entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == label:
                del stack[i]
                break

    def edges(self) -> dict[tuple[str, str], int]:
        """Observed ``(held, acquired)`` pairs with occurrence counts."""
        with self._lock:
            return dict(self._edges)

    def acquisitions(self) -> dict[str, int]:
        """Per-label acquisition counts (coverage signal for tests)."""
        with self._lock:
            return dict(self._acquired)


class RecordingLock:
    """Context-manager proxy around a real lock that logs to a recorder.

    Supports the subset of the lock API the repo uses: ``with``,
    ``acquire``/``release``, ``locked``.  The proxy is intentionally
    *not* a Lock subclass -- it wraps whatever it is given, including
    RLocks.
    """

    def __init__(self, inner, label: str, recorder: LockOrderRecorder) -> None:
        self._inner = inner
        self._label = label
        self._recorder = recorder

    @property
    def label(self) -> str:
        return self._label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._recorder.on_acquire(self._label)
        return got

    def release(self) -> None:
        self._inner.release()
        self._recorder.on_release(self._label)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "RecordingLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def instrument(
    obj: object,
    recorder: LockOrderRecorder,
    *,
    attrs: list[str] | None = None,
    label_prefix: str | None = None,
) -> list[str]:
    """Wrap ``obj``'s lock attributes in recording proxies, in place.

    ``attrs`` defaults to every attribute whose value is a
    ``threading.Lock``/``RLock`` (detected structurally: has acquire,
    release and __enter__).  Labels are ``ClassName.attr`` to match the
    static graph's labels.  Returns the labels instrumented.  Objects
    already instrumented are skipped (idempotent).
    """
    cls_name = label_prefix or type(obj).__name__
    labels: list[str] = []
    candidates = attrs
    if candidates is None:
        candidates = [
            name
            for name in vars(obj)
            if _is_lock(getattr(obj, name, None))
        ]
    for name in candidates:
        value = getattr(obj, name, None)
        if value is None or isinstance(value, RecordingLock):
            continue
        if not _is_lock(value):
            continue
        label = f"{cls_name}.{name}"
        setattr(obj, name, RecordingLock(value, label, recorder))
        labels.append(label)
    return labels


def _is_lock(value: object) -> bool:
    return (
        value is not None
        and callable(getattr(value, "acquire", None))
        and callable(getattr(value, "release", None))
        and hasattr(value, "__enter__")
        and not isinstance(value, RecordingLock)
    )


@dataclass
class LockOrderVerdict:
    """Outcome of cross-checking observed edges against the static graph."""

    consistent: bool
    inversions: list[tuple[str, str]] = field(default_factory=list)
    combined_cycles: list[list[str]] = field(default_factory=list)
    extra_edges: list[tuple[str, str]] = field(default_factory=list)
    observed: dict[tuple[str, str], int] = field(default_factory=dict)

    def format(self) -> str:
        if self.consistent:
            extra = (
                f"; {len(self.extra_edges)} edge(s) observed beyond the "
                "static graph (still acyclic)"
                if self.extra_edges
                else ""
            )
            return (
                f"runtime lock order consistent with static graph "
                f"({len(self.observed)} observed edge(s){extra})"
            )
        lines = ["runtime lock order INCONSISTENT with static graph"]
        for a, b in self.inversions:
            lines.append(
                f"  inversion: observed {a} -> {b} but static graph "
                f"orders {b} -> {a}"
            )
        for cycle in self.combined_cycles:
            lines.append(
                "  combined cycle: " + " -> ".join(cycle + [cycle[0]])
            )
        return "\n".join(lines)


def verify_lock_order(
    model: ProjectModel, recorder: LockOrderRecorder
) -> LockOrderVerdict:
    """Cross-check observed acquisition orders against the static graph."""
    from repro.devtools.concurrency.lockorder import _find_cycles

    static_edges = {
        (a, b) for (a, b) in static_lock_graph(model) if a != b
    }
    observed = recorder.edges()
    observed_edges = set(observed)
    inversions = sorted(
        (a, b)
        for (a, b) in observed_edges
        if (b, a) in static_edges and (a, b) not in static_edges
    )
    combined = static_edges | observed_edges
    cycles = _find_cycles(combined)
    extra = sorted(observed_edges - static_edges)
    return LockOrderVerdict(
        consistent=not inversions and not cycles,
        inversions=inversions,
        combined_cycles=cycles,
        extra_edges=extra,
        observed=observed,
    )
