"""lock-order pass: the static lock-acquisition graph must be acyclic.

The pass builds the may-acquire edge set: an edge ``A -> B`` means some
code path acquires lock ``B`` while already holding lock ``A`` --
either a lexically nested ``with``, or a call made under ``A`` into a
function that (transitively, via the typed call graph) acquires ``B``.
Any cycle in that graph is a potential deadlock and an ERROR; each
reported cycle carries a witness chain for one of its edges.

Re-acquiring a *non-reentrant* ``threading.Lock`` while already holding
it (``A -> A`` on a plain Lock) is a guaranteed single-thread deadlock
and is reported separately; RLocks are exempt from self-edges.
"""

from __future__ import annotations

from repro.devtools.concurrency.framework import (
    CodeIssue,
    Severity,
    register_code_pass,
)
from repro.devtools.concurrency.model import ProjectModel

PASS_NAME = "lock-order"


def static_lock_graph(
    model: ProjectModel,
) -> dict[tuple[str, str], tuple[str, int, str]]:
    """``(held, acquired) -> (file, line, witness)`` over the whole model.

    Witnesses for call-mediated edges include the resolved call chain
    from the fixpoint, e.g. ``plan -> _evaluate -> autotune (...)``.
    """
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    may_acquire = model.may_acquire()
    for fn in model.all_functions():
        # Direct lexical nesting.
        for acq in fn.acquisitions:
            for held in acq.held:
                edges.setdefault(
                    (held.label, acq.label),
                    (acq.file, acq.line, f"{fn.qualname} (nested with)"),
                )
        # Calls made under a lock into code that may acquire more locks.
        for call in fn.calls:
            if not call.held:
                continue
            for callee in model.resolve_call(call, fn):
                for label, witness in may_acquire.get(
                    callee.qualname, {}
                ).items():
                    for held in call.held:
                        edges.setdefault(
                            (held.label, label),
                            (call.file, call.line, witness),
                        )
    return edges


def _find_cycles(edges: set[tuple[str, str]]) -> list[list[str]]:
    """Elementary cycles in a small digraph (DFS; fine at this scale)."""
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        for nxt in graph.get(node, ()):
            if nxt in on_path:
                i = path.index(nxt)
                cycle = path[i:]
                # Canonical rotation for dedup.
                k = cycle.index(min(cycle))
                canon = tuple(cycle[k:] + cycle[:k])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(canon))
            elif nxt not in visited_global:
                dfs(nxt, path + [nxt], on_path | {nxt})

    visited_global: set[str] = set()
    for start in sorted(graph):
        if start not in visited_global:
            dfs(start, [start], {start})
            visited_global.add(start)
    return cycles


@register_code_pass(
    PASS_NAME,
    description="static lock-acquisition graph is acyclic (no deadlocks)",
    category="concurrency",
)
def check_lock_order(model: ProjectModel) -> list[CodeIssue]:
    issues: list[CodeIssue] = []
    edges = static_lock_graph(model)
    # Self-reacquisition of a non-reentrant Lock: certain deadlock.
    for (a, b), (file, line, witness) in sorted(edges.items()):
        if a == b and model.lock_kind(a) != "RLock":
            issues.append(
                CodeIssue(
                    PASS_NAME,
                    f"non-reentrant lock {a} may be re-acquired while "
                    f"already held (via {witness})",
                    severity=Severity.ERROR,
                    file=file,
                    line=line,
                    symbol=a,
                )
            )
    cross = {(a, b) for (a, b) in edges if a != b}
    for cycle in _find_cycles(cross):
        pair = (cycle[0], cycle[1 % len(cycle)])
        file, line, witness = edges.get(pair, (None, None, ""))
        order = " -> ".join(cycle + [cycle[0]])
        issues.append(
            CodeIssue(
                PASS_NAME,
                f"lock-order cycle {order} (edge witness: {witness})",
                severity=Severity.ERROR,
                file=file,
                line=line,
                symbol=cycle[0],
            )
        )
    return issues
