"""guarded-by pass: declared fields must be accessed under their lock.

A field becomes *guarded* three ways (see
:mod:`~repro.devtools.concurrency.model`): a ``# guarded-by: _lock``
comment on its declaration, a module-level ``GUARDED_FIELDS`` registry,
or the analyzer's own seed for the core threaded classes.  Every
``self.<field>`` access in a method of that class must then sit inside
``with self.<lock>`` -- lexically or via an RLock already held by a
caller is *not* credited; the discipline is lexical on purpose, which
keeps both the analyzer and the code honest.

``__init__``/``__post_init__``/``__del__`` are exempt (the object is
not yet / no longer shared), as is any line carrying
``# lint-code: allow(guarded-by)``.
"""

from __future__ import annotations

from repro.devtools.concurrency.framework import (
    CodeIssue,
    Severity,
    register_code_pass,
)
from repro.devtools.concurrency.model import _EXEMPT_METHODS, ProjectModel

PASS_NAME = "guarded-by"


@register_code_pass(
    PASS_NAME,
    description="guarded fields only touched inside `with <their lock>`",
    category="concurrency",
)
def check_guarded_fields(model: ProjectModel) -> list[CodeIssue]:
    issues: list[CodeIssue] = []
    for fn in model.all_functions():
        cls = model.class_of(fn)
        if cls is None or not cls.guarded:
            continue
        if fn.name in _EXEMPT_METHODS:
            continue
        for access in fn.accesses:
            lock_attr = cls.guarded.get(access.field)
            if lock_attr is None:
                continue
            want = cls.lock_label(lock_attr)
            if any(h.label == want for h in access.held):
                continue
            if model.allowed(fn, access.line, PASS_NAME):
                continue
            verb = "written" if access.write else "read"
            issues.append(
                CodeIssue(
                    PASS_NAME,
                    f"field {cls.name}.{access.field} is guarded by "
                    f"{lock_attr} but {verb} without holding it",
                    severity=Severity.ERROR,
                    file=access.file,
                    line=access.line,
                    function=fn.qualname,
                    symbol=f"{cls.name}.{access.field}",
                )
            )
    return issues
