"""AST extraction: a concurrency-oriented model of the repo's modules.

:func:`build_model` parses a set of Python sources into a
:class:`ProjectModel` -- classes with their lock attributes and
guarded-field declarations, functions with every lock acquisition,
guarded-field access, call site, potentially-blocking operation and
thread spawn, each carrying the set of locks *lexically held* at that
point.  The analysis passes (:mod:`~repro.devtools.concurrency.guarded`
and friends) are thin reporters over this model.

Annotation conventions the extractor understands
------------------------------------------------

``# guarded-by: _lock``
    On a field assignment (``self._inflight = {}`` in ``__init__``, or a
    dataclass field declaration), declares that every read/write of the
    field inside the class must happen under ``with self._lock``.
``GUARDED_FIELDS = {"Class": {"field": "_lock"}}``
    A module-level registry declaring the same thing in bulk; the
    analyzer additionally seeds declarations for the core threaded
    classes (:data:`SEED_GUARDED_FIELDS`).
``# lint-code: allow(pass-name[, pass-name...]) -- reason``
    Suppresses findings of the named pass(es) anchored to that line --
    or, for ``blocking-under-lock``, findings whose guarding lock was
    acquired on that line.  ``allow(*)`` suppresses every pass.

The extractor is deliberately *lexical and typed-by-convention*: it
resolves calls through parameter annotations, ``self`` and constructor
assignments only, and treats a lock as held exactly inside the ``with``
block that acquires it.  That trades completeness for zero-configuration
precision -- the same trade the schedule analyzer makes.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "SEED_GUARDED_FIELDS",
    "HeldLock",
    "Acquisition",
    "FieldAccess",
    "CallSite",
    "BlockingOp",
    "ThreadSpawn",
    "GlobalMutation",
    "FunctionModel",
    "ClassModel",
    "ModuleModel",
    "ProjectModel",
    "build_model",
    "parse_module",
]

#: Analyzer-seeded guarded-field declarations for the core threaded
#: classes, unioned with in-source ``# guarded-by:`` comments and
#: module-level ``GUARDED_FIELDS`` registries.  Keeping the seed here
#: means the discipline is enforced even if a refactor drops a comment.
SEED_GUARDED_FIELDS: dict[str, dict[str, str]] = {
    "PlannerService": {
        "_inflight": "_inflight_lock",
        "_sweeps": "_inflight_lock",
        "_sweep_seq": "_inflight_lock",
        "_threads": "_inflight_lock",
        "_closed": "_inflight_lock",
    },
    "ServiceTelemetry": {
        "requests": "_lock",
        "errors": "_lock",
        "plans": "_lock",
        "plans_cold": "_lock",
        "plans_warm": "_lock",
        "plans_coalesced": "_lock",
        "plan_s": "_lock",
        "sweeps_started": "_lock",
        "sweeps_completed": "_lock",
        "sweeps_failed": "_lock",
        "by_endpoint": "_lock",
    },
    "CostCache": {
        "_data": "_lock",
        "_disk_keys": "_lock",
    },
    "SqliteCostStore": {
        "_all_conns": "_conns_lock",
        "_gen": "_conns_lock",
    },
}

#: Methods where unguarded access to guarded fields is allowed: the
#: object is not published to other threads during construction or
#: final teardown.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__"})

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_ALLOW_RE = re.compile(r"#\s*lint-code:\s*allow\(([^)]*)\)")

#: ``os`` functions that hit the filesystem.
_OS_FILE_IO = frozenset(
    {
        "replace", "rename", "unlink", "remove", "makedirs", "mkdir",
        "open", "fdopen", "fsync", "walk", "listdir", "stat",
    }
)
#: sqlite cursor/connection entry points.
_SQLITE_CALLS = frozenset({"execute", "executemany", "executescript", "commit"})

_THREADISH_RE = re.compile(r"thread", re.IGNORECASE)
_EVENTISH_RE = re.compile(r"event|done|ready|barrier|flag|cond", re.IGNORECASE)


@dataclass(frozen=True)
class HeldLock:
    """One lock lexically held: its label and the acquiring line."""

    label: str
    line: int


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>`` acquisition and the locks held around it."""

    label: str
    file: str
    line: int
    function: str
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class FieldAccess:
    """One ``self.<field>`` read or write inside a method."""

    cls: str
    field: str
    file: str
    line: int
    function: str
    write: bool
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class CallSite:
    """One call, with enough shape to resolve it within the project.

    ``receiver`` is ``"self"``, a local/attribute root name, or ``None``
    for a bare call; ``receiver_type`` the resolved class name when the
    extractor could type the receiver.
    """

    name: str
    receiver: str | None
    receiver_type: str | None
    file: str
    line: int
    function: str
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class BlockingOp:
    """One potentially-blocking operation (I/O, subprocess, join, wait)."""

    kind: str  # subprocess | sqlite | file-io | join | wait | sleep
    detail: str
    file: str
    line: int
    function: str
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class ThreadSpawn:
    """One ``threading.Thread(...)`` construction."""

    file: str
    line: int
    function: str
    daemon: bool
    tracked: bool
    target: str | None


@dataclass(frozen=True)
class GlobalMutation:
    """One mutation of a module-level name inside a function."""

    name: str
    file: str
    line: int
    function: str
    held: tuple[HeldLock, ...] = ()


@dataclass
class FunctionModel:
    """Everything the passes need to know about one function/method."""

    qualname: str
    name: str
    cls: str | None
    module: str
    file: str
    line: int
    is_property: bool = False
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingOp] = field(default_factory=list)
    accesses: list[FieldAccess] = field(default_factory=list)
    spawns: list[ThreadSpawn] = field(default_factory=list)
    global_mutations: list[GlobalMutation] = field(default_factory=list)


@dataclass
class ClassModel:
    """One class: its locks, guarded fields, methods and inferred types."""

    name: str
    module: str
    file: str
    line: int
    locks: dict[str, str] = field(default_factory=dict)  # attr -> Lock|RLock
    guarded: dict[str, str] = field(default_factory=dict)  # field -> lock attr
    methods: dict[str, FunctionModel] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)
    thread_local_attrs: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    event_attrs: set[str] = field(default_factory=set)

    @property
    def has_close(self) -> bool:
        return "close" in self.methods

    def lock_label(self, attr: str) -> str:
        return f"{self.name}.{attr}"


@dataclass
class ModuleModel:
    """One parsed module and its line-level annotations."""

    name: str
    path: str
    classes: dict[str, ClassModel] = field(default_factory=dict)
    functions: dict[str, FunctionModel] = field(default_factory=dict)
    module_locks: dict[str, str] = field(default_factory=dict)
    module_mutables: set[str] = field(default_factory=set)
    allow: dict[int, set[str]] = field(default_factory=dict)
    thread_targets: set[str] = field(default_factory=set)

    def allowed(self, line: int | None, pass_name: str) -> bool:
        if line is None:
            return False
        allowed = self.allow.get(line, ())
        return pass_name in allowed or "*" in allowed


# -- comment annotations -----------------------------------------------------


def _scan_comments(source: str) -> tuple[dict[int, str], dict[int, set[str]]]:
    """Per-line ``guarded-by`` lock names and ``allow`` pass-name sets."""
    guarded: dict[int, str] = {}
    allow: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        m = _GUARDED_RE.search(text)
        if m:
            guarded[lineno] = m.group(1)
        m = _ALLOW_RE.search(text)
        if m:
            names = {s.strip() for s in m.group(1).split(",") if s.strip()}
            allow.setdefault(lineno, set()).update(names)
    return guarded, allow


# -- small AST helpers -------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as text for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _value_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return ""


def _lock_kind(text: str) -> str | None:
    """``Lock``/``RLock`` if the expression constructs or declares a
    threading lock (covers both ``threading.Lock()`` calls and
    ``field(default_factory=threading.RLock)`` references)."""
    if re.search(r"\bRLock\b", text):
        return "RLock"
    if re.search(r"\bLock\b", text):
        return "Lock"
    return None


def _known_class_in(text: str, class_names: set[str]) -> str | None:
    """First known class name appearing as a word in ``text``."""
    for token in re.findall(r"[A-Za-z_]\w*", text):
        if token in class_names:
            return token
    return None


# -- phase A: class/module skeletons ----------------------------------------


def _collect_class_names(trees: list[tuple[str, ast.Module]]) -> set[str]:
    names: set[str] = set()
    for _, tree in trees:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                names.add(node.name)
    return names


def _scan_class(
    node: ast.ClassDef,
    module: ModuleModel,
    path: str,
    guarded_comments: dict[int, str],
    class_names: set[str],
) -> ClassModel:
    cls = ClassModel(name=node.name, module=module.name, file=path, line=node.lineno)
    for stmt in node.body:
        # Dataclass-style declarations: ``x: T = field(...)`` / ``x = ...``.
        target_name: str | None = None
        value_text = ""
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target_name = stmt.target.id
            value_text = _value_text(stmt.value) + " " + _value_text(stmt.annotation)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target_name = stmt.targets[0].id
            value_text = _value_text(stmt.value)
        if target_name is not None:
            kind = _lock_kind(value_text)
            if "threading" in value_text and kind:
                cls.locks[target_name] = kind
            elif "threading.local(" in value_text:
                cls.thread_local_attrs.append(target_name)
            elif "Event" in value_text:
                cls.event_attrs.add(target_name)
            else:
                typed = _known_class_in(value_text, class_names)
                if typed:
                    cls.attr_types[target_name] = typed
            lock_name = guarded_comments.get(stmt.lineno)
            if lock_name:
                cls.guarded[target_name] = lock_name
        # Methods: find ``self.X = ...`` attribute bindings.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                if _value_text(deco).endswith("property"):
                    cls.properties.add(stmt.name)
            param_types: dict[str, str] = {}
            for arg in (
                list(stmt.args.posonlyargs)
                + list(stmt.args.args)
                + list(stmt.args.kwonlyargs)
            ):
                if arg.annotation is not None:
                    typed = _known_class_in(
                        _value_text(arg.annotation), class_names
                    )
                    if typed:
                        param_types[arg.arg] = typed
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for tgt in targets:
                    if not (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        continue
                    attr = tgt.attr
                    value_text = _value_text(sub.value)
                    kind = _lock_kind(value_text)
                    if "threading" in value_text and kind:
                        cls.locks[attr] = kind
                    elif "threading.local(" in value_text:
                        cls.thread_local_attrs.append(attr)
                    elif "threading.Event(" in value_text:
                        cls.event_attrs.add(attr)
                    else:
                        typed = _known_class_in(value_text, class_names)
                        if typed is None and isinstance(sub.value, ast.Name):
                            typed = param_types.get(sub.value.id)
                        if typed and attr not in cls.attr_types:
                            cls.attr_types[attr] = typed
                    lock_name = guarded_comments.get(sub.lineno)
                    if lock_name:
                        cls.guarded[attr] = lock_name
    # Analyzer seed + any module-level GUARDED_FIELDS merged later.
    for fld, lock in SEED_GUARDED_FIELDS.get(cls.name, {}).items():
        cls.guarded.setdefault(fld, lock)
    return cls


def _scan_module_level(
    tree: ast.Module, module: ModuleModel, class_names: set[str]
) -> None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            name = node.targets[0].id
            value_text = _value_text(node.value)
            kind = _lock_kind(value_text)
            if "threading" in value_text and kind:
                module.module_locks[name] = kind
            elif isinstance(node.value, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(node.value, ast.Call)
                and _dotted(node.value.func) in ("list", "dict", "set")
            ):
                module.module_mutables.add(name)
            if name == "GUARDED_FIELDS":
                try:
                    declared = ast.literal_eval(node.value)
                except (ValueError, SyntaxError):
                    declared = None
                if isinstance(declared, dict):
                    for cls_name, fields in declared.items():
                        cls = module.classes.get(cls_name)
                        if cls is not None and isinstance(fields, dict):
                            cls.guarded.update(fields)


# -- phase B: function extraction --------------------------------------------


class _FunctionExtractor:
    """Walks one function body tracking lexically-held locks."""

    def __init__(
        self,
        fn: FunctionModel,
        cls: ClassModel | None,
        module: ModuleModel,
        class_names: set[str],
        classes_by_name: dict[str, ClassModel],
    ) -> None:
        self.fn = fn
        self.cls = cls
        self.module = module
        self.class_names = class_names
        self.classes_by_name = classes_by_name
        self.local_types: dict[str, str] = {}
        self.thread_vars: set[str] = set()
        self.event_vars: set[str] = set()
        self.pending_spawns: list[tuple[str | None, ast.Call]] = []
        self.global_names: set[str] = set()

    # -- typing helpers ---------------------------------------------------

    def seed_params(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self.cls is not None:
            self.local_types["self"] = self.cls.name
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is not None:
                typed = _known_class_in(
                    _value_text(arg.annotation), self.class_names
                )
                if typed:
                    self.local_types[arg.arg] = typed

    def _receiver_type(self, recv: ast.expr) -> str | None:
        if isinstance(recv, ast.Name):
            return self.local_types.get(recv.id)
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and self.cls is not None
        ):
            return self.cls.attr_types.get(recv.attr)
        return None

    def _lock_label(self, expr: ast.expr) -> str | None:
        """The lock label acquired by ``with <expr>``, if it is a lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
        ):
            root = expr.value.id
            if root == "self" and self.cls is not None:
                if expr.attr in self.cls.locks:
                    return self.cls.lock_label(expr.attr)
            else:
                typed = self.local_types.get(root)
                cls = self.classes_by_name.get(typed) if typed else None
                if cls is not None and expr.attr in cls.locks:
                    return cls.lock_label(expr.attr)
        elif isinstance(expr, ast.Name):
            if expr.id in self.module.module_locks:
                return f"{self.module.name}.{expr.id}"
            typed = self.local_types.get(expr.id)
            if typed in ("Lock", "RLock"):
                return f"{self.fn.qualname}.<local {expr.id}>"
        return None

    # -- statement walk ---------------------------------------------------

    def walk_body(self, stmts: Iterable[ast.stmt], held: tuple[HeldLock, ...]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, held)

    def walk_stmt(self, stmt: ast.stmt, held: tuple[HeldLock, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: runs later, under whatever locks *it*
            # takes -- never under the lexically-enclosing ones.
            _extract_function(
                stmt,
                self.cls,
                self.module,
                self.class_names,
                self.classes_by_name,
                qual_prefix=self.fn.qualname,
            )
            return
        if isinstance(stmt, ast.With):
            new_held = held
            for item in stmt.items:
                self.visit_expr(item.context_expr, new_held)
                label = self._lock_label(item.context_expr)
                if label is not None:
                    self.fn.acquisitions.append(
                        Acquisition(
                            label=label,
                            file=self.fn.file,
                            line=item.context_expr.lineno,
                            function=self.fn.qualname,
                            held=new_held,
                        )
                    )
                    new_held = new_held + (
                        HeldLock(label, item.context_expr.lineno),
                    )
            self.walk_body(stmt.body, new_held)
            return
        if isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self.visit_assign(stmt, held)
            # Fall through: child statements handled below (none).
        # Visit this statement's own expressions, then recurse into
        # child statement blocks with the same held set.
        for expr in self._stmt_exprs(stmt):
            self.visit_expr(expr, held)
        for block in self._stmt_blocks(stmt):
            self.walk_body(block, held)

    @staticmethod
    def _stmt_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return []  # handled by visit_assign
        if isinstance(stmt, ast.With):
            return []  # handled by walk_stmt
        exprs: list[ast.expr] = []
        for name in ("value", "test", "iter", "exc", "cause", "msg"):
            node = getattr(stmt, name, None)
            if isinstance(node, ast.expr):
                exprs.append(node)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            pass  # already collected via "value"
        return exprs

    def visit_assign(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        held: tuple[HeldLock, ...],
    ) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]
        if stmt.value is not None:
            self.visit_expr(stmt.value, held)
        for tgt in targets:
            self._visit_target(tgt, held)
        # Local type/thread/event inference for simple name bindings.
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.value is not None
        ):
            name = stmt.targets[0].id
            value_text = _value_text(stmt.value)
            if re.search(r"\bthreading\.Thread\(", value_text):
                self.thread_vars.add(name)
            elif re.search(r"\bthreading\.Event\(", value_text):
                self.event_vars.add(name)
            else:
                typed = None
                if isinstance(stmt.value, ast.Call):
                    callee = _dotted(stmt.value.func)
                    if callee in self.class_names:
                        typed = callee
                    else:
                        # Constructor-ish classmethods: CostCache.open(...)
                        root = (callee or "").split(".")[0]
                        if root in self.class_names:
                            typed = root
                elif isinstance(stmt.value, ast.Name):
                    typed = self.local_types.get(stmt.value.id)
                elif isinstance(stmt.value, ast.Attribute):
                    typed = self._receiver_type(stmt.value)
                elif isinstance(stmt.value, ast.IfExp):
                    for arm in (stmt.value.body, stmt.value.orelse):
                        t = _known_class_in(_value_text(arm), self.class_names)
                        if t:
                            typed = t
                            break
                if typed:
                    self.local_types[name] = typed
            # Module-global mutation: plain rebinding of a declared global.
            if name in self.global_names:
                self.fn.global_mutations.append(
                    GlobalMutation(
                        name=name,
                        file=self.fn.file,
                        line=stmt.lineno,
                        function=self.fn.qualname,
                        held=held,
                    )
                )
        # Subscript/attribute mutation of module-level mutables.
        for tgt in targets:
            root = tgt
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root is not tgt
                and root.id in self.module.module_mutables
            ):
                self.fn.global_mutations.append(
                    GlobalMutation(
                        name=root.id,
                        file=self.fn.file,
                        line=stmt.lineno,
                        function=self.fn.qualname,
                        held=held,
                    )
                )

    def _visit_target(self, tgt: ast.expr, held: tuple[HeldLock, ...]) -> None:
        """Record an assignment target: ``self.f = v``, ``self.f[k] = v``
        and ``self.f.attr = v`` all count as *writes* to field ``f``."""
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._visit_target(elt, held)
            return
        node = tgt
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Subscript):
                self.visit_expr(node.slice, held)
            if isinstance(node.value, ast.Name):
                break
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
        ):
            self.fn.accesses.append(
                FieldAccess(
                    cls=self.cls.name,
                    field=node.attr,
                    file=self.fn.file,
                    line=node.lineno,
                    function=self.fn.qualname,
                    write=True,
                    held=held,
                )
            )
            return
        if not isinstance(node, ast.Name):
            self.visit_expr(node, held)

    # -- expression walk --------------------------------------------------

    def visit_expr(self, expr: ast.expr, held: tuple[HeldLock, ...]) -> None:
        for node in self._walk_no_lambda(expr):
            if isinstance(node, ast.Attribute):
                self._visit_attribute(node, held)
            elif isinstance(node, ast.Call):
                self._visit_call(node, held)

    def _walk_no_lambda(self, expr: ast.expr) -> Iterator[ast.AST]:
        """ast.walk that does not descend into lambda bodies (deferred
        execution -- a lambda body does not run under the current locks);
        the body is extracted separately with an empty held set."""
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                self._extract_lambda(node)
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _extract_lambda(self, node: ast.Lambda) -> None:
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Attribute):
                self._visit_attribute(sub, ())
            elif isinstance(sub, ast.Call):
                self._visit_call(sub, ())

    def _visit_attribute(self, node: ast.Attribute, held: tuple[HeldLock, ...]) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        if self.cls is None:
            return
        attr = node.attr
        # Property reads count as calls (the property body runs here).
        if attr in self.cls.properties and isinstance(node.ctx, ast.Load):
            self.fn.calls.append(
                CallSite(
                    name=attr,
                    receiver="self",
                    receiver_type=self.cls.name,
                    file=self.fn.file,
                    line=node.lineno,
                    function=self.fn.qualname,
                    held=held,
                )
            )
        self.fn.accesses.append(
            FieldAccess(
                cls=self.cls.name,
                field=attr,
                file=self.fn.file,
                line=node.lineno,
                function=self.fn.qualname,
                write=isinstance(node.ctx, (ast.Store, ast.Del)),
                held=held,
            )
        )

    def _blocking(self, kind: str, detail: str, line: int, held) -> None:
        self.fn.blocking.append(
            BlockingOp(
                kind=kind,
                detail=detail,
                file=self.fn.file,
                line=line,
                function=self.fn.qualname,
                held=held,
            )
        )

    def _visit_call(self, node: ast.Call, held: tuple[HeldLock, ...]) -> None:
        func = node.func
        line = node.lineno
        # Thread spawn?
        callee = _dotted(func)
        if callee is not None and (
            callee == "threading.Thread" or callee.endswith(".Thread")
            or callee == "Thread"
        ):
            self._record_spawn(node, line)
            return
        if isinstance(func, ast.Name):
            name = func.id
            if name == "open":
                self._blocking("file-io", "open(...)", line, held)
            self.fn.calls.append(
                CallSite(
                    name=name,
                    receiver=None,
                    receiver_type=None,
                    file=self.fn.file,
                    line=line,
                    function=self.fn.qualname,
                    held=held,
                )
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        recv = func.value
        recv_text = _value_text(recv)
        recv_root = recv_text.split(".")[0].split("(")[0] if recv_text else None
        if recv_root == "subprocess" or recv_text.startswith("subprocess."):
            self._blocking("subprocess", f"subprocess.{method}", line, held)
        elif method in _SQLITE_CALLS:
            self._blocking("sqlite", f"{recv_text}.{method}(...)", line, held)
        elif recv_root == "os" and method in _OS_FILE_IO:
            self._blocking("file-io", f"os.{method}(...)", line, held)
        elif recv_root == "sqlite3" and method == "connect":
            self._blocking("sqlite", "sqlite3.connect(...)", line, held)
        elif recv_root == "time" and method == "sleep":
            self._blocking("sleep", "time.sleep(...)", line, held)
        elif method == "join" and self._is_threadish(recv):
            self._blocking("join", f"{recv_text}.join(...)", line, held)
        elif method == "wait" and self._is_eventish(recv):
            self._blocking("wait", f"{recv_text}.wait(...)", line, held)
        self.fn.calls.append(
            CallSite(
                # Full receiver text: ``self.cache.save`` must not be
                # confused with a ``self.save`` method call.
                name=method,
                receiver=recv_text or recv_root,
                receiver_type=self._receiver_type(recv),
                file=self.fn.file,
                line=line,
                function=self.fn.qualname,
                held=held,
            )
        )

    def _is_threadish(self, recv: ast.expr) -> bool:
        if isinstance(recv, ast.Name) and recv.id in self.thread_vars:
            return True
        text = _value_text(recv)
        return bool(_THREADISH_RE.search(text))

    def _is_eventish(self, recv: ast.expr) -> bool:
        if isinstance(recv, ast.Name) and recv.id in self.event_vars:
            return True
        if isinstance(recv, ast.Attribute):
            # Attribute typed Event anywhere in the project (e.g. the
            # ``done`` field of an in-flight record dataclass).
            for cls in self.classes_by_name.values():
                if recv.attr in cls.event_attrs:
                    return True
        text = _value_text(recv)
        return bool(_EVENTISH_RE.search(text))

    def _record_spawn(self, node: ast.Call, line: int) -> None:
        daemon = False
        target: str | None = None
        for kw in node.keywords:
            if kw.arg == "daemon":
                daemon = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value
                )
            elif kw.arg == "target":
                target = _dotted(kw.value)
                if target is not None:
                    short = target.split(".")[-1]
                    self.module.thread_targets.add(short)
        self.pending_spawns.append((target, node))
        # tracked-ness is resolved in finish() once the whole body is seen

    def finish(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Resolve thread-spawn tracking after the full body was walked."""
        for target, call in self.pending_spawns:
            daemon = any(
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value
                for kw in call.keywords
            )
            self.fn.spawns.append(
                ThreadSpawn(
                    file=self.fn.file,
                    line=call.lineno,
                    function=self.fn.qualname,
                    daemon=daemon,
                    tracked=_spawn_is_tracked(node, call),
                    target=target,
                )
            )


def _spawn_is_tracked(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef, spawn: ast.Call
) -> bool:
    """Whether the spawned thread object escapes into tracked state.

    Tracked means: the variable the Thread is bound to is passed as an
    argument to some call (``self._threads.append(t)``, ``track(t)``),
    stored into an attribute/subscript/list, or returned.  A thread that
    is only ``.start()``-ed (or never bound at all) is untracked.
    """
    # Find the binding: ``name = threading.Thread(...)``.
    bound: str | None = None
    for sub in ast.walk(fn_node):
        if (
            isinstance(sub, ast.Assign)
            and sub.value is spawn
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
        ):
            bound = sub.targets[0].id
            break
    if bound is None:
        return False
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Call):
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if isinstance(arg, ast.Name) and arg.id == bound:
                    return True
        elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Name):
            if sub.value.id == bound and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in sub.targets
            ):
                return True
        elif isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name):
            if sub.value.id == bound:
                return True
    return False


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ClassModel | None,
    module: ModuleModel,
    class_names: set[str],
    classes_by_name: dict[str, ClassModel],
    qual_prefix: str | None = None,
) -> FunctionModel:
    if qual_prefix is not None:
        qualname = f"{qual_prefix}.<locals>.{node.name}"
    elif cls is not None:
        qualname = f"{module.name}.{cls.name}.{node.name}"
    else:
        qualname = f"{module.name}.{node.name}"
    fn = FunctionModel(
        qualname=qualname,
        name=node.name,
        cls=cls.name if cls is not None else None,
        module=module.name,
        file=module.path,
        line=node.lineno,
        is_property=any(
            _value_text(d).endswith("property") for d in node.decorator_list
        ),
    )
    extractor = _FunctionExtractor(fn, cls, module, class_names, classes_by_name)
    extractor.seed_params(node)
    extractor.walk_body(node.body, ())
    extractor.finish(node)
    if cls is not None and qual_prefix is None:
        cls.methods[node.name] = fn
    elif qual_prefix is None:
        module.functions[node.name] = fn
    else:
        # Nested functions live beside their parent under a locals name.
        module.functions[f"{qualname}"] = fn
    return fn


# -- project model -----------------------------------------------------------


class ProjectModel:
    """Every analyzed module plus cross-module resolution helpers."""

    def __init__(self, modules: list[ModuleModel]) -> None:
        self.modules = modules
        self.classes: dict[str, ClassModel] = {}
        self._module_by_name: dict[str, ModuleModel] = {}
        for mod in modules:
            self._module_by_name[mod.name] = mod
            for cls in mod.classes.values():
                self.classes.setdefault(cls.name, cls)
        self._functions_by_name: dict[str, list[FunctionModel]] = {}
        for mod in modules:
            for fn in mod.functions.values():
                self._functions_by_name.setdefault(fn.name, []).append(fn)
        self._may_acquire: dict[str, dict[str, str]] | None = None
        self._may_block: dict[str, dict[str, str]] | None = None

    # -- iteration / lookup ----------------------------------------------

    def all_functions(self) -> Iterator[FunctionModel]:
        for mod in self.modules:
            yield from mod.functions.values()
            for cls in mod.classes.values():
                yield from cls.methods.values()

    def module_of(self, fn: FunctionModel) -> ModuleModel:
        return self._module_by_name[fn.module]

    def class_of(self, fn: FunctionModel) -> ClassModel | None:
        return self.classes.get(fn.cls) if fn.cls else None

    def allowed(self, fn: FunctionModel, line: int | None, pass_name: str) -> bool:
        return self.module_of(fn).allowed(line, pass_name)

    def lock_kind(self, label: str) -> str | None:
        """``Lock``/``RLock`` for a ``Class.attr`` or module lock label."""
        head, _, attr = label.rpartition(".")
        cls = self.classes.get(head.rpartition(".")[2] or head)
        if cls is not None and attr in cls.locks:
            return cls.locks[attr]
        mod = self._module_by_name.get(head)
        if mod is not None and attr in mod.module_locks:
            return mod.module_locks[attr]
        return None

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: CallSite, fn: FunctionModel) -> list[FunctionModel]:
        """The function(s) a call site may invoke, by local typing.

        ``self.m()`` resolves within the caller's class, a typed
        receiver within its class, and a bare name against module-level
        functions of that name anywhere in the analyzed set.  Unresolved
        calls return ``[]`` -- the analyzer prefers silence to guessing.
        """
        if call.receiver == "self" and fn.cls is not None:
            cls = self.classes.get(fn.cls)
            if cls is not None:
                m = cls.methods.get(call.name)
                return [m] if m is not None else []
            return []
        if call.receiver_type is not None:
            cls = self.classes.get(call.receiver_type)
            if cls is not None:
                m = cls.methods.get(call.name)
                return [m] if m is not None else []
            return []
        if call.receiver is None:
            return [
                f
                for f in self._functions_by_name.get(call.name, [])
                if f.cls is None and "<locals>" not in f.qualname
            ]
        return []

    # -- fixpoints ---------------------------------------------------------

    def may_acquire(self) -> dict[str, dict[str, str]]:
        """func qualname -> {lock label: witness call chain}.

        Computed as a fixpoint over the typed call graph: a function may
        acquire every lock it takes directly plus everything its
        resolvable callees may acquire.
        """
        if self._may_acquire is None:
            self._may_acquire = self._fixpoint(
                lambda fn: {a.label: fn.qualname for a in fn.acquisitions}
            )
        return self._may_acquire

    def may_block(self) -> dict[str, dict[str, str]]:
        """func qualname -> {blocking kind: witness call chain}."""
        if self._may_block is None:
            self._may_block = self._fixpoint(
                lambda fn: {
                    b.kind: f"{fn.qualname} ({b.detail})" for b in fn.blocking
                }
            )
        return self._may_block

    def _fixpoint(self, seed) -> dict[str, dict[str, str]]:
        facts: dict[str, dict[str, str]] = {
            fn.qualname: dict(seed(fn)) for fn in self.all_functions()
        }
        functions = list(self.all_functions())
        changed = True
        while changed:
            changed = False
            for fn in functions:
                mine = facts[fn.qualname]
                for call in fn.calls:
                    for callee in self.resolve_call(call, fn):
                        for key, witness in facts.get(
                            callee.qualname, {}
                        ).items():
                            if key not in mine:
                                mine[key] = f"{fn.qualname} -> {witness}"
                                changed = True
        return facts


# -- entry points ------------------------------------------------------------


def parse_module(source: str, path: str, class_names: set[str] | None = None) -> ModuleModel:
    """Parse one module's source into a :class:`ModuleModel`.

    ``class_names`` extends the set of class names considered "known"
    for receiver typing (normally supplied by :func:`build_model` from
    the whole file set); the module's own classes are always known.
    """
    tree = ast.parse(source, filename=path)
    name = os.path.splitext(os.path.basename(path))[0]
    guarded_comments, allow = _scan_comments(source)
    module = ModuleModel(name=name, path=path, allow=allow)
    known = set(class_names or ())
    known.update(
        n.name for n in tree.body if isinstance(n, ast.ClassDef)
    )
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            module.classes[node.name] = _scan_class(
                node, module, path, guarded_comments, known
            )
    _scan_module_level(tree, module, known)
    classes_by_name = dict(module.classes)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = module.classes[node.name]
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _extract_function(
                        stmt, cls, module, known, classes_by_name
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_function(node, None, module, known, classes_by_name)
    return module


def build_model(paths: Iterable[str | os.PathLike]) -> ProjectModel:
    """Parse every ``.py`` file under ``paths`` into one project model.

    ``paths`` may mix files and directories; directories are swept
    recursively in sorted order, skipping ``__pycache__``.  All modules
    are parsed twice conceptually: a first sweep collects every class
    name so receiver typing works across modules, then each module is
    extracted in full.
    """
    files: list[str] = []
    for p in paths:
        p = os.fspath(p)
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for n in sorted(names):
                    if n.endswith(".py"):
                        files.append(os.path.join(root, n))
        elif p.endswith(".py"):
            files.append(p)
    sources = []
    class_names: set[str] = set()
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        sources.append((path, source))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        class_names.update(
            n.name for n in tree.body if isinstance(n, ast.ClassDef)
        )
    modules = []
    for path, source in sources:
        rel = os.path.relpath(path)
        modules.append(parse_module(source, rel, class_names))
    # Cross-module resolution needs one model over everything; the
    # per-module class maps were built with the global name set already.
    project = ProjectModel(modules)
    return project
