"""Pass framework for the concurrency lint over the repo's own sources.

This is the code-level sibling of the schedule-IR pass framework
(:mod:`repro.schedules.analysis.framework`), and deliberately mirrors
its shape: registered passes, severity-ranked structured findings, a
dependency-gated pipeline runner, aligned-table and JSON rendering.
The differences follow from the subject matter -- a pass here analyzes
a whole :class:`~repro.devtools.concurrency.model.ProjectModel` (every
module swept together, because lock order and call resolution are
cross-module properties), and a finding anchors to ``file:line`` plus
the enclosing function instead of stage/step/tag.

Writing a new pass
------------------

Register a function taking the project model and returning issues; it
becomes available to :func:`run_code_analysis` and the ``repro
lint-code`` CLI immediately::

    from repro.devtools.concurrency.framework import (
        CodeIssue, Severity, register_code_pass,
    )

    @register_code_pass(
        "my-pass",
        description="one-line summary for listings",
        category="concurrency",     # concurrency | hygiene
        requires=(),                # skip when these passes found errors
    )
    def check_my_property(model):
        issues = []
        for fn in model.all_functions():
            if _violates(fn):
                issues.append(CodeIssue(
                    "my-pass",
                    "what went wrong, in one sentence",
                    severity=Severity.WARNING,
                    file=fn.file,
                    line=fn.line,
                    function=fn.qualname,
                ))
        return issues

Passes must be *pure* observers of the model: they may call its
resolution/fixpoint helpers but never mutate it.  Severity semantics
match the schedule analyzer: ``ERROR`` means the code violates the
declared locking discipline (``repro lint-code`` exits non-zero);
``WARNING`` means a hazard worth a human look (``--strict`` promotes it
to a failure); ``INFO`` is advisory.  Respect the allowlist: a finding
whose line -- or whose guarding lock's acquisition line -- carries a
``# lint-code: allow(<pass-name>) -- reason`` comment is suppressed by
convention, via :meth:`ProjectModel.allowed
<repro.devtools.concurrency.model.ProjectModel.allowed>`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.schedules.analysis.framework import Severity

if TYPE_CHECKING:
    from repro.devtools.concurrency.model import ProjectModel

__all__ = [
    "Severity",
    "CodeIssue",
    "CodePass",
    "CodeAnalysisReport",
    "register_code_pass",
    "get_code_pass",
    "available_code_passes",
    "run_code_analysis",
    "format_code_issue_table",
]


@dataclass(frozen=True)
class CodeIssue:
    """One finding of a code-analysis pass, with file/line provenance.

    ``function`` is the qualified name of the enclosing function or
    method (``module.Class.method``); ``symbol`` names the field, lock
    or thread the finding is about.  Both are optional -- module-wide
    findings leave them ``None``.
    """

    pass_name: str
    message: str
    severity: Severity = Severity.ERROR
    file: str | None = None
    line: int | None = None
    function: str | None = None
    symbol: str | None = None

    def __str__(self) -> str:
        where = ""
        if self.file is not None:
            where = f" {self.file}"
            if self.line is not None:
                where += f":{self.line}"
        sev = "" if self.severity is Severity.ERROR else f" {self.severity.value}:"
        fn = f" [{self.function}]" if self.function else ""
        return f"[{self.pass_name}]{sev}{where}{fn} {self.message}"


#: A pass body: ``(model) -> issues``.
CodePassBody = Callable[["ProjectModel"], list[CodeIssue]]


@dataclass(frozen=True)
class CodePass:
    """One registered code-analysis pass: metadata plus the body.

    ``requires`` names passes whose ERROR findings make this pass
    meaningless; :func:`run_code_analysis` skips it with a recorded
    reason instead of reporting noise.
    """

    name: str
    fn: CodePassBody
    description: str = ""
    category: str = "concurrency"
    requires: tuple[str, ...] = ()

    def run(self, model: "ProjectModel") -> list[CodeIssue]:
        return self.fn(model)


_CODE_PASS_REGISTRY: dict[str, CodePass] = {}

#: Modules whose import registers the built-in passes, in report order.
#: Imported lazily so this module has no import-time dependency on the
#: pass bodies (which import it back).
_BUILTIN_PASS_MODULES = (
    "repro.devtools.concurrency.guarded",
    "repro.devtools.concurrency.lockorder",
    "repro.devtools.concurrency.blocking",
    "repro.devtools.concurrency.hygiene",
)
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    for mod in _BUILTIN_PASS_MODULES:
        importlib.import_module(mod)
    _builtin_loaded = True


def register_code_pass(
    name: str,
    *,
    description: str = "",
    category: str = "concurrency",
    requires: Sequence[str] = (),
) -> Callable[[CodePassBody], CodePassBody]:
    """Decorator registering a code-analysis pass under ``name``."""

    def deco(fn: CodePassBody) -> CodePassBody:
        if name in _CODE_PASS_REGISTRY:
            raise ValueError(f"code analysis pass {name!r} already registered")
        _CODE_PASS_REGISTRY[name] = CodePass(
            name=name,
            fn=fn,
            description=description,
            category=category,
            requires=tuple(requires),
        )
        return fn

    return deco


def get_code_pass(name: str) -> CodePass:
    """Look up a registered code pass by name."""
    _ensure_builtin()
    try:
        return _CODE_PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown code analysis pass {name!r}; "
            f"registered: {available_code_passes()}"
        ) from None


def available_code_passes() -> list[str]:
    """Names of every registered code pass, in registration order."""
    _ensure_builtin()
    return list(_CODE_PASS_REGISTRY)


# -- reports -----------------------------------------------------------------


def format_code_issue_table(issues: Iterable[CodeIssue]) -> str:
    """Render issues as an aligned ASCII table (rows in the order given)."""
    rows = [("pass", "severity", "location", "function", "message")]
    for i in issues:
        loc = "-"
        if i.file is not None:
            loc = i.file if i.line is None else f"{i.file}:{i.line}"
        rows.append(
            (
                i.pass_name,
                i.severity.value,
                loc,
                i.function or "-",
                i.message,
            )
        )
    widths = [max(len(r[c]) for r in rows) for c in range(4)]
    lines = []
    for r in rows:
        head = "  ".join(r[c].ljust(widths[c]) for c in range(4))
        lines.append(f"{head}  {r[4]}".rstrip())
    lines.insert(1, "  ".join("-" * w for w in widths) + "  " + "-" * 7)
    return "\n".join(lines)


@dataclass
class CodeAnalysisReport:
    """Everything one :func:`run_code_analysis` invocation found.

    ``skipped`` maps pass name -> reason for passes whose declared
    dependencies reported errors.
    """

    files: tuple[str, ...] = ()
    issues: list[CodeIssue] = field(default_factory=list)
    passes_run: tuple[str, ...] = ()
    skipped: dict[str, str] = field(default_factory=dict)

    def by_severity(self, severity: Severity) -> list[CodeIssue]:
        return [i for i in self.issues if i.severity is severity]

    @property
    def errors(self) -> list[CodeIssue]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[CodeIssue]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos do not fail an analysis)."""
        return not self.errors

    def format(self) -> str:
        lines = [
            f"{len(self.files)} file(s): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} info "
            f"({len(self.passes_run)} passes run)"
        ]
        if self.issues:
            ordered = sorted(
                self.issues,
                key=lambda i: (-i.severity.rank, i.file or "", i.line or 0),
            )
            lines.append(format_code_issue_table(ordered))
        for name, reason in self.skipped.items():
            lines.append(f"skipped {name}: {reason}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "files": list(self.files),
            "ok": self.ok,
            "passes_run": list(self.passes_run),
            "skipped": dict(self.skipped),
            "issues": [
                {
                    "pass": i.pass_name,
                    "severity": i.severity.value,
                    "file": i.file,
                    "line": i.line,
                    "function": i.function,
                    "symbol": i.symbol,
                    "message": i.message,
                }
                for i in self.issues
            ],
        }


def run_code_analysis(
    model: "ProjectModel",
    passes: Sequence[str | CodePass] | None = None,
) -> CodeAnalysisReport:
    """Run a code-analysis pipeline and collect every finding.

    Runs every requested pass -- skipping only those whose declared
    ``requires`` dependencies reported errors -- and returns the full
    report.  ``passes`` accepts registered names or :class:`CodePass`
    objects; ``None`` runs every registered pass in registration order.
    """
    if passes is None:
        resolved = [get_code_pass(n) for n in available_code_passes()]
    else:
        resolved = [
            p if isinstance(p, CodePass) else get_code_pass(p) for p in passes
        ]

    report = CodeAnalysisReport(
        files=tuple(m.path for m in model.modules),
    )
    failed: set[str] = set()
    ran: list[str] = []
    for p in resolved:
        broken = sorted(set(p.requires) & failed)
        if broken:
            report.skipped[p.name] = (
                f"prerequisite pass(es) {', '.join(broken)} reported errors"
            )
            continue
        issues = p.run(model)
        ran.append(p.name)
        report.issues.extend(issues)
        if any(i.severity is Severity.ERROR for i in issues):
            failed.add(p.name)
    report.passes_run = tuple(ran)
    return report
