"""Developer tooling that analyzes *this repository's own code*.

Everything under :mod:`repro.devtools` operates on the repo's Python
sources rather than on schedule IR or workloads: the first citizen is
:mod:`repro.devtools.concurrency`, the lock-discipline static analyzer
behind ``repro lint-code``.  Nothing here is imported by the production
planning/serving paths -- the packages it *analyzes* must never import
it back.
"""
