"""Incremental re-simulation: replay a shared timeline prefix.

The auto-tuner frequently simulates *families* of candidate schedules
that share structure and diverge only late in their instruction streams:
recompute siblings (``NONE`` vs ``WITHOUT_ATTENTION``) run a bit-identical
forward phase and only differ once recompute ops appear in the backward
phase.  Re-running the full discrete-event simulation for every sibling
re-derives an identical event prefix each time.

This module removes that duplication:

* :func:`simulate_recording` runs one **reference** simulation while
  recording (a) periodic full-state checkpoints of the event core, (b) a
  memory log of compute start/complete steps, and (c) the message arrival
  order.  The metrics are bit-identical to :func:`repro.sim.simulate`.
* :func:`resimulate` simulates a **sibling** schedule by locating the
  first per-stage *timing divergence* between the compiled op streams,
  restoring the latest checkpoint that precedes every divergence, and
  running the event loop forward from there.

Safety model -- the divergence detector is conservative by construction:

* Only the fields the event loop's *timing* depends on are compared
  (compute: duration; send: tag/endpoints/bytes/transfer time; recv:
  tag).  Two ops with equal projections schedule identically.
* Memory fields (``stash_delta``/``workspace``) are excluded from the
  projection because memory never feeds back into event timing; instead
  the sibling's memory trajectory is *replayed exactly* from the recorded
  log using the sibling's own per-op deltas (recompute siblings diverge
  in memory immediately even while their timing prefix is identical).
* Anything else -- different stage counts, duplex modes, no checkpoint
  before the earliest divergence -- falls back to a full simulation.

Whenever the incremental path runs, every metric in the returned
:class:`~repro.sim.metrics.SimResult` is bit-identical to a from-scratch
simulation of the sibling (enforced by the differential test suite).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec
from repro.schedules.ir import Schedule
from repro.sim.engine import (
    _COMPUTE,
    _RECV,
    _SEND,
    DeadlockError,
    PipelineSimulator,
    compile_programs,
)
from repro.sim.metrics import SimResult, StageMetrics
from repro.sim.trace import Trace

__all__ = [
    "SimReference",
    "ResimStats",
    "simulate_recording",
    "resimulate",
]


@dataclass
class _Checkpoint:
    """Full event-core state after ``events_processed`` events."""

    events_processed: int
    pc: list[int]
    computing: list[bool]
    blocked_tag: list
    blocked_since: list[float]
    busy_time: list[float]
    comm_blocked: list[float]
    bytes_sent: list[float]
    bytes_received: list[float]
    comm_free: list[float]
    send_free: list[float]
    recv_free: list[float]
    events: list[tuple]
    pending: list[tuple]
    eseq: int
    tseq: int
    arrived_len: int
    memory_len: int
    makespan: float


@dataclass
class SimReference:
    """A recorded reference simulation that siblings can resume from.

    ``memory_log`` holds ``(stage, op_index, kind)`` steps (kind 0 =
    compute start, 1 = compute complete) in event order; a sibling
    replays its prefix with its *own* per-op stash/workspace values, so
    checkpoints never store memory state.  ``arrival_log`` is the
    message arrival order (interned tag ids); a checkpoint's ``arrived``
    set is its prefix.  ``tag_ids`` is the shared interning table:
    sibling compilations extend it so equal tags compare as equal ints.
    """

    schedule: Schedule
    cluster: ClusterSpec
    static: list[float]
    duplex: str
    programs: list[list[tuple]]
    sizes: list[int]
    tag_ids: dict[str, int]
    checkpoint_every: int
    memory_log: list[tuple] = field(default_factory=list)
    arrival_log: list[int] = field(default_factory=list)
    checkpoints: list[_Checkpoint] = field(default_factory=list)
    result: SimResult | None = None


@dataclass(frozen=True)
class ResimStats:
    """How one :func:`resimulate` call executed (for tests/telemetry)."""

    mode: str  # "incremental" | "fallback"
    reason: str | None = None
    resumed_at_events: int = 0
    divergence_indices: tuple[int, ...] | None = None


def _timing_equal(a: tuple, b: tuple) -> bool:
    """True iff two compiled ops schedule identically (memory ignored)."""
    code = a[0]
    if code != b[0]:
        return False
    if code == _COMPUTE:
        return a[1] == b[1]
    if code == _SEND:
        return (
            a[1] == b[1]
            and a[2] == b[2]
            and a[3] == b[3]
            and a[4] == b[4]
            and a[5] == b[5]
        )
    return a[1] == b[1]  # _RECV: tag id


def _run_loop(
    schedule: Schedule,
    programs: list[list[tuple]],
    sizes: list[int],
    static: list[float],
    half: bool,
    state: dict | None,
    rec: SimReference | None,
) -> SimResult:
    """The engine event loop, resumable and optionally recording.

    Semantically identical to :meth:`PipelineSimulator.run` with
    ``record_trace=False`` (the differential suite pins this); the only
    additions are the recording hooks and the ability to start from a
    restored checkpoint state instead of time zero.
    """
    p = schedule.num_stages
    if state is None:
        pc = [0] * p
        computing = [False] * p
        blocked_tag: list = [None] * p
        blocked_since = [0.0] * p
        busy_time = [0.0] * p
        comm_blocked = [0.0] * p
        current_mem = list(static)
        peak_mem = list(static)
        bytes_sent = [0.0] * p
        bytes_received = [0.0] * p
        comm_free = [0.0] * p
        send_free = [0.0] * p
        recv_free = [0.0] * p
        events: list[tuple] = []
        pending: list[tuple] = []
        eseq = 0
        tseq = 0
        arrived: set[int] = set()
        makespan = 0.0
        nproc = 0
    else:
        pc = state["pc"]
        computing = state["computing"]
        blocked_tag = state["blocked_tag"]
        blocked_since = state["blocked_since"]
        busy_time = state["busy_time"]
        comm_blocked = state["comm_blocked"]
        current_mem = state["current_mem"]
        peak_mem = state["peak_mem"]
        bytes_sent = state["bytes_sent"]
        bytes_received = state["bytes_received"]
        comm_free = state["comm_free"]
        send_free = state["send_free"]
        recv_free = state["recv_free"]
        events = state["events"]
        pending = state["pending"]
        eseq = state["eseq"]
        tseq = state["tseq"]
        arrived = state["arrived"]
        makespan = state["makespan"]
        nproc = state["events_processed"]

    if rec is not None:
        mlog_append = rec.memory_log.append
        alog_append = rec.arrival_log.append
        checkpoints = rec.checkpoints
        every = rec.checkpoint_every
    else:
        mlog_append = alog_append = None
        every = 0
    heappush, heappop = heapq.heappush, heapq.heappop

    def start_transfers(now: float) -> None:
        nonlocal eseq
        still: list[tuple] = []
        while pending:
            item = heappop(pending)
            if item[0] <= now:
                op = item[2]
                src, dst = op[2], op[3]
                if half:
                    a, b = comm_free[src], comm_free[dst]
                else:
                    a, b = send_free[src], recv_free[dst]
                if (a if a > b else b) <= now:
                    end = now + op[5]
                    if half:
                        comm_free[src] = end
                        comm_free[dst] = end
                    else:
                        send_free[src] = end
                        recv_free[dst] = end
                    heappush(events, (end, eseq, _SEND, op, now))
                    eseq += 1
                    continue
            still.append(item)
        for item in still:
            heappush(pending, item)

    def advance(stage: int, now: float) -> None:
        nonlocal eseq, tseq
        ops = programs[stage]
        n = sizes[stage]
        i = pc[stage]
        while i < n:
            op = ops[i]
            code = op[0]
            if code == _COMPUTE:
                computing[stage] = True
                high = current_mem[stage] + op[3]
                if high > peak_mem[stage]:
                    peak_mem[stage] = high
                heappush(events, (now + op[1], eseq, _COMPUTE, stage, op, now))
                eseq += 1
                if mlog_append is not None:
                    mlog_append((stage, i, 0))
                pc[stage] = i
                return
            if code == _SEND:
                heappush(pending, (now, tseq, op))
                tseq += 1
                i += 1
                pc[stage] = i
                start_transfers(now)
                continue
            # _RECV
            if op[1] in arrived:
                i += 1
                continue
            blocked_tag[stage] = op[1]
            blocked_since[stage] = now
            pc[stage] = i
            return
        pc[stage] = i

    if state is None:
        for stage in range(p):
            advance(stage, 0.0)

    while events:
        ev = heappop(events)
        t = ev[0]
        makespan = t
        if ev[2] == _COMPUTE:
            stage, op = ev[3], ev[4]
            computing[stage] = False
            busy_time[stage] += op[1]
            cur = current_mem[stage] + op[2]
            current_mem[stage] = cur
            if cur > peak_mem[stage]:
                peak_mem[stage] = cur
            if mlog_append is not None:
                mlog_append((stage, pc[stage], 1))
            pc[stage] += 1
            advance(stage, t)
        else:  # _SEND completion
            op = ev[3]
            tid, src, dst = op[1], op[2], op[3]
            arrived.add(tid)
            if alog_append is not None:
                alog_append(tid)
            bytes_sent[src] += op[4]
            bytes_received[dst] += op[4]
            start_transfers(t)
            if blocked_tag[dst] == tid:
                blocked_tag[dst] = None
                comm_blocked[dst] += t - blocked_since[dst]
                pc[dst] += 1
                advance(dst, t)
        nproc += 1
        if rec is not None and nproc % every == 0 and events:
            checkpoints.append(
                _Checkpoint(
                    events_processed=nproc,
                    pc=pc[:],
                    computing=computing[:],
                    blocked_tag=blocked_tag[:],
                    blocked_since=blocked_since[:],
                    busy_time=busy_time[:],
                    comm_blocked=comm_blocked[:],
                    bytes_sent=bytes_sent[:],
                    bytes_received=bytes_received[:],
                    comm_free=comm_free[:],
                    send_free=send_free[:],
                    recv_free=recv_free[:],
                    events=events[:],
                    pending=pending[:],
                    eseq=eseq,
                    tseq=tseq,
                    arrived_len=len(rec.arrival_log),
                    memory_len=len(rec.memory_log),
                    makespan=makespan,
                )
            )

    stuck = []
    for stage in range(p):
        if pc[stage] < sizes[stage]:
            instr = schedule.programs[stage][pc[stage]]
            tid = blocked_tag[stage]
            blocked = None if tid is None else programs[stage][pc[stage]][2].tag
            stuck.append(
                f"stage {stage} stuck at pc={pc[stage]} "
                f"({instr.label}, blocked_on={blocked})"
            )
    if pending:
        tags = [item[2][6].tag for item in pending]
        stuck.append(f"undelivered transfers: {tags[:5]}")
    if stuck:
        raise DeadlockError(
            f"schedule {schedule.name!r} deadlocked:\n  " + "\n  ".join(stuck)
        )

    stages = [
        StageMetrics(
            stage=i,
            busy_time=busy_time[i],
            comm_blocked_time=comm_blocked[i],
            peak_memory_bytes=peak_mem[i],
            static_memory_bytes=static[i],
            bytes_sent=bytes_sent[i],
            bytes_received=bytes_received[i],
        )
        for i in range(p)
    ]
    return SimResult(
        schedule_name=schedule.name,
        makespan=makespan,
        stages=stages,
        trace=Trace(),
    )


def simulate_recording(
    schedule: Schedule,
    cluster: ClusterSpec,
    static_memory_bytes: list[float] | float = 0.0,
    duplex: str = "full",
    verify: bool = True,
    checkpoint_every: int = 256,
) -> SimReference:
    """Simulate ``schedule`` while recording resume state for siblings.

    Returns a :class:`SimReference` whose ``result`` carries metrics
    bit-identical to :func:`repro.sim.simulate` (with an empty trace).
    ``checkpoint_every`` controls the resume granularity: one full-state
    snapshot per that many processed events.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    # Reuse the simulator's argument validation/normalisation.
    sim = PipelineSimulator(
        schedule, cluster, static_memory_bytes, duplex, verify, record_trace=False
    )
    tag_ids: dict[str, int] = {}
    programs, _ = compile_programs(schedule, cluster, tag_ids)
    ref = SimReference(
        schedule=schedule,
        cluster=cluster,
        static=sim.static,
        duplex=duplex,
        programs=programs,
        sizes=[len(ops) for ops in programs],
        tag_ids=tag_ids,
        checkpoint_every=checkpoint_every,
    )
    ref.result = _run_loop(
        schedule, programs, ref.sizes, ref.static, duplex == "half", None, ref
    )
    return ref


def resimulate(
    reference: SimReference,
    schedule: Schedule,
    cluster: ClusterSpec,
    static_memory_bytes: list[float] | float = 0.0,
    duplex: str = "full",
    verify: bool = True,
) -> tuple[SimResult, ResimStats]:
    """Simulate ``schedule`` by resuming ``reference``'s timeline prefix.

    Falls back to a full simulation whenever prefix reuse cannot be
    proven safe; either way the returned metrics are bit-identical to
    :func:`repro.sim.simulate` on the sibling.
    """
    sim = PipelineSimulator(
        schedule, cluster, static_memory_bytes, duplex, verify, record_trace=False
    )

    def fallback(reason: str) -> tuple[SimResult, ResimStats]:
        return sim.run(), ResimStats(mode="fallback", reason=reason)

    p = schedule.num_stages
    if p != reference.schedule.num_stages:
        return fallback("stage count differs from reference")
    if duplex != reference.duplex:
        return fallback("duplex mode differs from reference")
    if not reference.checkpoints:
        return fallback("reference recorded no checkpoints")

    programs, _ = compile_programs(schedule, cluster, reference.tag_ids)
    sizes = [len(ops) for ops in programs]

    # First per-stage timing divergence between reference and sibling.
    ks: list[int] = []
    for rops, sops in zip(reference.programs, programs):
        n = min(len(rops), len(sops))
        k = 0
        while k < n and _timing_equal(rops[k], sops[k]):
            k += 1
        ks.append(k)
    ref_sizes = reference.sizes

    # Latest checkpoint at which every stage is still inside its shared
    # prefix: either strictly before the divergent op (so any in-flight
    # or blocked op at ``pc`` is timing-identical), or fully done with a
    # program the sibling matches end to end.
    best = None
    for cp in reversed(reference.checkpoints):
        cpc = cp.pc
        for s in range(p):
            pcs = cpc[s]
            k = ks[s]
            if pcs < k:
                continue
            if pcs == k and k == ref_sizes[s] and k == sizes[s]:
                continue
            break
        else:
            best = cp
            break
    if best is None:
        return fallback("no checkpoint precedes the first divergence")

    pc = best.pc[:]
    # In-flight compute events reference ops from the *reference*
    # program; remap each to the sibling's op at the same index (the
    # stage's current pc).  Timing fields are equal inside the prefix --
    # only the memory fields (consumed at completion) may differ.
    # Sort keys are untouched, so the heap invariant is preserved.
    events: list[tuple] = []
    for ev in best.events:
        if ev[2] == _COMPUTE:
            stage = ev[3]
            events.append((ev[0], ev[1], _COMPUTE, stage, programs[stage][pc[stage]], ev[5]))
        else:
            events.append(ev)

    # Replay the sibling's memory trajectory over the recorded prefix
    # with its own stash/workspace values (recompute siblings diverge in
    # memory long before they diverge in timing).
    static = sim.static
    current_mem = list(static)
    peak_mem = list(static)
    for s, i, kind in reference.memory_log[: best.memory_len]:
        op = programs[s][i]
        if kind == 0:
            high = current_mem[s] + op[3]
            if high > peak_mem[s]:
                peak_mem[s] = high
        else:
            cur = current_mem[s] + op[2]
            current_mem[s] = cur
            if cur > peak_mem[s]:
                peak_mem[s] = cur

    state = {
        "pc": pc,
        "computing": best.computing[:],
        "blocked_tag": best.blocked_tag[:],
        "blocked_since": best.blocked_since[:],
        "busy_time": best.busy_time[:],
        "comm_blocked": best.comm_blocked[:],
        "current_mem": current_mem,
        "peak_mem": peak_mem,
        "bytes_sent": best.bytes_sent[:],
        "bytes_received": best.bytes_received[:],
        "comm_free": best.comm_free[:],
        "send_free": best.send_free[:],
        "recv_free": best.recv_free[:],
        "events": events,
        "pending": best.pending[:],
        "eseq": best.eseq,
        "tseq": best.tseq,
        "arrived": set(reference.arrival_log[: best.arrived_len]),
        "makespan": best.makespan,
        "events_processed": best.events_processed,
    }
    result = _run_loop(
        schedule, programs, sizes, static, duplex == "half", state, None
    )
    return result, ResimStats(
        mode="incremental",
        resumed_at_events=best.events_processed,
        divergence_indices=tuple(ks),
    )
