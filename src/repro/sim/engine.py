"""Discrete-event simulator for pipeline schedules.

Executes a :class:`~repro.schedules.ir.Schedule` against a
:class:`~repro.cluster.ClusterSpec`:

* each stage owns a serial **compute engine** that runs its
  :class:`~repro.schedules.ir.ComputeInstr` stream in program order;
* each stage owns **communication engines** modelling the NCCL p2p
  channel.  The default is full-duplex (independent send and receive
  engines per stage, matching InfiniBand), which serialises outgoing and
  incoming bytes separately at the fair-share per-GPU bandwidth;
  ``duplex="half"`` forces a single engine per stage, reproducing the
  paper's Figure 6a pathology where a receive delays the following send
  (NCCL's shared-SM channel behaviour) -- kept as an ablation;
* a transfer starts once its SEND has been issued and the required
  engines are free, taking ``cluster.p2p_time(nbytes)`` seconds;
* a RECV blocks the stage's program counter (not its comm engine) until
  the tagged message has fully arrived.

Memory accounting: every stage tracks ``static + sum(stash_delta)`` with
transient ``workspace`` added while an instruction runs; the high-water
mark is reported per stage (paper Figures 4, 10, 11).

The simulator is deterministic: ties are broken by instruction issue
order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec
from repro.schedules.ir import (
    ComputeInstr,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.passes import (
    check_deadlock_freedom,
    check_structure,
    run_passes,
)
from repro.sim.metrics import SimResult, StageMetrics
from repro.sim.trace import Interval, Trace

__all__ = ["PipelineSimulator", "simulate", "DeadlockError"]


class DeadlockError(RuntimeError):
    """The schedule cannot make progress (missing message / cyclic wait)."""


@dataclass
class _StageState:
    pc: int = 0
    blocked_tag: str | None = None
    blocked_since: float = 0.0
    computing: bool = False
    busy_time: float = 0.0
    comm_blocked_time: float = 0.0
    current_mem: float = 0.0
    peak_mem: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    comm_free_at: float = 0.0  # half-duplex engine
    send_free_at: float = 0.0  # full-duplex engines
    recv_free_at: float = 0.0


@dataclass(order=True)
class _PendingTransfer:
    ready_time: float
    seq: int
    send: SendInstr = field(compare=False)


class PipelineSimulator:
    """Simulate one training iteration of ``schedule`` on ``cluster``.

    Parameters
    ----------
    schedule:
        Per-stage instruction programs (validated before running).
    cluster:
        Provides the p2p link model; must have at least as many nodes as
        the schedule has stages.
    static_memory_bytes:
        Per-stage baseline (model states) added to activation tracking.
    duplex:
        ``"half"`` (default, one comm engine per stage) or ``"full"``.
    verify:
        Run the executability passes before simulating.  Callers that
        just verified the schedule (registry builds) may disable this.
    """

    def __init__(
        self,
        schedule: Schedule,
        cluster: ClusterSpec,
        static_memory_bytes: list[float] | float = 0.0,
        duplex: str = "full",
        verify: bool = True,
    ) -> None:
        # The simulator only needs the executability passes (structure +
        # static deadlock-freedom); accounting properties like stash
        # balance are builder-level invariants verified at build time,
        # and hand-written fragments (tests, what-if probes) may violate
        # them on purpose.
        if verify:
            run_passes(schedule, passes=(check_structure, check_deadlock_freedom))
        if cluster.num_stages < schedule.num_stages:
            raise ValueError(
                f"cluster has {cluster.num_stages} nodes but schedule needs "
                f"{schedule.num_stages}"
            )
        if duplex not in ("half", "full"):
            raise ValueError(f"duplex must be 'half' or 'full', got {duplex!r}")
        self.schedule = schedule
        self.cluster = cluster
        self.duplex = duplex
        p = schedule.num_stages
        if isinstance(static_memory_bytes, (int, float)):
            static_memory_bytes = [float(static_memory_bytes)] * p
        if len(static_memory_bytes) != p:
            raise ValueError("static_memory_bytes must have one entry per stage")
        self.static = [float(x) for x in static_memory_bytes]

    # -- public API ----------------------------------------------------------

    def run(self) -> SimResult:
        p = self.schedule.num_stages
        self._states = [_StageState() for _ in range(p)]
        for st, base in zip(self._states, self.static):
            st.current_mem = base
            st.peak_mem = base
        self._events: list[tuple[float, int, str, object]] = []
        self._eseq = itertools.count()
        self._pending: list[_PendingTransfer] = []
        self._tseq = itertools.count()
        self._arrived: set[str] = set()
        self._trace = Trace()

        for stage in range(p):
            self._advance(stage, 0.0)

        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            if kind == "compute_done":
                self._on_compute_done(t, payload)  # type: ignore[arg-type]
            elif kind == "transfer_done":
                self._on_transfer_done(t, payload)  # type: ignore[arg-type]

        self._check_all_done()
        return self._build_result()

    # -- program advancement ---------------------------------------------------

    def _advance(self, stage: int, now: float) -> None:
        st = self._states[stage]
        prog = self.schedule.programs[stage]
        while not st.computing and st.pc < len(prog):
            instr = prog[st.pc]
            if isinstance(instr, ComputeInstr):
                self._start_compute(stage, instr, now)
                return
            if isinstance(instr, SendInstr):
                heapq.heappush(
                    self._pending,
                    _PendingTransfer(now, next(self._tseq), instr),
                )
                st.pc += 1
                self._start_transfers(now)
                continue
            if isinstance(instr, RecvInstr):
                if instr.tag in self._arrived:
                    st.pc += 1
                    continue
                st.blocked_tag = instr.tag
                st.blocked_since = now
                return
            raise TypeError(f"unknown instruction type: {type(instr)!r}")

    def _start_compute(self, stage: int, instr: ComputeInstr, now: float) -> None:
        st = self._states[stage]
        st.computing = True
        st.peak_mem = max(st.peak_mem, st.current_mem + max(0.0, instr.workspace))
        end = now + instr.duration
        heapq.heappush(
            self._events, (end, next(self._eseq), "compute_done", (stage, instr, now))
        )

    def _on_compute_done(self, t: float, payload: object) -> None:
        stage, instr, started = payload  # type: ignore[misc]
        st = self._states[stage]
        st.computing = False
        st.busy_time += instr.duration
        st.current_mem += instr.stash_delta
        st.peak_mem = max(st.peak_mem, st.current_mem)
        self._trace.add(
            Interval(
                kind="compute",
                stage=stage,
                start=started,
                end=t,
                label=instr.label,
                micro_batch=instr.micro_batch,
            )
        )
        st.pc += 1
        self._advance(stage, t)

    # -- transfers ---------------------------------------------------------------

    def _engines_free_at(self, src: int, dst: int) -> float:
        s, d = self._states[src], self._states[dst]
        if self.duplex == "half":
            return max(s.comm_free_at, d.comm_free_at)
        return max(s.send_free_at, d.recv_free_at)

    def _occupy_engines(self, src: int, dst: int, until: float) -> None:
        s, d = self._states[src], self._states[dst]
        if self.duplex == "half":
            s.comm_free_at = until
            d.comm_free_at = until
        else:
            s.send_free_at = until
            d.recv_free_at = until

    def _start_transfers(self, now: float) -> None:
        """Start every pending transfer whose engines are free at ``now``.

        A single pass in (ready_time, issue order) suffices: starting a
        transfer only makes engines busier, never frees one.
        """
        still: list[_PendingTransfer] = []
        while self._pending:
            pt = heapq.heappop(self._pending)
            send = pt.send
            if pt.ready_time <= now and self._engines_free_at(send.stage, send.peer) <= now:
                end = now + self.cluster.p2p_time(send.nbytes)
                self._occupy_engines(send.stage, send.peer, end)
                heapq.heappush(
                    self._events,
                    (end, next(self._eseq), "transfer_done", (send, now)),
                )
            else:
                still.append(pt)
        for pt in still:
            heapq.heappush(self._pending, pt)

    def _on_transfer_done(self, t: float, payload: object) -> None:
        send, started = payload  # type: ignore[misc]
        self._arrived.add(send.tag)
        src, dst = send.stage, send.peer
        self._states[src].bytes_sent += send.nbytes
        self._states[dst].bytes_received += send.nbytes
        self._trace.add(
            Interval(
                kind="comm",
                stage=src,
                start=started,
                end=t,
                label=send.tag,
                micro_batch=send.micro_batch,
                peer=dst,
            )
        )
        self._start_transfers(t)
        st = self._states[dst]
        if st.blocked_tag == send.tag:
            st.blocked_tag = None
            st.comm_blocked_time += t - st.blocked_since
            st.pc += 1
            self._advance(dst, t)

    # -- wrap-up -------------------------------------------------------------------

    def _check_all_done(self) -> None:
        stuck = []
        for stage, st in enumerate(self._states):
            prog = self.schedule.programs[stage]
            if st.pc < len(prog):
                stuck.append(
                    f"stage {stage} stuck at pc={st.pc} "
                    f"({prog[st.pc].label}, blocked_on={st.blocked_tag})"
                )
        if self._pending:
            tags = [pt.send.tag for pt in self._pending]
            stuck.append(f"undelivered transfers: {tags[:5]}")
        if stuck:
            raise DeadlockError(
                f"schedule {self.schedule.name!r} deadlocked:\n  " + "\n  ".join(stuck)
            )

    def _build_result(self) -> SimResult:
        makespan = self._trace.makespan
        stages = [
            StageMetrics(
                stage=i,
                busy_time=st.busy_time,
                comm_blocked_time=st.comm_blocked_time,
                peak_memory_bytes=st.peak_mem,
                static_memory_bytes=self.static[i],
                bytes_sent=st.bytes_sent,
                bytes_received=st.bytes_received,
            )
            for i, st in enumerate(self._states)
        ]
        return SimResult(
            schedule_name=self.schedule.name,
            makespan=makespan,
            stages=stages,
            trace=self._trace,
        )


def simulate(
    schedule: Schedule,
    cluster: ClusterSpec,
    static_memory_bytes: list[float] | float = 0.0,
    duplex: str = "full",
    verify: bool = True,
) -> SimResult:
    """Convenience wrapper: build a :class:`PipelineSimulator` and run it."""
    return PipelineSimulator(
        schedule, cluster, static_memory_bytes, duplex, verify
    ).run()
