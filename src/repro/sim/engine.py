"""Discrete-event simulator for pipeline schedules.

Executes a :class:`~repro.schedules.ir.Schedule` against a
:class:`~repro.cluster.ClusterSpec`:

* each stage owns a serial **compute engine** that runs its
  :class:`~repro.schedules.ir.ComputeInstr` stream in program order;
* each stage owns **communication engines** modelling the NCCL p2p
  channel.  The default is full-duplex (independent send and receive
  engines per stage, matching InfiniBand), which serialises outgoing and
  incoming bytes separately at the fair-share per-GPU bandwidth;
  ``duplex="half"`` forces a single engine per stage, reproducing the
  paper's Figure 6a pathology where a receive delays the following send
  (NCCL's shared-SM channel behaviour) -- kept as an ablation;
* a transfer starts once its SEND has been issued and the required
  engines are free, taking ``cluster.p2p_time(nbytes)`` seconds;
* a RECV blocks the stage's program counter (not its comm engine) until
  the tagged message has fully arrived.

Memory accounting: every stage tracks ``static + sum(stash_delta)`` with
transient ``workspace`` added while an instruction runs; the high-water
mark is reported per stage (paper Figures 4, 10, 11).

The simulator is deterministic: ties are broken by instruction issue
order.

The event core is the auto-tuner's innermost loop (one full run per
candidate), so it is written for speed: each program is compiled once
into primitive opcode tuples (durations, interned integer tags,
precomputed transfer times), events are plain tuples on one heap with a
monotonic sequence counter (the classic heapq+counter idiom), and the
per-stage state lives in parallel scalar lists.  ``record_trace=False``
skips :class:`~repro.sim.trace.Interval` allocation entirely -- metrics
(makespan, busy/blocked time, memory peaks, bytes moved) are tracked
directly and are identical with tracing on or off.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.cluster.topology import ClusterSpec
from repro.schedules.ir import (
    ComputeInstr,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.passes import (
    check_deadlock_freedom,
    check_structure,
    run_passes,
)
from repro.sim.metrics import SimResult, StageMetrics
from repro.sim.trace import Interval, Trace

__all__ = ["PipelineSimulator", "simulate", "compile_programs", "DeadlockError"]

# Compiled opcodes (first element of every program tuple).
_COMPUTE, _SEND, _RECV = 0, 1, 2


def compile_programs(
    schedule: Schedule,
    cluster: ClusterSpec,
    tag_ids: dict[str, int] | None = None,
) -> tuple[list[list[tuple]], list[str]]:
    """Lower each program of ``schedule`` to primitive opcode tuples.

    Compute: ``(_COMPUTE, duration, stash_delta, workspace+, instr)``.
    Send:    ``(_SEND, tag_id, src, dst, nbytes, p2p_time, instr)``.
    Recv:    ``(_RECV, tag_id, instr)``.

    Tags are interned to dense integers (set membership and the
    blocked-receiver check become int compares) and every transfer
    duration is priced exactly once, with the same ``cluster.p2p_time``
    call the event loop used to make per event.

    ``tag_ids`` lets callers share one interning table across several
    compilations: the incremental re-simulator compiles a sibling
    schedule against its reference's table so that equal tag strings map
    to equal integers in both compiled forms, making opcode tuples
    directly comparable.  New tags extend the table in place.
    """
    p2p_time = cluster.p2p_time
    p2p_cache: dict[float, float] = {}
    if tag_ids is None:
        tag_ids = {}
    intern_tag = tag_ids.setdefault
    programs: list[list[tuple]] = []
    for prog in schedule.programs:
        ops: list[tuple] = []
        append = ops.append
        for instr in prog:
            if type(instr) is ComputeInstr or isinstance(instr, ComputeInstr):
                ws = instr.workspace
                append(
                    (
                        _COMPUTE,
                        instr.duration,
                        instr.stash_delta,
                        ws if ws > 0.0 else 0.0,
                        instr,
                    )
                )
            elif type(instr) is SendInstr or isinstance(instr, SendInstr):
                nbytes = instr.nbytes
                dur = p2p_cache.get(nbytes)
                if dur is None:
                    dur = p2p_cache[nbytes] = p2p_time(nbytes)
                append(
                    (
                        _SEND,
                        intern_tag(instr.tag, len(tag_ids)),
                        instr.stage,
                        instr.peer,
                        float(nbytes),
                        dur,
                        instr,
                    )
                )
            elif type(instr) is RecvInstr or isinstance(instr, RecvInstr):
                append((_RECV, intern_tag(instr.tag, len(tag_ids)), instr))
            else:
                raise TypeError(f"unknown instruction type: {type(instr)!r}")
        programs.append(ops)
    tags = [""] * len(tag_ids)
    for tag, tid in tag_ids.items():
        tags[tid] = tag
    return programs, tags


class DeadlockError(RuntimeError):
    """The schedule cannot make progress (missing message / cyclic wait)."""


class PipelineSimulator:
    """Simulate one training iteration of ``schedule`` on ``cluster``.

    Parameters
    ----------
    schedule:
        Per-stage instruction programs (validated before running).
    cluster:
        Provides the p2p link model; must have at least as many nodes as
        the schedule has stages.
    static_memory_bytes:
        Per-stage baseline (model states) added to activation tracking.
    duplex:
        ``"half"`` (one comm engine per stage) or ``"full"`` (default).
    verify:
        Run the executability passes before simulating.  Callers that
        just verified the schedule (registry builds) may disable this.
    record_trace:
        Record per-interval :class:`~repro.sim.trace.Trace` entries.
        Disabling skips all Interval allocation (the tuner's hot path);
        every :class:`~repro.sim.metrics.SimResult` metric is identical
        either way -- only ``result.trace`` is left empty.
    """

    def __init__(
        self,
        schedule: Schedule,
        cluster: ClusterSpec,
        static_memory_bytes: list[float] | float = 0.0,
        duplex: str = "full",
        verify: bool = True,
        record_trace: bool = True,
    ) -> None:
        # The simulator only needs the executability passes (structure +
        # static deadlock-freedom); accounting properties like stash
        # balance are builder-level invariants verified at build time,
        # and hand-written fragments (tests, what-if probes) may violate
        # them on purpose.
        if verify:
            run_passes(schedule, passes=(check_structure, check_deadlock_freedom))
        if cluster.num_stages < schedule.num_stages:
            raise ValueError(
                f"cluster has {cluster.num_stages} nodes but schedule needs "
                f"{schedule.num_stages}"
            )
        if duplex not in ("half", "full"):
            raise ValueError(f"duplex must be 'half' or 'full', got {duplex!r}")
        self.schedule = schedule
        self.cluster = cluster
        self.duplex = duplex
        self.record_trace = record_trace
        p = schedule.num_stages
        if isinstance(static_memory_bytes, (int, float)):
            static_memory_bytes = [float(static_memory_bytes)] * p
        if len(static_memory_bytes) != p:
            raise ValueError("static_memory_bytes must have one entry per stage")
        self.static = [float(x) for x in static_memory_bytes]

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> tuple[list[list[tuple]], list[str]]:
        """Lower each program to primitive opcode tuples.

        Delegates to the module-level :func:`compile_programs` (shared
        with the incremental re-simulator, which needs a common tag
        interning table across sibling compilations).
        """
        return compile_programs(self.schedule, self.cluster)

    # -- public API ----------------------------------------------------------

    def run(self) -> SimResult:
        p = self.schedule.num_stages
        half = self.duplex == "half"
        programs, _ = self._compile()
        sizes = [len(ops) for ops in programs]

        # Per-stage scalar state in parallel lists (cheaper than
        # attribute access on a state object in the inner loop).
        pc = [0] * p
        computing = [False] * p
        blocked_tag: list[int | None] = [None] * p
        blocked_since = [0.0] * p
        busy_time = [0.0] * p
        comm_blocked = [0.0] * p
        current_mem = list(self.static)
        peak_mem = list(self.static)
        bytes_sent = [0.0] * p
        bytes_received = [0.0] * p
        comm_free = [0.0] * p  # half-duplex engine
        send_free = [0.0] * p  # full-duplex engines
        recv_free = [0.0] * p

        events: list[tuple] = []  # (t, seq, opcode, ...)
        eseq = count()
        pending: list[tuple] = []  # (ready_time, seq, send_op)
        tseq = count()
        arrived: set[int] = set()
        # getattr: tests construct half-initialised simulators via
        # __new__ to poke the deadlock path; default to tracing.
        trace = Trace() if getattr(self, "record_trace", True) else None
        heappush, heappop = heapq.heappush, heapq.heappop

        def start_transfers(now: float) -> None:
            # Start every pending transfer whose engines are free at
            # ``now``.  A single pass in (ready_time, issue order)
            # suffices: starting a transfer only makes engines busier,
            # never frees one.
            still: list[tuple] = []
            while pending:
                item = heappop(pending)
                if item[0] <= now:
                    op = item[2]
                    src, dst = op[2], op[3]
                    if half:
                        a, b = comm_free[src], comm_free[dst]
                    else:
                        a, b = send_free[src], recv_free[dst]
                    if (a if a > b else b) <= now:
                        end = now + op[5]
                        if half:
                            comm_free[src] = end
                            comm_free[dst] = end
                        else:
                            send_free[src] = end
                            recv_free[dst] = end
                        heappush(events, (end, next(eseq), _SEND, op, now))
                        continue
                still.append(item)
            for item in still:
                heappush(pending, item)

        def advance(stage: int, now: float) -> None:
            # Run the stage's program counter forward until it starts a
            # compute, blocks on a missing message, or finishes.
            ops = programs[stage]
            n = sizes[stage]
            i = pc[stage]
            while i < n:
                op = ops[i]
                code = op[0]
                if code == _COMPUTE:
                    computing[stage] = True
                    high = current_mem[stage] + op[3]
                    if high > peak_mem[stage]:
                        peak_mem[stage] = high
                    heappush(
                        events,
                        (now + op[1], next(eseq), _COMPUTE, stage, op, now),
                    )
                    pc[stage] = i
                    return
                if code == _SEND:
                    heappush(pending, (now, next(tseq), op))
                    i += 1
                    pc[stage] = i
                    start_transfers(now)
                    continue
                # _RECV
                if op[1] in arrived:
                    i += 1
                    continue
                blocked_tag[stage] = op[1]
                blocked_since[stage] = now
                pc[stage] = i
                return
            pc[stage] = i

        for stage in range(p):
            advance(stage, 0.0)

        # Events pop in non-decreasing time order, so the makespan is
        # simply the time of the last event (identical to the maximum
        # interval end the trace used to report).
        makespan = 0.0
        while events:
            ev = heappop(events)
            t = ev[0]
            makespan = t
            if ev[2] == _COMPUTE:
                stage, op = ev[3], ev[4]
                computing[stage] = False
                busy_time[stage] += op[1]
                cur = current_mem[stage] + op[2]
                current_mem[stage] = cur
                if cur > peak_mem[stage]:
                    peak_mem[stage] = cur
                if trace is not None:
                    instr = op[4]
                    trace.add(
                        Interval(
                            kind="compute",
                            stage=stage,
                            start=ev[5],
                            end=t,
                            label=instr.label,
                            micro_batch=instr.micro_batch,
                        )
                    )
                pc[stage] += 1
                advance(stage, t)
            else:  # _SEND completion
                op = ev[3]
                tid, src, dst = op[1], op[2], op[3]
                arrived.add(tid)
                bytes_sent[src] += op[4]
                bytes_received[dst] += op[4]
                if trace is not None:
                    instr = op[6]
                    trace.add(
                        Interval(
                            kind="comm",
                            stage=src,
                            start=ev[4],
                            end=t,
                            label=instr.tag,
                            micro_batch=instr.micro_batch,
                            peer=dst,
                        )
                    )
                start_transfers(t)
                if blocked_tag[dst] == tid:
                    blocked_tag[dst] = None
                    comm_blocked[dst] += t - blocked_since[dst]
                    pc[dst] += 1
                    advance(dst, t)

        # -- wrap-up ---------------------------------------------------------

        stuck = []
        for stage in range(p):
            if pc[stage] < sizes[stage]:
                instr = self.schedule.programs[stage][pc[stage]]
                tid = blocked_tag[stage]
                blocked = None if tid is None else programs[stage][pc[stage]][2].tag
                stuck.append(
                    f"stage {stage} stuck at pc={pc[stage]} "
                    f"({instr.label}, blocked_on={blocked})"
                )
        if pending:
            tags = [item[2][6].tag for item in pending]
            stuck.append(f"undelivered transfers: {tags[:5]}")
        if stuck:
            raise DeadlockError(
                f"schedule {self.schedule.name!r} deadlocked:\n  " + "\n  ".join(stuck)
            )

        stages = [
            StageMetrics(
                stage=i,
                busy_time=busy_time[i],
                comm_blocked_time=comm_blocked[i],
                peak_memory_bytes=peak_mem[i],
                static_memory_bytes=self.static[i],
                bytes_sent=bytes_sent[i],
                bytes_received=bytes_received[i],
            )
            for i in range(p)
        ]
        return SimResult(
            schedule_name=self.schedule.name,
            makespan=makespan,
            stages=stages,
            trace=trace if trace is not None else Trace(),
        )


def simulate(
    schedule: Schedule,
    cluster: ClusterSpec,
    static_memory_bytes: list[float] | float = 0.0,
    duplex: str = "full",
    verify: bool = True,
    record_trace: bool = True,
) -> SimResult:
    """Convenience wrapper: build a :class:`PipelineSimulator` and run it."""
    return PipelineSimulator(
        schedule, cluster, static_memory_bytes, duplex, verify, record_trace
    ).run()
