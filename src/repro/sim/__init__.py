"""Discrete-event pipeline simulator."""

from repro.sim.engine import (
    DeadlockError,
    PipelineSimulator,
    compile_programs,
    simulate,
)
from repro.sim.incremental import (
    ResimStats,
    SimReference,
    resimulate,
    simulate_recording,
)
from repro.sim.metrics import SimResult, StageMetrics
from repro.sim.trace import Interval, Trace

__all__ = [
    "PipelineSimulator",
    "simulate",
    "compile_programs",
    "DeadlockError",
    "SimResult",
    "StageMetrics",
    "Interval",
    "Trace",
    "SimReference",
    "ResimStats",
    "simulate_recording",
    "resimulate",
]
