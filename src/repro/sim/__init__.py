"""Discrete-event pipeline simulator."""

from repro.sim.engine import DeadlockError, PipelineSimulator, simulate
from repro.sim.metrics import SimResult, StageMetrics
from repro.sim.trace import Interval, Trace

__all__ = [
    "PipelineSimulator",
    "simulate",
    "DeadlockError",
    "SimResult",
    "StageMetrics",
    "Interval",
    "Trace",
]
