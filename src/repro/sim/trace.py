"""Execution traces recorded by the simulator.

A trace is a flat list of :class:`Interval` records -- compute spans on a
stage's compute engine and transfer spans between stage pairs.  The
analysis layer renders these as ASCII Gantt charts (the reproduction of
the paper's schedule figures) and the metrics layer aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "Trace"]


@dataclass(frozen=True)
class Interval:
    """One busy span.

    ``kind`` is ``"compute"`` or ``"comm"``; for transfers ``stage`` is the
    sender and ``peer`` the receiver (both engines are busy for the span).
    """

    kind: str
    stage: int
    start: float
    end: float
    label: str
    micro_batch: int = -1
    peer: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """All intervals of one simulated iteration."""

    intervals: list[Interval] = field(default_factory=list)

    def add(self, interval: Interval) -> None:
        self.intervals.append(interval)

    def compute_intervals(self, stage: int | None = None) -> list[Interval]:
        out = [iv for iv in self.intervals if iv.kind == "compute"]
        if stage is not None:
            out = [iv for iv in out if iv.stage == stage]
        return sorted(out, key=lambda iv: (iv.stage, iv.start))

    def comm_intervals(self) -> list[Interval]:
        return sorted(
            (iv for iv in self.intervals if iv.kind == "comm"),
            key=lambda iv: iv.start,
        )

    @property
    def makespan(self) -> float:
        if not self.intervals:
            return 0.0
        return max(iv.end for iv in self.intervals)
