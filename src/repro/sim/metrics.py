"""Aggregate metrics of one simulated training iteration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import Trace

__all__ = ["StageMetrics", "SimResult"]


@dataclass(frozen=True)
class StageMetrics:
    """Per-stage accounting of one iteration."""

    stage: int
    busy_time: float  # total compute-engine busy seconds
    comm_blocked_time: float  # compute idle specifically waiting on a RECV
    peak_memory_bytes: float  # activations + declared static baseline
    static_memory_bytes: float  # model states baseline supplied by caller
    bytes_sent: float
    bytes_received: float

    def bubble_time(self, makespan: float) -> float:
        """Idle compute time within the iteration span (paper's bubble)."""
        return makespan - self.busy_time


@dataclass
class SimResult:
    """Result of simulating one iteration of a schedule on a cluster."""

    schedule_name: str
    makespan: float
    stages: list[StageMetrics]
    trace: Trace = field(repr=False, default_factory=Trace)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_bubble_time(self) -> float:
        return sum(s.bubble_time(self.makespan) for s in self.stages)

    @property
    def mean_bubble_time(self) -> float:
        return self.total_bubble_time / max(1, self.num_stages)

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of the whole pipeline (0 = perfectly busy)."""
        denom = self.makespan * self.num_stages
        return self.total_bubble_time / denom if denom > 0 else 0.0

    @property
    def peak_memory_bytes(self) -> list[float]:
        return [s.peak_memory_bytes for s in self.stages]

    @property
    def max_peak_memory_bytes(self) -> float:
        return max(self.peak_memory_bytes)

    def throughput_tokens_per_s(self, tokens_per_iteration: float) -> float:
        if self.makespan <= 0:
            raise ValueError("makespan must be positive to compute throughput")
        return tokens_per_iteration / self.makespan

    def summary(self) -> str:
        lines = [
            f"schedule={self.schedule_name} makespan={self.makespan:.6g}s "
            f"bubble_fraction={self.bubble_fraction:.3f}"
        ]
        for s in self.stages:
            lines.append(
                f"  stage {s.stage}: busy={s.busy_time:.6g}s "
                f"bubble={s.bubble_time(self.makespan):.6g}s "
                f"comm_blocked={s.comm_blocked_time:.6g}s "
                f"peak_mem={s.peak_memory_bytes / 2 ** 30:.3f}GiB"
            )
        return "\n".join(lines)
