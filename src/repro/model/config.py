"""Transformer model configurations (paper Table 3, plus 13B for Fig. 4).

All models follow the standard GPT-3 architecture the paper analyses:
pre-LayerNorm transformer layers (LayerNorm -> QKV linear -> causal
self-attention -> output linear -> residual; LayerNorm -> 4h MLP with GeLU
-> residual), tied word embedding / LM head and learned position
embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ModelConfig",
    "GPT3_1P3B",
    "GPT3_3B",
    "GPT3_7B",
    "GPT3_13B",
    "MODEL_PRESETS",
    "tiny_config",
]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a GPT-style transformer.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"7B"``.
    num_layers:
        Number of transformer layers ``L``.
    num_heads:
        Attention heads per layer.
    hidden_size:
        Model width ``h`` (must be divisible by ``num_heads``).
    vocab_size:
        Vocabulary size ``V`` (GPT family: ~50k, paper Section 4.6).
    ffn_multiplier:
        MLP expansion factor (4 for GPT-3).
    """

    name: str
    num_layers: int
    num_heads: int
    hidden_size: int
    vocab_size: int = 51200
    ffn_multiplier: int = 4

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden(self) -> int:
        return self.ffn_multiplier * self.hidden_size

    def layer_params(self) -> int:
        """Parameter count of one transformer layer (Table 1: 12h^2 + 4h)."""
        h = self.hidden_size
        return 12 * h * h + 4 * h

    def embedding_params(self, max_seq_len: int = 0) -> int:
        """Word (+ optional learned position) embedding parameters."""
        return self.vocab_size * self.hidden_size + max_seq_len * self.hidden_size

    def total_params(self, max_seq_len: int = 0) -> int:
        """All parameters with the LM head tied to the word embedding."""
        return self.num_layers * self.layer_params() + self.embedding_params(max_seq_len)


#: Table 3 row 1: 1.3B -- 24 layers, 16 heads, hidden 2048.
GPT3_1P3B = ModelConfig(name="1.3B", num_layers=24, num_heads=16, hidden_size=2048)

#: Table 3 row 2: 3B -- 16 layers, 32 heads, hidden 4096.
GPT3_3B = ModelConfig(name="3B", num_layers=16, num_heads=32, hidden_size=4096)

#: Table 3 row 3: 7B -- 32 layers, 32 heads, hidden 4096.
GPT3_7B = ModelConfig(name="7B", num_layers=32, num_heads=32, hidden_size=4096)

#: Figure 4 model: GPT-3 13B -- 40 layers, 40 heads, hidden 5120.
GPT3_13B = ModelConfig(name="13B", num_layers=40, num_heads=40, hidden_size=5120)

MODEL_PRESETS: dict[str, ModelConfig] = {
    m.name: m for m in (GPT3_1P3B, GPT3_3B, GPT3_7B, GPT3_13B)
}


def tiny_config(
    num_layers: int = 4,
    num_heads: int = 2,
    hidden_size: int = 16,
    vocab_size: int = 64,
) -> ModelConfig:
    """A miniature config for functional-runtime tests."""
    return ModelConfig(
        name=f"tiny-L{num_layers}h{hidden_size}",
        num_layers=num_layers,
        num_heads=num_heads,
        hidden_size=hidden_size,
        vocab_size=vocab_size,
    )
