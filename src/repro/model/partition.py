"""Model partitioning into pipeline segments.

A *segment* is the unit of work a schedule places on a stage: either a run
of whole transformer layers (conventional pipelines, Section 2.3) or one
of the fine-grained phases of HelixPipe's attention parallel partition
(Section 4.2): pre-attention, attention, post-attention, or the fused
"post-attention of layer l-1 + pre-attention of layer l" block.

The embedding (word + position) and the LM head (final norm + projection +
loss) are segments too, so Section 4.6's placement rules are expressible
in the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["SegmentKind", "Segment", "layerwise_partition", "segments_cover_model"]


class SegmentKind(Enum):
    EMBED = "embed"
    LAYERS = "layers"  # run of complete transformer layers
    PRE = "pre"  # LayerNorm + QKV linear of one layer
    ATTN = "attn"  # causal self-attention of one layer
    POST = "post"  # O linear + LayerNorm + MLP of one layer
    POST_PRE = "post_pre"  # post(l-1) fused with pre(l)  (helix stages)
    HEAD = "head"  # final LayerNorm + LM head + loss


@dataclass(frozen=True, order=True)
class Segment:
    """A contiguous piece of the model.

    Parameters
    ----------
    kind:
        What the segment contains.
    layer:
        For ``LAYERS``: the first layer of the run.  For ``PRE``/``ATTN``/
        ``POST``: the layer index.  For ``POST_PRE``: the index ``l`` whose
        *pre*-attention is included (the post-attention is of ``l - 1``).
        ``EMBED``/``HEAD`` use ``-1``.
    num_layers:
        Length of the run for ``LAYERS``; 1 otherwise.
    """

    kind: SegmentKind
    layer: int = -1
    num_layers: int = 1

    def __post_init__(self) -> None:
        if self.kind is SegmentKind.LAYERS:
            if self.layer < 0 or self.num_layers <= 0:
                raise ValueError("LAYERS segment needs layer >= 0 and num_layers > 0")
        elif self.kind in (SegmentKind.PRE, SegmentKind.ATTN, SegmentKind.POST):
            if self.layer < 0:
                raise ValueError(f"{self.kind.value} segment needs a layer index")
        elif self.kind is SegmentKind.POST_PRE:
            if self.layer < 1:
                raise ValueError("POST_PRE fuses post(l-1) with pre(l); needs l >= 1")

    @property
    def label(self) -> str:
        k = self.kind
        if k is SegmentKind.EMBED:
            return "embed"
        if k is SegmentKind.HEAD:
            return "head"
        if k is SegmentKind.LAYERS:
            return f"layers[{self.layer}:{self.layer + self.num_layers}]"
        if k is SegmentKind.POST_PRE:
            return f"post{self.layer - 1}+pre{self.layer}"
        return f"{k.value}{self.layer}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment({self.label})"


def layerwise_partition(
    num_layers: int,
    num_stages: int,
    include_embed: bool = True,
    include_head: bool = True,
) -> list[list[Segment]]:
    """Even layer-granularity partition used by 1F1B / ZB1P / GPipe.

    Stage ``i`` receives layers ``[i * L/p, (i+1) * L/p)``; the embedding
    rides on stage 0 and the head on the last stage.  ``num_layers`` must
    divide evenly (the paper always uses L % p == 0).
    """
    if num_layers % num_stages != 0:
        raise ValueError(
            f"num_layers ({num_layers}) must be divisible by num_stages ({num_stages})"
        )
    per = num_layers // num_stages
    stages: list[list[Segment]] = []
    for i in range(num_stages):
        segs: list[Segment] = []
        if i == 0 and include_embed:
            segs.append(Segment(SegmentKind.EMBED))
        segs.append(Segment(SegmentKind.LAYERS, layer=i * per, num_layers=per))
        if i == num_stages - 1 and include_head:
            segs.append(Segment(SegmentKind.HEAD))
        stages.append(segs)
    return stages


def segments_cover_model(stages: list[list[Segment]], num_layers: int) -> bool:
    """True when the union of LAYERS/phase segments covers every layer phase
    exactly once (used by property tests on partition builders)."""
    pre = [0] * num_layers
    attn = [0] * num_layers
    post = [0] * num_layers
    for segs in stages:
        for seg in segs:
            if seg.kind is SegmentKind.LAYERS:
                for l in range(seg.layer, seg.layer + seg.num_layers):
                    pre[l] += 1
                    attn[l] += 1
                    post[l] += 1
            elif seg.kind is SegmentKind.PRE:
                pre[seg.layer] += 1
            elif seg.kind is SegmentKind.ATTN:
                attn[seg.layer] += 1
            elif seg.kind is SegmentKind.POST:
                post[seg.layer] += 1
            elif seg.kind is SegmentKind.POST_PRE:
                post[seg.layer - 1] += 1
                pre[seg.layer] += 1
    phases_ok = all(c == 1 for c in pre) and all(c == 1 for c in post)
    # Attention is either statically owned (layer-wise pipelines) or
    # scheduled dynamically per micro batch (helix partition: absent here).
    attn_ok = all(c == 1 for c in attn) or all(c == 0 for c in attn)
    return phases_ok and attn_ok
