"""Model zoo (Table 3 configs) and pipeline segment partitioning."""

from repro.model.config import (
    GPT3_1P3B,
    GPT3_3B,
    GPT3_7B,
    GPT3_13B,
    MODEL_PRESETS,
    ModelConfig,
    tiny_config,
)
from repro.model.partition import (
    Segment,
    SegmentKind,
    layerwise_partition,
    segments_cover_model,
)

__all__ = [
    "ModelConfig",
    "GPT3_1P3B",
    "GPT3_3B",
    "GPT3_7B",
    "GPT3_13B",
    "MODEL_PRESETS",
    "tiny_config",
    "Segment",
    "SegmentKind",
    "layerwise_partition",
    "segments_cover_model",
]
