"""Render the paper's schedule figures as ASCII Gantt charts.

Reproduces Figures 2a/2b (1F1B vs HelixPipe FILO) and 7a/7b (naive vs
two-fold FILO) in the unit-time world the paper draws them in
(pre : attention : post = 1 : 3 : 2, backward == forward).  Digits are
forward micro batches, letters are backwards, dots are pipeline bubble.
Every schedule is resolved by name through the schedule registry.

Run:  python examples/schedule_gallery.py
"""

from repro.analysis import format_table
from repro.experiments import fig2_fig7_schedules
from repro.schedules.registry import available_schedules, get_schedule


def main() -> None:
    print("Registered schedules:")
    for name in available_schedules():
        print(f"  {name:20s} {get_schedule(name).description}")
    print()
    print(fig2_fig7_schedules.render(width=110))
    print(format_table(fig2_fig7_schedules.run()))


if __name__ == "__main__":
    main()
