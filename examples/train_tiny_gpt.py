"""Train a tiny GPT with the HelixPipe schedule and verify convergence.

Demonstrates the paper's Section 4.1 claim end to end: training with the
two-fold FILO schedule (including weight shipping and
recomputation-without-attention) follows *exactly* the same loss curve
as single-device training, because every iteration produces identical
gradients.

The pipeline here runs on functional virtual devices (numpy), so this is
a semantics demonstration, not a speed one.

Run:  python examples/train_tiny_gpt.py
"""

import numpy as np

from repro.costmodel import RecomputeStrategy
from repro.model import tiny_config
from repro.nn import Adam, GPTModel
from repro.runtime import run_schedule
from repro.schedules.costs import UnitCosts
from repro.schedules.registry import build_schedule

SEQ, BATCH, MICRO_BATCHES, STAGES = 16, 2, 4, 2
STEPS = 200
LOCKSTEP_STEPS = 10


def make_batch(rng, vocab):
    """Synthetic copy task: at position t, predict the token at t-1.

    The causal attention window contains the answer, so the loss should
    fall well below the ln(vocab) of random guessing within a few steps.
    """
    tokens = rng.integers(0, vocab, size=(MICRO_BATCHES, SEQ, BATCH))
    targets = np.roll(tokens, 1, axis=1)
    return tokens, targets


def main() -> None:
    cfg = tiny_config(num_layers=4, num_heads=2, hidden_size=32, vocab_size=64)
    pipeline_model = GPTModel.init(cfg, max_seq=SEQ, seed=0)
    reference_model = GPTModel.init(cfg, max_seq=SEQ, seed=0)
    sched = build_schedule(
        "helix",
        (STAGES, MICRO_BATCHES),
        UnitCosts(num_layers=cfg.num_layers, recompute=RecomputeStrategy.WITHOUT_ATTENTION),
    )
    opt_pipe, opt_ref = Adam(lr=1e-2), Adam(lr=1e-2)
    rng = np.random.default_rng(42)

    print(f"{'step':>4s}  {'helix loss':>12s}  {'reference':>12s}  {'|diff|':>9s}")
    final_loss = float("inf")
    for step in range(STEPS):
        tokens, targets = make_batch(rng, cfg.vocab_size)

        result = run_schedule(
            pipeline_model,
            sched,
            tokens,
            targets,
            recompute=RecomputeStrategy.WITHOUT_ATTENTION,
            ship_qkv=True,
        )
        grads = pipeline_model.zero_grads()
        for key, g in result.grads.items():
            scope, name = key.split(".", 1)
            if scope == "embed":
                grads.embed[name] += g
            elif scope == "head":
                grads.head[name] += g
            else:
                grads.layers[int(scope.removeprefix("layer"))][name] += g
        opt_pipe.step(pipeline_model, grads)
        final_loss = result.mean_loss

        if step < LOCKSTEP_STEPS:
            # Exact-equality phase: the pipeline's gradients are identical
            # to the reference, so the loss curves coincide to float64
            # rounding.  (Beyond a few steps the *summation order* of the
            # per-stage gradient merge makes ulp-level differences that
            # Adam amplifies -- normal floating-point, not a semantics
            # difference, so we stop the strict comparison there.)
            ref_losses, ref_grads = reference_model.forward_backward_batch(
                tokens, targets
            )
            opt_ref.step(reference_model, ref_grads)
            diff = abs(result.mean_loss - float(np.mean(ref_losses)))
            print(
                f"{step:4d}  {result.mean_loss:12.6f}  "
                f"{np.mean(ref_losses):12.6f}  {diff:9.2e}"
            )
            assert diff < 1e-9, "pipeline diverged from the reference!"
        elif step % 20 == 0 or step == STEPS - 1:
            print(f"{step:4d}  {result.mean_loss:12.6f}")

    assert final_loss < 2.5, "the copy task should be learned by now"
    print(f"\nFinal loss {final_loss:.3f}, well below ln(64) = 4.16 of random")
    print("guessing -- and the first steps matched the single-device run to 1e-9.")


if __name__ == "__main__":
    main()
