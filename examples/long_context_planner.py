"""Plan a long-context training run under a fixed token budget.

.. deprecated::
    This script is now a thin shim over the workload-grid tuner.  The
    sweep it used to hand-roll -- sequence length x pipeline size under
    a fixed token budget, each method at its own micro-batch grid,
    checked against the GPU memory capacity -- is exactly
    :func:`repro.tuner.tune_grid` over a
    :class:`repro.workloads.WorkloadGrid`, also available from the
    shell as::

        python -m repro tune --budget-tokens 4M --seq-lens 32k,64k,128k -p 4,8

    Prefer those entry points; this script remains only to keep the
    historical example runnable with its original output shape.

The paper's motivation (Section 3.1): production training fixes the
tokens per iteration (Llama-style 4M-16M), so raising the sequence
length shrinks the number of micro batches available to the pipeline and
amplifies the bubble.  The planner sweeps sequence lengths and pipeline
sizes for a 7B model under a 4M-token budget, checks each method against
the GPU memory capacity, and reports the fastest feasible configuration.

Run:  python examples/long_context_planner.py
"""

from repro.analysis import format_table
from repro.experiments.common import METHODS
from repro.tuner import CostCache, tune_grid
from repro.workloads import WorkloadGrid, format_seq_len

GIB = float(1 << 30)
TOKEN_BUDGET = 4 << 20  # 4M tokens per iteration


def main() -> None:
    grid = WorkloadGrid(
        model="7B",
        gpu="H20",
        seq_lens=(32768, 65536, 131072),
        pipeline_sizes=(4, 8),
        budget_tokens=TOKEN_BUDGET,
    )
    # The historical output compared each method in its paper-default
    # configuration (one row per method); keep that shape by disabling
    # the option axis and the recompute sweep.
    keep = tune_grid(
        grid,
        schedules=METHODS,
        recomputes="defaults",
        option_grids={},
        cache=CostCache(),
    )

    method_order = {m: i for i, m in enumerate(METHODS)}
    keep.sort(
        key=lambda r: (
            r.point.seq_len,
            r.point.p,
            method_order.get(r.plan.candidate.schedule, 99) if r.plan else 99,
        )
    )

    rows = []
    for r in keep:
        plan = r.plan
        if plan is None or plan.iteration_time is None:
            status = f"infeasible ({r.reason})"[:34]
            rows.append(
                {
                    "seq_len": format_seq_len(r.point.seq_len),
                    "pp": r.point.p,
                    "micro_batches": r.point.num_micro_batches,
                    "method": plan.candidate.schedule if plan else "-",
                    "status": status,
                    "iter_s": float("nan"),
                    "tokens_per_s": 0.0,
                    "peak_gib": float("nan"),
                }
            )
            continue
        rows.append(
            {
                "seq_len": format_seq_len(r.point.seq_len),
                "pp": r.point.p,
                "micro_batches": plan.candidate.num_micro_batches,
                "method": plan.candidate.schedule,
                "status": "ok" if r.feasible else "OOM",
                "iter_s": plan.iteration_time,
                "tokens_per_s": plan.tokens_per_s,
                "peak_gib": plan.peak_memory_bytes / GIB,
            }
        )
    print(format_table(rows, floatfmt=".2f"))

    feasible = [r for r in rows if r["status"] == "ok"]
    for seq in ("32k", "64k", "128k"):
        cands = [r for r in feasible if r["seq_len"] == seq]
        if cands:
            best = max(cands, key=lambda r: r["tokens_per_s"])
            print(
                f"\nBest at {seq}: {best['method']} with pp={best['pp']} "
                f"({best['tokens_per_s']:.0f} tokens/s, {best['peak_gib']:.1f} GiB peak)"
            )


if __name__ == "__main__":
    main()
