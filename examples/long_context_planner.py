"""Plan a long-context training run under a fixed token budget.

The paper's motivation (Section 3.1): production training fixes the
tokens per iteration (Llama-style 4M-16M), so raising the sequence
length shrinks the number of micro batches available to the pipeline and
amplifies the bubble.  This planner sweeps sequence lengths and pipeline
sizes for a 7B model under a 4M-token budget, checks each method against
the GPU memory capacity, and reports the fastest feasible configuration.

Each method is resolved through the schedule registry, which also
supplies its micro-batch divisibility constraint: two-fold FILO runs in
loops of ``2p`` while the layer-wise baselines only need rounds of
``p``, so the token budget is rounded down per schedule instead of
forcing every method onto HelixPipe's coarser grid.

Run:  python examples/long_context_planner.py
"""

from repro.analysis import format_table
from repro.experiments.common import METHODS, Workload, run_method
from repro.schedules.registry import get_schedule

GIB = float(1 << 30)
TOKEN_BUDGET = 4 << 20  # 4M tokens per iteration


def main() -> None:
    rows = []
    for seq_len in (32768, 65536, 131072):
        for p in (4, 8):
            budget = TOKEN_BUDGET // seq_len
            for method in METHODS:
                # Round the budget down to the schedule's own grid
                # (2p for two-fold FILO, p for layer-wise baselines).
                micro_batches = get_schedule(method).round_micro_batches(budget, p)
                if micro_batches == 0:
                    continue
                wl = Workload.paper("7B", "H20", p, seq_len)
                wl.num_micro_batches = micro_batches
                capacity = wl.cluster.node.gpu.hbm_bytes
                try:
                    r = run_method(wl, method)
                except ValueError as err:  # e.g. AdaPipe: no feasible plan
                    rows.append(
                        {
                            "seq_len": f"{seq_len // 1024}k",
                            "pp": p,
                            "micro_batches": micro_batches,
                            "method": method,
                            "status": f"infeasible ({err})"[:34],
                            "iter_s": float("nan"),
                            "tokens_per_s": 0.0,
                            "peak_gib": float("nan"),
                        }
                    )
                    continue
                peak = max(r.peak_memory_bytes)
                fits = peak <= capacity
                rows.append(
                    {
                        "seq_len": f"{seq_len // 1024}k",
                        "pp": p,
                        "micro_batches": micro_batches,
                        "method": method,
                        "status": "ok" if fits else "OOM",
                        "iter_s": r.makespan,
                        "tokens_per_s": wl.tokens_per_iteration / r.makespan,
                        "peak_gib": peak / GIB,
                    }
                )
    print(format_table(rows, floatfmt=".2f"))

    feasible = [r for r in rows if r["status"] == "ok"]
    for seq in ("32k", "64k", "128k"):
        cands = [r for r in feasible if r["seq_len"] == seq]
        if cands:
            best = max(cands, key=lambda r: r["tokens_per_s"])
            print(
                f"\nBest at {seq}: {best['method']} with pp={best['pp']} "
                f"({best['tokens_per_s']:.0f} tokens/s, {best['peak_gib']:.1f} GiB peak)"
            )


if __name__ == "__main__":
    main()
