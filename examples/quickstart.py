"""Quickstart: compare pipeline schedules on a simulated GPU cluster.

Builds the paper's headline workload -- a 7B GPT with a 128k-token
sequence on eight 8xH20 nodes (64 GPUs) -- runs 1F1B, ZB1P, AdaPipe and
HelixPipe through the discrete-event simulator, and prints throughput,
bubble fraction, and the per-stage memory footprint.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.experiments import Workload, run_all_methods

GIB = float(1 << 30)


def main() -> None:
    wl = Workload.paper(model_name="7B", gpu="H20", num_stages=8, seq_len=131072)
    print(
        f"Workload: {wl.model.name} GPT, seq {wl.seq_len // 1024}k, "
        f"{wl.p} pipeline stages ({wl.cluster.total_gpus} GPUs), "
        f"{wl.num_micro_batches} micro batches/iter"
    )
    results = run_all_methods(wl)

    rows = []
    for method, r in results.items():
        rows.append(
            {
                "method": method,
                "iter_time_s": r.makespan,
                "tokens_per_s": wl.tokens_per_iteration / r.makespan,
                "bubble_pct": 100.0 * r.bubble_fraction,
                "peak_mem_gib": max(r.peak_memory_bytes) / GIB,
                "mem_imbalance": max(r.peak_memory_bytes) / min(r.peak_memory_bytes),
            }
        )
    print()
    print(format_table(rows))

    best_baseline = min(
        r.makespan for m, r in results.items() if m != "helix"
    )
    speedup = best_baseline / results["helix"].makespan - 1.0
    print(f"\nHelixPipe speedup over the best baseline: {speedup:+.1%}")
    print("(paper reports +26% for this configuration on its testbed)")


if __name__ == "__main__":
    main()
