"""Auto-tune the pipeline schedule for a long-sequence workload.

Sweeps every tunable registered schedule x its admissible recomputation
strategies x the feasible micro-batch counts x each schedule's option
grid (interleaved chunk counts, ZB1P outstanding-W caps, HelixPipe
fold) for the paper's 7B / H20 / p=8 / 64k workload, ranks the feasible
plans by simulated throughput under the HBM cap, and shows the cost
cache at work three ways:

1. a parallel cold sweep (``workers=4``: candidates evaluate in a
   process pool, per-worker caches merged back on join);
2. an in-memory warm sweep that re-simulates nothing;
3. a persisted cache: the sweep reloaded from disk in a fresh cache
   performs zero cold evaluations (all disk hits).

The same sweep is available without a script:

    python -m repro tune --model 7B --gpu H20 -p 8 --seq-len 64k \\
        --workers 4 --cache sweep-cache.json

Run:  python examples/autotune_demo.py
"""

import os
import tempfile
import time

from repro.analysis import format_plan_table
from repro.experiments import Workload
from repro.tuner import CostCache, autotune

GIB = float(1 << 30)


def main() -> None:
    wl = Workload.paper("7B", "H20", 8, 65536)
    cap = wl.cluster.node.gpu.hbm_bytes
    print(
        f"Workload: {wl.model.name} GPT, seq {wl.seq_len // 1024}k, "
        f"p={wl.p}, micro-batch budget {wl.num_micro_batches}, "
        f"HBM cap {cap / GIB:.0f} GiB\n"
    )

    # Cold sweep, evaluated in a pool of 4 worker processes.
    cache = CostCache()
    t0 = time.perf_counter()
    plans = autotune(wl, cache=cache, workers=4)
    cold = time.perf_counter() - t0

    print(format_plan_table(plans))
    best = plans[0]
    print(
        f"\nBest plan: {best.label} -- {best.iteration_time:.2f} s/iter, "
        f"{best.tokens_per_s:.0f} tokens/s, peak {best.peak_memory_bytes / GIB:.1f} GiB"
    )

    # Warm sweep: every candidate hits the in-memory cache.
    t0 = time.perf_counter()
    again = autotune(wl, cache=cache)
    warm = time.perf_counter() - t0
    assert again == plans, "cached sweep must reproduce the cold results"
    print(
        f"\nCold sweep (4 workers) {cold:.2f} s, cached sweep {warm * 1e3:.1f} ms "
        f"({cache.stats}, hit rate {cache.stats.hit_rate:.0%})"
    )

    # Persist the cache and sweep again from a fresh load: zero cold
    # evaluations, every lookup served off the disk store.
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "sweep-cache.json")
        cache.save(path)
        reloaded = CostCache.from_file(path)
        t0 = time.perf_counter()
        from_disk = autotune(wl, cache=reloaded)
        disk = time.perf_counter() - t0
        assert from_disk == plans, "persisted sweep must reproduce the cold results"
        assert reloaded.stats.misses == 0, "persisted sweep must be fully warm"
        print(f"Persisted sweep {disk * 1e3:.1f} ms ({reloaded.stats})")


if __name__ == "__main__":
    main()
