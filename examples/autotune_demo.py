"""Auto-tune the pipeline schedule for a long-sequence workload.

Sweeps every tunable registered schedule x its admissible recomputation
strategies x the feasible micro-batch counts for the paper's 7B / H20 /
p=8 / 64k workload, ranks the feasible plans by simulated throughput
under the HBM cap, and shows the memoizing cost cache at work: the
second sweep re-simulates nothing.

Run:  python examples/autotune_demo.py
"""

import time

from repro.analysis import format_plan_table
from repro.experiments import Workload
from repro.tuner import CostCache, autotune

GIB = float(1 << 30)


def main() -> None:
    wl = Workload.paper("7B", "H20", 8, 65536)
    cap = wl.cluster.node.gpu.hbm_bytes
    print(
        f"Workload: {wl.model.name} GPT, seq {wl.seq_len // 1024}k, "
        f"p={wl.p}, micro-batch budget {wl.num_micro_batches}, "
        f"HBM cap {cap / GIB:.0f} GiB\n"
    )

    cache = CostCache()
    t0 = time.perf_counter()
    plans = autotune(wl, cache=cache)
    cold = time.perf_counter() - t0

    print(format_plan_table(plans))
    best = plans[0]
    print(
        f"\nBest plan: {best.label} -- {best.iteration_time:.2f} s/iter, "
        f"{best.tokens_per_s:.0f} tokens/s, peak {best.peak_memory_bytes / GIB:.1f} GiB"
    )

    t0 = time.perf_counter()
    again = autotune(wl, cache=cache)
    warm = time.perf_counter() - t0
    assert again == plans, "cached sweep must reproduce the cold results"
    print(
        f"\nCold sweep {cold:.2f} s, cached sweep {warm * 1e3:.1f} ms "
        f"({cache.stats}, hit rate {cache.stats.hit_rate:.0%})"
    )


if __name__ == "__main__":
    main()
