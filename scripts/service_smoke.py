#!/usr/bin/env python
"""End-to-end smoke test of the planner service (the CI service gate).

Drives the full serving story in one process tree:

1. Seed a sqlite cost cache store by running the tuner directly
   (``autotune`` on the smoke workload).
2. Start ``repro serve`` as a subprocess against that store.
3. ``POST /v1/plan`` for the seeded workload and assert the answer
   (a) was served warm -- the seeded store made re-evaluation
   unnecessary, proven by the disk-hit counters -- and (b) is
   byte-identical to serialising the direct ``autotune`` result.
4. ``GET /v1/stats`` and check the telemetry/cache shape.
5. Fire a short ``scripts/replay_traffic.py`` burst and let its
   consistency gates (all requests answered, outcome counters add up,
   bounded cold evaluations) finish the job.

Exits non-zero on the first violated expectation.  Needs only the repo
and the stdlib; CI runs it as ``python scripts/service_smoke.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service.planner import plan_payload  # noqa: E402
from repro.tuner import CostCache, autotune  # noqa: E402
from repro.workloads import Workload  # noqa: E402

_PLAN_BODY = {
    "model": "7B",
    "gpu": "H20",
    "p": 4,
    "seq_len": "32k",
    "schedules": ["1f1b", "helix"],
    "options": False,
}


def _request(base: str, path: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def _check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main() -> int:
    workload = Workload.paper("7B", "H20", 4, 32768)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "plans.sqlite")

        print("== seeding the sqlite store with a direct tuner run ==")
        cache = CostCache.open(store_path)
        direct = autotune(
            workload,
            schedules=list(_PLAN_BODY["schedules"]),
            option_grids={},
            cache=cache,
        )
        seeded = cache.stats.misses
        _check(seeded > 0, f"seed sweep evaluated {seeded} candidates")
        cache.store.close()

        print("== starting repro serve against the seeded store ==")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--cache", store_path, "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        base = None
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                print(f"  serve: {line.rstrip()}")
                if "listening on" in line:
                    base = line.rsplit("listening on ", 1)[1].strip()
                    break
            _check(base is not None, f"service came up at {base}")

            health = _request(base, "/v1/healthz")
            _check(health["status"] == "ok", "healthz reports ok")
            _check(
                health["cache_entries"] == seeded,
                f"service sees the {seeded} seeded entries",
            )

            print("== plan request against the warm store ==")
            plan = _request(base, "/v1/plan", _PLAN_BODY)
            _check(
                plan["outcome"] == "warm",
                "seeded workload is served warm (no re-evaluation)",
            )
            _check(
                plan["cache"]["misses"] == 0 and plan["cache"]["disk_hits"] > 0,
                f"hit counters prove it: {plan['cache']['disk_hits']} disk "
                "hits, 0 misses",
            )

            expected = [plan_payload(r) for r in direct]
            _check(
                json.dumps(plan["plans"], sort_keys=True)
                == json.dumps(expected, sort_keys=True),
                "service plans are byte-identical to direct autotune",
            )
            best = next(r for r in direct if r.feasible)
            _check(
                plan["best"] == plan_payload(best),
                f"best plan matches: {best.label}",
            )

            stats = _request(base, "/v1/stats")
            _check(
                stats["telemetry"]["plans_warm"] == 1
                and stats["telemetry"]["errors"] == 0,
                "stats telemetry counted the warm plan, no errors",
            )
            _check(
                stats["cache"]["backend"] == "sqlite"
                and stats["cache"]["path"] == store_path,
                "stats reports the sqlite store",
            )

            print("== replay burst ==")
            replay = subprocess.run(
                [sys.executable, os.path.join(REPO, "scripts", "replay_traffic.py"),
                 "--url", base, "--requests", "24", "--clients", "6",
                 "--seq-lens", "8k,16k", "--pipeline-sizes", "2",
                 "--schedules", "1f1b", "--expect-max-cold", "2"],
                env=env,
            )
            _check(replay.returncode == 0, "replay_traffic burst is clean")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
