#!/usr/bin/env python
"""Synthetic load generator for the planner service.

Replays a burst of plan requests against a running ``repro serve``
instance from N concurrent client threads, sampling workloads from a
small neighbourhood (several sequence lengths and pipeline sizes) with
deliberate repetition so the run exercises the service's three serving
paths: cold evaluations, warm cache hits and request coalescing.

Usage::

    python -m repro serve --cache plans.sqlite --port 8642 &
    python scripts/replay_traffic.py --url http://127.0.0.1:8642 \
        --requests 64 --clients 8 --seed 7

Exits non-zero when any request fails or when the service's stats
counters do not add up (plans == cold + warm + coalesced), so CI can
use a short burst as a health gate.  Stdlib only, like the service.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request


def _request(url: str, path: str, payload: dict | None = None, timeout: float = 300.0):
    """One JSON round trip; returns (status, body-dict)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url.rstrip("/") + path,
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _workload_pool(args: argparse.Namespace) -> list[dict]:
    """The request bodies the burst samples from (with repetition)."""
    pool = []
    for seq_len in args.seq_lens.split(","):
        for p in args.pipeline_sizes.split(","):
            body = {
                "model": args.model,
                "gpu": args.gpu,
                "p": int(p),
                "seq_len": seq_len.strip(),
                "options": False,
            }
            if args.schedules:
                body["schedules"] = [
                    s.strip() for s in args.schedules.split(",") if s.strip()
                ]
            pool.append(body)
    return pool


def replay(args: argparse.Namespace) -> int:
    status, health = _request(args.url, "/v1/healthz")
    print(
        f"service up: {health['status']}, "
        f"{health['cache_entries']} cached entries"
    )

    pool = _workload_pool(args)
    rng = random.Random(args.seed)
    # Pre-draw the schedule of requests so every run with one seed is
    # reproducible regardless of thread interleaving.
    bodies = [rng.choice(pool) for _ in range(args.requests)]
    results: list[dict | None] = [None] * args.requests
    failures: list[str] = []
    next_index = iter(range(args.requests))
    index_lock = threading.Lock()

    def client() -> None:
        while True:
            with index_lock:
                i = next(next_index, None)
            if i is None:
                return
            try:
                _, body = _request(args.url, "/v1/plan", bodies[i])
                results[i] = body
            except (urllib.error.URLError, OSError, ValueError) as err:
                failures.append(f"request {i}: {err}")

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client, name=f"client-{c}")
        for c in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    answered = [r for r in results if r is not None]
    outcomes = {"cold": 0, "warm": 0, "coalesced": 0}
    for r in answered:
        outcomes[r["outcome"]] += 1
    print(
        f"replayed {len(answered)}/{args.requests} requests from "
        f"{args.clients} clients in {elapsed:.2f} s "
        f"({len(answered) / elapsed:.1f} req/s)"
    )
    print(
        f"outcomes: {outcomes['cold']} cold, {outcomes['warm']} warm, "
        f"{outcomes['coalesced']} coalesced"
    )

    _, stats = _request(args.url, "/v1/stats")
    tel = stats["telemetry"]
    print(
        f"service totals: {tel['plans']} plans "
        f"({tel['plans_cold']} cold, {tel['plans_warm']} warm, "
        f"{tel['plans_coalesced']} coalesced), {tel['errors']} errors; "
        f"cache {stats['cache']['entries']} entries, "
        f"hit rate {stats['cache']['hit_rate']:.0%}"
    )

    ok = not failures and len(answered) == args.requests
    if tel["plans_cold"] + tel["plans_warm"] + tel["plans_coalesced"] != tel["plans"]:
        print("FAIL plan outcome counters do not add up", file=sys.stderr)
        ok = False
    if args.expect_max_cold is not None and tel["plans_cold"] > args.expect_max_cold:
        print(
            f"FAIL {tel['plans_cold']} cold evaluations exceed the "
            f"--expect-max-cold {args.expect_max_cold} bound "
            "(dedup or the warm cache is not working)",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="planner service base URL (default: %(default)s)",
    )
    parser.add_argument("--requests", type=int, default=32, metavar="N",
                        help="total plan requests to send (default: %(default)s)")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent client threads (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="workload sampling seed (default: %(default)s)")
    parser.add_argument("--model", default="7B")
    parser.add_argument("--gpu", default="H20")
    parser.add_argument("--seq-lens", default="8k,16k", metavar="S,S",
                        help="sequence lengths to sample (default: %(default)s)")
    parser.add_argument("--pipeline-sizes", default="2,4", metavar="P,P",
                        help="pipeline sizes to sample (default: %(default)s)")
    parser.add_argument("--schedules", default="1f1b,helix", metavar="A,B",
                        help="schedules to sweep per request "
                        "(default: %(default)s; empty = all tunable)")
    parser.add_argument(
        "--expect-max-cold",
        type=int,
        default=None,
        metavar="N",
        help="fail when the service reports more than N cold plan "
        "requests (CI gate: the workload pool has only so many "
        "distinct points)",
    )
    return replay(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
