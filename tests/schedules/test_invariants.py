"""Property-style invariants over every registered schedule.

Instead of per-builder assertions, this suite sweeps the whole registry
across a small (p, m) grid and checks the properties *any* correct
pipeline schedule must satisfy: it builds, its IR passes
``Schedule.validate()``, the discrete-event simulator executes it to a
positive makespan, and adding micro batches never makes an iteration
finish earlier (makespan monotone non-decreasing in m).  A new builder
registered in a later PR inherits all of these checks for free.
"""

import pytest

from repro.analysis.bubble import (
    makespan_lower_bound,
    recompute_time_lower_bound,
)
from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.registry import (
    ScheduleBuildError,
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.sim import simulate
from repro.workloads import Workload

PP_SIZES = (2, 4)
#: Micro-batch multiples of each schedule's own base count.
M_FACTORS = (1, 2, 3)


def _workload(p: int) -> Workload:
    return Workload.paper("1.3B", "H20", p, 8192)


def _base_micro_batches(spec, p: int) -> int:
    """Smallest count on the spec's divisor grid that is >= 2p.

    2p is the paper protocol's floor and safely above the warm-up
    requirements of every layer-wise builder; staying on the divisor
    grid keeps helix/fold and interleaved builds feasible.
    """
    d = spec.micro_batch_divisor(p)
    return ((2 * p + d - 1) // d) * d


def _build_and_simulate(spec, wl: Workload, m: int):
    opts = workload_option_defaults(spec, wl)
    sched = spec.build(
        (wl.p, m), wl.costs(spec.default_recompute), **opts
    )
    result = simulate(
        sched, wl.cluster, static_memory_bytes=wl.static_memory()
    )
    return sched, result


@pytest.mark.parametrize("p", PP_SIZES)
@pytest.mark.parametrize("name", available_schedules())
class TestScheduleInvariants:
    def test_builds_validates_and_simulates(self, name, p):
        spec = get_schedule(name)
        wl = _workload(p)
        m = _base_micro_batches(spec, p)
        sched, result = _build_and_simulate(spec, wl, m)
        assert sched.num_stages == p
        sched.validate()  # full IR pass pipeline, raises on violation
        assert result.makespan > 0.0
        assert result.max_peak_memory_bytes > 0.0
        assert 0.0 <= result.bubble_fraction < 1.0

    def test_makespan_monotone_in_micro_batches(self, name, p):
        """More micro batches can never finish an iteration earlier."""
        spec = get_schedule(name)
        wl = _workload(p)
        base = _base_micro_batches(spec, p)
        makespans = []
        for k in M_FACTORS:
            _, result = _build_and_simulate(spec, wl, k * base)
            makespans.append(result.makespan)
        for smaller, larger in zip(makespans, makespans[1:]):
            assert larger >= smaller * (1.0 - 1e-12), (
                f"{name} p={p}: makespan decreased from {smaller} to "
                f"{larger} when micro batches grew"
            )

    def test_per_micro_batch_time_amortises(self, name, p):
        """Makespan per micro batch must not grow with m: the fill/drain
        overhead amortises, so time/m at 3x the base count is bounded by
        time/m at the base count (equality for a bubble-free pipeline)."""
        spec = get_schedule(name)
        wl = _workload(p)
        base = _base_micro_batches(spec, p)
        _, small = _build_and_simulate(spec, wl, base)
        _, large = _build_and_simulate(spec, wl, M_FACTORS[-1] * base)
        per_small = small.makespan / base
        per_large = large.makespan / (M_FACTORS[-1] * base)
        assert per_large <= per_small * (1.0 + 1e-12), (
            f"{name} p={p}: per-micro-batch time grew from {per_small} "
            f"to {per_large}"
        )

    def test_lower_bound_admissible(self, name, p):
        """The closed-form makespan lower bound never exceeds the
        simulated makespan -- the admissibility property best-first
        pruning in the auto-tuner relies on (repro.tuner.bounds).

        Swept across the schedule's registered option grid, its
        micro-batch grid, and NONE plus each spec's default recompute
        strategy, with the per-strategy recompute term
        (:func:`recompute_time_lower_bound`) included -- the tightest
        bound the tuner's pruning actually uses.
        """
        spec = get_schedule(name)
        wl = _workload(p)
        layer = wl.costs(RecomputeStrategy.NONE).timing.layer_times()
        grid = spec.option_grid(p)
        combos = [{}] + [
            {opt: v}
            for opt, values in grid.items()
            for v in values
            if v != spec.options[opt]
        ]
        strategies = {RecomputeStrategy.NONE, spec.default_recompute}
        strategies &= set(spec.recompute_choices)
        for combo in combos:
            base = spec.micro_batch_divisor(p, **combo)
            base = max(base, ((2 * p + base - 1) // base) * base)
            for strat in strategies:
                for m in (base, M_FACTORS[-1] * base):
                    opts = {**workload_option_defaults(spec, wl), **combo}
                    try:
                        sched = spec.build((p, m), wl.costs(strat), **opts)
                    except ScheduleBuildError:
                        # Infeasible grid combo (e.g. layer count not
                        # divisible by p x chunks) -- nothing to bound.
                        continue
                    result = simulate(
                        sched, wl.cluster,
                        static_memory_bytes=wl.static_memory(),
                    )
                    bound = makespan_lower_bound(
                        name,
                        layer,
                        wl.model.num_layers,
                        p,
                        m,
                        {**spec.options, **combo},
                        recompute_time_lower_bound(layer, strat),
                    )
                    assert bound <= result.makespan * (1.0 + 1e-9), (
                        f"{name} p={p} m={m} {strat.value} {combo}: bound "
                        f"{bound} exceeds simulated makespan {result.makespan}"
                    )
