"""MILP-placed ZB1P: validity, memory parity, and the ablation finding."""

import pytest

from repro.cluster import abstract_cluster
from repro.schedules.costs import UnitCosts
from repro.schedules.zb1p import build_zb1p
from repro.schedules.zb_milp import build_zb_milp, zb_milp_order
from repro.sim import simulate


class TestZbMilpOrder:
    def test_all_ops_scheduled(self):
        for stage in range(4):
            order = zb_milp_order(4, 8, stage)
            for kind in ("F", "BI", "BW"):
                assert sorted(mb for op, mb in order if op == kind) == list(range(8))

    def test_dependency_bw_after_bi(self):
        for stage in range(4):
            done = set()
            for op, mb in zb_milp_order(4, 8, stage):
                if op == "BI":
                    done.add(mb)
                elif op == "BW":
                    assert mb in done

    def test_memory_cap(self):
        for stage in range(4):
            outstanding = 0
            for op, _ in zb_milp_order(4, 16, stage):
                if op == "F":
                    outstanding += 1
                elif op == "BW":
                    outstanding -= 1
                assert outstanding <= 4

    def test_custom_cap_respected(self):
        order = zb_milp_order(2, 8, 0, max_outstanding=2)
        outstanding = 0
        for op, _ in order:
            outstanding += op == "F"
            outstanding -= op == "BW"
            assert outstanding <= 2


class TestZbMilpSchedule:
    def test_builds_and_validates(self):
        sched = build_zb_milp(4, 8, UnitCosts(num_layers=8))
        sched.validate()
        assert sched.name == "zb1p-milp"

    def test_simulates_without_deadlock(self):
        sched = build_zb_milp(
            4, 8, UnitCosts(num_layers=8), include_embed=False, include_head=False
        )
        r = simulate(sched, abstract_cluster(4))
        assert r.makespan > 0

    def test_ablation_heuristic_vs_milp(self):
        """Documented finding: the static earliest-W MILP is close to but
        not better than the gap-filling heuristic under event-driven
        execution (its objective cannot see the timing)."""
        p, m, L = 4, 12, 8
        costs = UnitCosts(num_layers=L)
        heur = simulate(
            build_zb1p(p, m, costs, include_embed=False, include_head=False),
            abstract_cluster(p),
        )
        milp = simulate(
            build_zb_milp(p, m, costs, include_embed=False, include_head=False),
            abstract_cluster(p),
        )
        assert milp.makespan <= heur.makespan * 1.25
        assert heur.makespan <= milp.makespan * 1.05  # heuristic not worse

    def test_runtime_equivalence(self):
        """The MILP order still computes exact gradients."""
        import numpy as np

        from repro.model import tiny_config
        from repro.nn import GPTModel
        from repro.runtime import run_schedule

        cfg = tiny_config(num_layers=4, num_heads=2, hidden_size=16, vocab_size=32)
        model = GPTModel.init(cfg, max_seq=8, seed=5)
        rng = np.random.default_rng(6)
        tokens = rng.integers(0, 32, size=(4, 8, 2))
        targets = rng.integers(0, 32, size=(4, 8, 2))
        ref_losses, ref_grads = model.forward_backward_batch(tokens, targets)
        sched = build_zb_milp(2, 4, UnitCosts(num_layers=4))
        result = run_schedule(model, sched, tokens, targets)
        for i, ref in enumerate(ref_losses):
            assert result.losses[i] == pytest.approx(ref, abs=1e-10)
        for k, ref in ref_grads.flat().items():
            np.testing.assert_allclose(result.grads[k], ref, atol=1e-10)
