"""Schedule registry: specs, constraints, uniform build signature."""

import pytest

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.costs import UnitCosts
from repro.schedules.passes import run_passes
from repro.schedules.registry import (
    ScheduleBuildError,
    available_schedules,
    build_schedule,
    get_schedule,
    register_schedule,
)
from repro.schedules.registry import as_shape

EXPECTED = {
    "gpipe",
    "1f1b",
    "interleaved",
    "zb1p",
    "zb-milp",
    "adapipe",
    "helix",
    "helix-naive",
    "helix-no-recompute",
}


def _costs(L=8, recompute=RecomputeStrategy.NONE):
    return UnitCosts(num_layers=L, recompute=recompute)


class TestRegistry:
    def test_all_builtin_registered(self):
        assert EXPECTED <= set(available_schedules())

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown schedule"):
            get_schedule("pipedream")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_schedule("1f1b")(lambda *a, **k: None)

    def test_specs_have_descriptions(self):
        for name in EXPECTED:
            assert get_schedule(name).description

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    @pytest.mark.parametrize("p", [2, 4])
    def test_every_schedule_builds_pass_clean(self, name, p):
        """Small workload grid: every registered schedule verifies."""
        spec = get_schedule(name)
        m = max(spec.micro_batch_divisor(p), 2 * p)
        sched = spec.build((p, m), _costs(L=8))
        assert sched.num_stages == p
        assert run_passes(sched) == []

    def test_unknown_option_rejected(self):
        with pytest.raises(ScheduleBuildError, match="unknown option"):
            build_schedule("gpipe", (2, 4), _costs(), bogus=True)

    def test_builder_error_wrapped_with_reason(self):
        with pytest.raises(ScheduleBuildError, match="multiple of fold"):
            build_schedule("helix", (4, 6), _costs(L=4))
        try:
            build_schedule("helix", (4, 6), _costs(L=4))
        except ScheduleBuildError as err:
            assert err.schedule == "helix"
            assert "multiple" in err.reason

    def test_builder_raised_build_error_not_double_wrapped(self):
        """A builder that raises ScheduleBuildError itself (nested
        registry build, explicit constraint check) must keep its message
        as-is -- regression: it used to re-wrap into "name: name: reason"
        because ScheduleBuildError is a ValueError."""
        from repro.schedules.registry import ScheduleSpec

        def bad_builder(p, m, costs, **opts):
            raise ScheduleBuildError("inner-sched", "the real reason")

        spec = ScheduleSpec(name="outer-sched", builder=bad_builder)
        with pytest.raises(ScheduleBuildError) as exc_info:
            spec.build((2, 4), _costs())
        err = exc_info.value
        assert str(err) == "inner-sched: the real reason"
        assert err.schedule == "inner-sched"
        assert "outer-sched" not in str(err)
        assert str(err).count("inner-sched") == 1

    def test_options_override_bound_defaults(self):
        """The helix spec binds fold=2; fold=1 rebuilds the naive schedule."""
        naive = build_schedule("helix", (4, 8), _costs(L=4), fold=1)
        bound = build_schedule("helix-naive", (4, 8), _costs(L=4))
        assert naive.name == bound.name
        assert naive.meta["fold"] == 1


class TestConstraints:
    def test_helix_divisor_is_loop_size(self):
        assert get_schedule("helix").micro_batch_divisor(4) == 8
        assert get_schedule("helix-naive").micro_batch_divisor(4) == 4
        assert get_schedule("helix").micro_batch_divisor(4, fold=1) == 4

    def test_layerwise_divisor_is_p(self):
        for name in ("gpipe", "1f1b", "zb1p", "zb-milp", "adapipe"):
            assert get_schedule(name).micro_batch_divisor(8) == 8

    def test_round_micro_batches(self):
        spec = get_schedule("helix")
        assert spec.round_micro_batches(43, 4) == 40
        assert spec.round_micro_batches(7, 4) == 0
        assert get_schedule("1f1b").round_micro_batches(43, 4) == 40
        assert get_schedule("1f1b").round_micro_batches(43, 8) == 40


class TestShapeCoercion:
    def test_tuple(self):
        assert as_shape((4, 8)) == (4, 8)

    def test_object_with_num_stages(self):
        class Shape:
            num_stages = 2
            num_micro_batches = 6

        assert as_shape(Shape()) == (2, 6)

    def test_object_with_p(self):
        class WorkloadLike:
            p = 3
            num_micro_batches = 12

        assert as_shape(WorkloadLike()) == (3, 12)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_shape("nope")
        with pytest.raises(TypeError):
            as_shape((1, 2, 3))

    def test_build_accepts_workload_like(self):
        class WorkloadLike:
            p = 2
            num_micro_batches = 4

        sched = build_schedule("1f1b", WorkloadLike(), _costs())
        assert sched.num_micro_batches == 4


class TestSpecMetadata:
    def test_default_recompute(self):
        assert (
            get_schedule("helix").default_recompute
            is RecomputeStrategy.WITHOUT_ATTENTION
        )
        assert get_schedule("1f1b").default_recompute is RecomputeStrategy.NONE
        assert (
            get_schedule("helix-no-recompute").default_recompute
            is RecomputeStrategy.NONE
        )

    def test_alias_not_tunable(self):
        assert not get_schedule("helix-no-recompute").tunable
        assert get_schedule("helix").tunable

    def test_adapipe_declares_workload_options(self):
        spec = get_schedule("adapipe")
        assert "memory_cap_bytes" in spec.workload_options
        assert "static_memory_bytes" in spec.workload_options

    def test_helix_naive_is_untunable_alias_of_fold_grid(self):
        assert not get_schedule("helix-naive").tunable


class TestTuneOptionGrids:
    def test_static_grid_resolved(self):
        grid = get_schedule("interleaved").option_grid(8)
        assert grid == {"num_chunks_per_stage": (2, 4)}

    def test_callable_grid_receives_pipeline_size(self):
        grid = get_schedule("zb1p").option_grid(8)
        assert grid == {"max_outstanding": (None, 8)}
        assert get_schedule("zb1p").option_grid(4) == {
            "max_outstanding": (None, 4)
        }

    def test_grid_always_contains_schema_default(self):
        from repro.schedules.registry import ScheduleSpec

        spec = ScheduleSpec(
            name="grid-sched",
            builder=lambda *a, **k: None,
            options={"knob": 1},
            tune_options={"knob": (2, 3)},
        )
        assert spec.option_grid(4) == {"knob": (1, 2, 3)}

    def test_grid_for_unknown_option_rejected_at_registration(self):
        from repro.schedules.registry import ScheduleSpec

        with pytest.raises(ValueError, match="not in the option schema"):
            ScheduleSpec(
                name="bad-grid",
                builder=lambda *a, **k: None,
                options={"knob": 1},
                tune_options={"other": (2,)},
            )

    def test_specs_without_grids_have_empty_grid(self):
        assert get_schedule("1f1b").option_grid(8) == {}
