"""1F1B / GPipe / ZB1P schedule behaviour against the paper's formulas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bubble import bubble_time_1f1b, bubble_time_zb1p
from repro.cluster import abstract_cluster
from repro.costmodel import RecomputeStrategy, unit_layer_times
from repro.schedules.costs import UnitCosts
from repro.schedules.gpipe import build_gpipe
from repro.schedules.ir import ComputeInstr, OpType
from repro.schedules.one_f_one_b import build_1f1b, one_f_one_b_order
from repro.schedules.zb1p import build_zb1p, zb1p_order


def _sim(schedule, p):
    from repro.sim import simulate

    return simulate(schedule, abstract_cluster(p))


def _unit(L, recompute=RecomputeStrategy.NONE):
    return UnitCosts(num_layers=L, recompute=recompute)


class TestOneFOneB:
    def test_order_counts(self):
        for stage in range(4):
            order = one_f_one_b_order(4, 8, stage)
            assert sum(1 for op, _ in order if op == "F") == 8
            assert sum(1 for op, _ in order if op == "B") == 8

    def test_warmup_depth(self):
        order = one_f_one_b_order(4, 8, 0)
        warmup = 0
        for op, _ in order:
            if op != "F":
                break
            warmup += 1
        assert warmup == 4  # p - 1 - stage + the first steady F

    def test_last_stage_strictly_alternates(self):
        order = one_f_one_b_order(4, 8, 3)
        assert [op for op, _ in order[:6]] == ["F", "B", "F", "B", "F", "B"]

    def test_backward_in_forward_order(self):
        order = one_f_one_b_order(4, 8, 1)
        bs = [mb for op, mb in order if op == "B"]
        assert bs == sorted(bs)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_mb_exactly_once(self, p, m):
        for stage in range(p):
            order = one_f_one_b_order(p, m, stage)
            fs = sorted(mb for op, mb in order if op == "F")
            bs = sorted(mb for op, mb in order if op == "B")
            assert fs == list(range(m)) and bs == list(range(m))

    def test_bubble_matches_eq1(self):
        p, m, L = 4, 8, 8
        sched = build_1f1b(p, m, _unit(L), include_embed=False, include_head=False)
        r = _sim(sched, p)
        expected = bubble_time_1f1b(unit_layer_times(), L, p)
        assert r.mean_bubble_time == pytest.approx(expected, rel=0.01)

    def test_memory_skew_eq2(self):
        """Stage i stashes p - i outstanding micro batches (Eq. 2)."""
        p, m, L = 4, 8, 8
        sched = build_1f1b(p, m, _unit(L), include_embed=False, include_head=False)
        r = _sim(sched, p)
        per_layer_stash = 16.0
        for i, st_m in enumerate(r.stages):
            expected = (p - i) * per_layer_stash * L / p
            assert st_m.peak_memory_bytes == pytest.approx(expected)


class TestGPipe:
    def test_filo_backward(self):
        sched = build_gpipe(2, 4, _unit(4), include_embed=False, include_head=False)
        ops = [
            (i.op, i.micro_batch)
            for i in sched.programs[0]
            if isinstance(i, ComputeInstr)
        ]
        assert ops[:4] == [(OpType.F, k) for k in range(4)]
        assert ops[4:] == [(OpType.B, k) for k in (3, 2, 1, 0)]

    def test_peak_memory_is_all_micro_batches(self):
        p, m, L = 4, 8, 8
        sched = build_gpipe(p, m, _unit(L), include_embed=False, include_head=False)
        r = _sim(sched, p)
        assert r.stages[0].peak_memory_bytes == pytest.approx(16.0 * m * L / p)

    def test_same_bubble_as_1f1b(self):
        """GPipe and 1F1B differ in memory, not bubble (both layer-wise)."""
        p, m, L = 4, 8, 8
        g = _sim(build_gpipe(p, m, _unit(L), include_embed=False, include_head=False), p)
        f = _sim(build_1f1b(p, m, _unit(L), include_embed=False, include_head=False), p)
        assert g.makespan == pytest.approx(f.makespan, rel=0.02)


class TestZB1P:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_order_complete(self, p, m):
        for stage in range(p):
            order = zb1p_order(p, m, stage)
            for kind in ("F", "BI", "BW"):
                mbs = sorted(mb for op, mb in order if op == kind)
                assert mbs == list(range(m)), f"{kind} wrong at stage {stage}"

    def test_bw_after_bi(self):
        for stage in range(4):
            order = zb1p_order(4, 8, stage)
            bi_done = set()
            for op, mb in order:
                if op == "BI":
                    bi_done.add(mb)
                elif op == "BW":
                    assert mb in bi_done

    def test_memory_cap_respected(self):
        p, m = 4, 16
        for stage in range(p):
            order = zb1p_order(p, m, stage)
            outstanding = 0
            for op, _ in order:
                if op == "F":
                    outstanding += 1
                elif op == "BW":
                    outstanding -= 1
                assert outstanding <= p + 1

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            zb1p_order(4, 8, 0, max_outstanding=0)

    def test_bubble_below_1f1b_and_near_eq3(self):
        p, m, L = 4, 12, 8
        zb = _sim(build_zb1p(p, m, _unit(L), include_embed=False, include_head=False), p)
        fb = _sim(build_1f1b(p, m, _unit(L), include_embed=False, include_head=False), p)
        assert zb.makespan < fb.makespan
        expected = bubble_time_zb1p(unit_layer_times(), L, p)
        assert zb.mean_bubble_time <= bubble_time_1f1b(unit_layer_times(), L, p)
        assert zb.mean_bubble_time == pytest.approx(expected, rel=0.35)

    def test_head_logits_spike_modeled(self):
        """ZB1P stashes fp32 logits per outstanding head BW (Fig. 10)."""

        class LogitsCosts(UnitCosts):
            def head_logits_stash_bytes(self) -> float:
                return 100.0

        p, m, L = 4, 8, 8
        costs = LogitsCosts(num_layers=L)
        zb = _sim(build_zb1p(p, m, costs), p)
        fb = _sim(build_1f1b(p, m, costs), p)
        # Last stage of ZB1P spikes above 1F1B's last stage.
        assert zb.stages[-1].peak_memory_bytes > fb.stages[-1].peak_memory_bytes
