"""Verification pass pipeline: clean schedules pass, corrupted ones fail."""

import copy

import pytest

from repro.model import Segment, SegmentKind
from repro.schedules.costs import UnitCosts
from repro.schedules.ir import (
    ComputeInstr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.passes import (
    ScheduleVerificationError,
    check_deadlock_freedom,
    check_program_order,
    check_stash_balance,
    check_structure,
    run_passes,
)
from repro.schedules.registry import build_schedule

SEG = Segment(SegmentKind.LAYERS, 0, 1)


def _built_helix():
    return build_schedule("helix", (4, 8), UnitCosts(num_layers=4))


def _compute(op, stage, mb=0, stash=0.0):
    return ComputeInstr(op, stage, mb, SEG, duration=1.0, stash_delta=stash)


class TestCleanSchedules:
    def test_built_schedule_is_pass_clean(self):
        assert run_passes(_built_helix()) == []

    def test_forward_only_fragment_is_clean(self):
        """Fragments without backwards are legal (probes, sim tests)."""
        s = Schedule("frag", 1, 1, [[_compute(OpType.F, 0)]])
        assert run_passes(s) == []


class TestCorruptedSchedules:
    def test_dropped_recv_rejected(self):
        """Removing one RECV from a real schedule must not verify."""
        sched = _built_helix()
        corrupted = copy.deepcopy(sched)
        for prog in corrupted.programs:
            for i, instr in enumerate(prog):
                if isinstance(instr, RecvInstr):
                    del prog[i]
                    break
            else:
                continue
            break
        with pytest.raises(ScheduleVerificationError, match="unpaired"):
            run_passes(corrupted)

    def test_static_deadlock_detected(self):
        """Two stages that each RECV before their SEND: cyclic wait."""
        s = Schedule(
            "cycle", 2, 1,
            [
                [RecvInstr(0, 1, "b", 1.0), SendInstr(0, 1, "a", 1.0)],
                [RecvInstr(1, 0, "a", 1.0), SendInstr(1, 0, "b", 1.0)],
            ],
        )
        issues = check_deadlock_freedom(s)
        assert len(issues) == 2
        assert all(i.pass_name == "deadlock" for i in issues)
        assert "waiting on tag" in issues[0].message
        with pytest.raises(ScheduleVerificationError, match="deadlock"):
            run_passes(s)

    def test_moved_recv_creates_deadlock_in_real_schedule(self):
        """Hoisting a backward-phase RECV to the front of stage 0 blocks
        the whole pipeline: its producer transitively needs stage 0's own
        forward SENDs, which now sit behind the blocked RECV."""
        sched = _built_helix()
        corrupted = copy.deepcopy(sched)
        prog = corrupted.programs[0]
        last_recv = max(
            i for i, x in enumerate(prog) if isinstance(x, RecvInstr)
        )
        prog.insert(0, prog.pop(last_recv))
        issues = run_passes(corrupted, raise_on_issue=False)
        assert issues and issues[0].pass_name == "deadlock"

    def test_backward_before_forward(self):
        s = Schedule(
            "order", 1, 1,
            [[_compute(OpType.B, 0), _compute(OpType.F, 0)]],
        )
        issues = check_program_order(s)
        assert any("before its forward" in i.message for i in issues)

    def test_bw_before_bi(self):
        s = Schedule(
            "order", 1, 1,
            [[_compute(OpType.F, 0), _compute(OpType.BW, 0)]],
        )
        issues = check_program_order(s)
        assert any("before its backward-B" in i.message for i in issues)

    def test_stage_field_mismatch(self):
        s = Schedule("struct", 2, 1, [[_compute(OpType.F, 1)], []])
        issues = check_structure(s)
        assert any("sits in program" in i.message for i in issues)

    def test_stash_leak_detected(self):
        s = Schedule(
            "leak", 1, 1,
            [[_compute(OpType.F, 0, stash=64.0), _compute(OpType.B, 0, stash=-32.0)]],
        )
        issues = check_stash_balance(s)
        assert any("net stash" in i.message for i in issues)

    def test_over_release_detected(self):
        s = Schedule(
            "over", 1, 1,
            [[_compute(OpType.F, 0, stash=32.0), _compute(OpType.B, 0, stash=-64.0)]],
        )
        issues = check_stash_balance(s)
        assert any("negative" in i.message for i in issues)

    def test_run_passes_collect_mode(self):
        s = Schedule("struct", 2, 1, [[_compute(OpType.F, 1)], []])
        issues = run_passes(s, raise_on_issue=False)
        assert issues and issues[0].pass_name == "structure"
