"""AdaPipe planning and schedule tests."""

import pytest

from repro.cluster import abstract_cluster, h20_cluster
from repro.costmodel import RecomputeStrategy
from repro.model import GPT3_3B
from repro.schedules.adapipe import AdaPipePlan, build_adapipe, plan_adapipe
from repro.schedules.costs import PipelineCosts, UnitCosts
from repro.sim import simulate


def _unit_providers(L):
    return {
        strat: UnitCosts(num_layers=L, recompute=strat)
        for strat in (
            RecomputeStrategy.NONE,
            RecomputeStrategy.SELECTIVE,
            RecomputeStrategy.WITHOUT_ATTENTION,
            RecomputeStrategy.FULL,
        )
    }


class TestPlanner:
    def test_unconstrained_prefers_no_recompute_even_split(self):
        plan = plan_adapipe(_unit_providers(8), 4, 8, memory_cap_bytes=None)
        assert plan.layers_per_stage == (2, 2, 2, 2)
        assert all(s is RecomputeStrategy.NONE for s in plan.strategy_per_stage)

    def test_memory_cap_forces_recompute_on_early_stages(self):
        """1F1B's skew means stage 0 holds p outstanding micro batches;
        a tight cap forces recompute there first."""
        # Unit stash: 16/layer; 2 layers/stage; stage 0 outstanding = 4
        # -> 128 units without recompute.
        plan = plan_adapipe(_unit_providers(8), 4, 8, memory_cap_bytes=100.0)
        assert plan.strategy_per_stage[0] is not RecomputeStrategy.NONE

    def test_infeasible_cap_raises(self):
        with pytest.raises(ValueError, match="feasible"):
            plan_adapipe(_unit_providers(8), 4, 8, memory_cap_bytes=1.0)

    def test_needs_layer_per_stage(self):
        with pytest.raises(ValueError):
            plan_adapipe(_unit_providers(2), 4, 8)

    def test_plan_covers_all_layers(self):
        plan = plan_adapipe(_unit_providers(12), 4, 8, memory_cap_bytes=None)
        assert sum(plan.layers_per_stage) == 12

    def test_bottleneck_reported(self):
        plan = plan_adapipe(_unit_providers(8), 4, 8)
        assert plan.bottleneck_time > 0


class TestBuildAdapipe:
    def test_valid_schedule(self):
        sched = build_adapipe(4, 8, _unit_providers(8))
        sched.validate()
        assert sched.name == "adapipe"
        assert isinstance(sched.meta["plan"], AdaPipePlan)

    def test_matches_1f1b_when_unconstrained(self):
        """Unconstrained AdaPipe degenerates to 1F1B (paper Section 5.2:
        'its computation efficiency is no better than 1F1B')."""
        from repro.schedules.one_f_one_b import build_1f1b

        p, m, L = 4, 8, 8
        ada = simulate(build_adapipe(p, m, _unit_providers(L)), abstract_cluster(p))
        fb = simulate(
            build_1f1b(p, m, UnitCosts(num_layers=L)), abstract_cluster(p)
        )
        assert ada.makespan == pytest.approx(fb.makespan, rel=0.01)

    def test_hardware_costs_single_provider_expansion(self):
        cluster = h20_cluster(4)
        base = PipelineCosts(
            GPT3_3B, cluster, micro_batch=1, seq_len=32768,
            recompute=RecomputeStrategy.NONE,
        )
        sched = build_adapipe(4, 8, base, memory_cap_bytes=cluster.node.gpu.hbm_bytes)
        r = simulate(sched, cluster)
        assert r.makespan > 0
        assert max(r.peak_memory_bytes) <= cluster.node.gpu.hbm_bytes

    def test_cap_lowers_memory_vs_unconstrained(self):
        cluster = h20_cluster(4)
        base = PipelineCosts(
            GPT3_3B, cluster, micro_batch=1, seq_len=65536,
            recompute=RecomputeStrategy.NONE,
        )
        free = simulate(build_adapipe(4, 8, base), cluster)
        cap = 0.5 * max(free.peak_memory_bytes)
        tight = simulate(build_adapipe(4, 8, base, memory_cap_bytes=cap), cluster)
        assert max(tight.peak_memory_bytes) < max(free.peak_memory_bytes)
