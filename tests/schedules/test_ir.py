"""Schedule IR structural tests."""

import pytest

from repro.model import Segment, SegmentKind
from repro.schedules.ir import (
    ComputeInstr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
    compute_only,
)

SEG = Segment(SegmentKind.LAYERS, 0, 1)


def _f(stage, mb=0, dur=1.0):
    return ComputeInstr(OpType.F, stage, mb, SEG, duration=dur)


class TestValidation:
    def test_valid_pair(self):
        s = Schedule(
            "t", 2, 1,
            [
                [_f(0), SendInstr(0, 1, "x", 8.0)],
                [RecvInstr(1, 0, "x", 8.0), _f(1)],
            ],
        )
        s.validate()

    def test_stage_mismatch(self):
        s = Schedule("t", 2, 1, [[_f(1)], []])
        with pytest.raises(ValueError, match="stage"):
            s.validate()

    def test_unpaired_tag(self):
        s = Schedule("t", 2, 1, [[SendInstr(0, 1, "x", 8.0)], []])
        with pytest.raises(ValueError, match="unpaired"):
            s.validate()

    def test_duplicate_send_tag(self):
        s = Schedule(
            "t", 2, 1,
            [
                [SendInstr(0, 1, "x", 8.0), SendInstr(0, 1, "x", 8.0)],
                [RecvInstr(1, 0, "x", 8.0)],
            ],
        )
        with pytest.raises(ValueError, match="duplicate"):
            s.validate()

    def test_size_mismatch(self):
        s = Schedule(
            "t", 2, 1,
            [[SendInstr(0, 1, "x", 8.0)], [RecvInstr(1, 0, "x", 4.0)]],
        )
        with pytest.raises(ValueError, match="size"):
            s.validate()

    def test_self_send(self):
        s = Schedule("t", 2, 1, [[SendInstr(0, 0, "x", 8.0)], []])
        with pytest.raises(ValueError, match="self-send"):
            s.validate()

    def test_endpoint_mismatch(self):
        s = Schedule(
            "t", 3, 1,
            [[SendInstr(0, 1, "x", 8.0)], [], [RecvInstr(2, 0, "x", 8.0)]],
        )
        with pytest.raises(ValueError, match="endpoints"):
            s.validate()

    def test_program_count_mismatch(self):
        with pytest.raises(ValueError):
            Schedule("t", 3, 1, [[], []])


class TestAccessors:
    def test_total_compute_time(self):
        s = Schedule("t", 1, 2, [[_f(0, dur=1.5), _f(0, 1, dur=2.5)]])
        assert s.total_compute_time(0) == pytest.approx(4.0)

    def test_compute_only_filters(self):
        s = Schedule(
            "t", 2, 1,
            [[_f(0), SendInstr(0, 1, "x", 1.0)], [RecvInstr(1, 0, "x", 1.0), _f(1)]],
        )
        assert len(compute_only(s, 0)) == 1
        assert len(list(s.compute_instructions())) == 2

    def test_labels(self):
        i = _f(0, 3)
        assert "mb3" in i.label
        assert "SEND" in SendInstr(0, 1, "t", 1.0).label
        assert "RECV" in RecvInstr(0, 1, "t", 1.0).label
