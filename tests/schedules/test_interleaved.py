"""Interleaved 1F1B (virtual pipeline) schedule tests."""

import numpy as np
import pytest

from repro.cluster import abstract_cluster
from repro.model import SegmentKind, tiny_config
from repro.nn import GPTModel
from repro.runtime import run_schedule
from repro.schedules.costs import UnitCosts
from repro.schedules.interleaved import build_interleaved_1f1b
from repro.schedules.one_f_one_b import build_1f1b
from repro.sim import simulate


class TestStructure:
    def test_validates(self):
        sched = build_interleaved_1f1b(2, 4, UnitCosts(num_layers=8), 2)
        sched.validate()

    def test_divisibility_required(self):
        with pytest.raises(ValueError, match="divisible"):
            build_interleaved_1f1b(2, 4, UnitCosts(num_layers=6), 2)

    def test_chunks_assigned_round_robin(self):
        p, v, L = 2, 2, 8
        sched = build_interleaved_1f1b(
            p, 2, UnitCosts(num_layers=L), v,
            include_embed=False, include_head=False,
        )
        for stage in range(p):
            starts = {
                i.segment.layer
                for prog in [sched.programs[stage]]
                for i in prog
                if hasattr(i, "segment") and i.segment.kind is SegmentKind.LAYERS
            }
            # stage s owns chunks s and s+p -> layers {s*2, (s+p)*2}.
            assert starts == {stage * 2, (stage + 2) * 2}

    def test_more_communication_than_plain_1f1b(self):
        from repro.schedules.ir import SendInstr

        costs = UnitCosts(num_layers=8)
        plain = build_1f1b(2, 4, costs, include_embed=False, include_head=False)
        inter = build_interleaved_1f1b(
            2, 4, costs, 2, include_embed=False, include_head=False
        )
        n_plain = sum(1 for i in plain.instructions() if isinstance(i, SendInstr))
        n_inter = sum(1 for i in inter.instructions() if isinstance(i, SendInstr))
        assert n_inter > n_plain


class TestTiming:
    def test_smaller_bubble_than_1f1b_with_many_micro_batches(self):
        """The interleaved pipeline's raison d'etre: bubble / v, given
        enough micro batches to keep the virtual stages fed."""
        p, m, L = 4, 16, 16
        costs = UnitCosts(num_layers=L)
        cl = abstract_cluster(p)
        plain = simulate(
            build_1f1b(p, m, costs, include_embed=False, include_head=False), cl
        )
        inter = simulate(
            build_interleaved_1f1b(
                p, m, costs, 2, include_embed=False, include_head=False
            ),
            cl,
        )
        assert inter.mean_bubble_time < plain.mean_bubble_time

    def test_single_chunk_matches_1f1b_work(self):
        p, m, L = 2, 4, 8
        costs = UnitCosts(num_layers=L)
        inter = build_interleaved_1f1b(
            p, m, costs, 1, include_embed=False, include_head=False
        )
        plain = build_1f1b(p, m, costs, include_embed=False, include_head=False)
        for stage in range(p):
            assert inter.total_compute_time(stage) == pytest.approx(
                plain.total_compute_time(stage)
            )


class TestSemantics:
    def test_exact_gradients(self):
        cfg = tiny_config(num_layers=8, num_heads=2, hidden_size=16, vocab_size=32)
        model = GPTModel.init(cfg, max_seq=8, seed=9)
        rng = np.random.default_rng(10)
        tokens = rng.integers(0, 32, size=(4, 8, 2))
        targets = rng.integers(0, 32, size=(4, 8, 2))
        ref_losses, ref_grads = model.forward_backward_batch(tokens, targets)
        sched = build_interleaved_1f1b(2, 4, UnitCosts(num_layers=8), 2)
        result = run_schedule(model, sched, tokens, targets)
        for i, ref in enumerate(ref_losses):
            assert result.losses[i] == pytest.approx(ref, abs=1e-10)
        for k, ref in ref_grads.flat().items():
            np.testing.assert_allclose(result.grads[k], ref, atol=1e-10, err_msg=k)
