"""Shared list-scheduler tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules.planner import PlannedTask, critical_path_levels, list_schedule


def _chain(n, stage=0):
    return [
        PlannedTask(tid=i, stage=stage, key=(i,), duration=1.0,
                    deps=[] if i == 0 else [i - 1])
        for i in range(n)
    ]


class TestListSchedule:
    def test_chain_serialises(self):
        order = list_schedule(_chain(4), 1)
        assert [t.tid for t in order[0]] == [0, 1, 2, 3]
        assert [t.start for t in order[0]] == [0.0, 1.0, 2.0, 3.0]

    def test_priority_breaks_ties(self):
        tasks = [
            PlannedTask(tid=0, stage=0, key=(2,), duration=1.0, deps=[]),
            PlannedTask(tid=1, stage=0, key=(1,), duration=1.0, deps=[]),
        ]
        order = list_schedule(tasks, 1)
        assert [t.tid for t in order[0]] == [1, 0]

    def test_cross_stage_dependency_gaps(self):
        tasks = [
            PlannedTask(tid=0, stage=0, key=(0,), duration=2.0, deps=[]),
            PlannedTask(tid=1, stage=1, key=(1,), duration=1.0, deps=[0]),
        ]
        order = list_schedule(tasks, 2)
        assert order[1][0].start == pytest.approx(2.0)

    def test_cycle_detected(self):
        tasks = [
            PlannedTask(tid=0, stage=0, key=(0,), duration=1.0, deps=[1]),
            PlannedTask(tid=1, stage=0, key=(1,), duration=1.0, deps=[0]),
        ]
        with pytest.raises(RuntimeError, match="cycle"):
            list_schedule(tasks, 1)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_work_conservation(self, n, p):
        """Independent equal tasks over p stages finish in ceil(n_s) time
        per stage (no idle while work is ready)."""
        tasks = [
            PlannedTask(tid=i, stage=i % p, key=(i,), duration=1.0, deps=[])
            for i in range(n)
        ]
        order = list_schedule(tasks, p)
        for s in range(p):
            count = len(order[s])
            if count:
                assert order[s][-1].start == pytest.approx(count - 1.0)


class TestCriticalPath:
    def test_chain_levels(self):
        levels = critical_path_levels(_chain(3))
        assert levels == {0: 3.0, 1: 2.0, 2: 1.0}

    def test_diamond(self):
        tasks = [
            PlannedTask(tid=0, stage=0, key=(0,), duration=1.0, deps=[]),
            PlannedTask(tid=1, stage=0, key=(1,), duration=5.0, deps=[0]),
            PlannedTask(tid=2, stage=0, key=(2,), duration=1.0, deps=[0]),
            PlannedTask(tid=3, stage=0, key=(3,), duration=1.0, deps=[1, 2]),
        ]
        levels = critical_path_levels(tasks)
        assert levels[0] == pytest.approx(7.0)  # 1 + 5 + 1

    def test_cycle_detected(self):
        tasks = [
            PlannedTask(tid=0, stage=0, key=(0,), duration=1.0, deps=[1]),
            PlannedTask(tid=1, stage=0, key=(1,), duration=1.0, deps=[0]),
        ]
        with pytest.raises(RuntimeError, match="cycle"):
            critical_path_levels(tasks)
