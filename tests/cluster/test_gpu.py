"""Tests for GPU specs and derived rates."""

import pytest

from repro.cluster import A100, A800, GPU_PRESETS, H20, H100, GPUSpec


class TestGPUSpec:
    def test_presets_registered(self):
        assert set(GPU_PRESETS) == {"H20", "A800", "A100", "H100"}

    def test_paper_compute_ratio_a800_vs_h20(self):
        # Section 5.2: "A800 GPU has double computation power compared to H20".
        assert 1.9 < A800.fp16_tflops / H20.fp16_tflops < 2.3

    def test_h20_has_more_memory_and_bandwidth(self):
        assert H20.hbm_gib > A800.hbm_gib
        assert H20.hbm_bw_gbps > A800.hbm_bw_gbps

    def test_gemm_time_scales_linearly(self):
        assert H20.gemm_time(2e12) == pytest.approx(2 * H20.gemm_time(1e12))

    def test_sustained_rates_below_peak(self):
        for g in (H20, A800, A100, H100):
            assert g.matmul_flops_per_s < g.fp16_tflops * 1e12
            assert g.attn_flops_per_s < g.fp16_tflops * 1e12

    def test_membound_time(self):
        t = H20.membound_time(H20.hbm_bw_gbps * 1e9)
        assert t == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fp16_tflops": -1.0},
            {"hbm_gib": 0.0},
            {"mm_efficiency": 0.0},
            {"mm_efficiency": 1.5},
            {"attn_efficiency": -0.1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(
            name="bad", fp16_tflops=100.0, hbm_gib=80.0,
            hbm_bw_gbps=2000.0, nvlink_bw_gbps=400.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            GPUSpec(**base)

    def test_frozen(self):
        with pytest.raises(Exception):
            H20.fp16_tflops = 1.0  # type: ignore[misc]
