"""Tests for node and cluster topology models."""

import pytest

from repro.cluster import (
    A800_NODE,
    H20_NODE,
    NodeSpec,
    a800_cluster,
    abstract_cluster,
    h20_cluster,
)
from repro.cluster.gpu import H20


class TestNodeSpec:
    def test_h20_node_aggregate_ib(self):
        # 4 x NDR-200 = 800 Gbit/s = 100 GB/s per node.
        assert H20_NODE.node_ib_bytes_per_s == pytest.approx(100e9)

    def test_a800_node_half_bandwidth(self):
        # Section 5.2: "A800 cluster only has half communication bandwidth".
        assert A800_NODE.node_ib_bytes_per_s == pytest.approx(
            H20_NODE.node_ib_bytes_per_s / 2
        )

    def test_per_gpu_fair_share(self):
        assert H20_NODE.per_gpu_ib_bytes_per_s == pytest.approx(100e9 / 8)

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            NodeSpec(gpu=H20, gpus_per_node=0)


class TestClusterSpec:
    def test_stage_per_node(self):
        cl = h20_cluster(4)
        assert cl.num_stages == 4
        assert cl.total_gpus == 32
        assert cl.sequence_parallel_size == 8

    def test_p2p_time_alpha_beta(self):
        cl = h20_cluster(2)
        small = cl.p2p_time(0)
        assert small == pytest.approx(cl.node.ib_latency_s)
        one_gb = cl.p2p_time(12.5e9)
        assert one_gb == pytest.approx(cl.node.ib_latency_s + 1.0)

    def test_p2p_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            h20_cluster(2).p2p_time(-1.0)

    def test_h20_faster_p2p_than_a800(self):
        nbytes = 1e9
        assert h20_cluster(2).p2p_time(nbytes) < a800_cluster(2).p2p_time(nbytes)

    def test_collective_time_zero_for_single_gpu(self):
        cl = abstract_cluster(2)
        assert cl.intra_node_collective_time(1e9) == 0.0

    def test_all_reduce_twice_all_gather(self):
        cl = h20_cluster(2)
        ag = cl.intra_node_collective_time(1e9, "all_gather")
        ar = cl.intra_node_collective_time(1e9, "all_reduce")
        assert ar == pytest.approx(2 * ag)

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            h20_cluster(2).intra_node_collective_time(1e9, "alltoall")

    def test_graph_view(self):
        g = h20_cluster(3).as_graph()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 6
        assert all("bytes_per_s" in d for _, _, d in g.edges(data=True))

    def test_abstract_cluster_unit_bandwidth(self):
        cl = abstract_cluster(4)
        # 1 abstract byte takes 1 abstract second, no latency.
        assert cl.p2p_time(1.0) == pytest.approx(1.0)
        assert cl.p2p_time(3.5) == pytest.approx(3.5)
