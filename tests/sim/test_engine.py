"""Discrete-event simulator unit tests."""

import pytest

from repro.cluster import abstract_cluster
from repro.model import Segment, SegmentKind
from repro.schedules.ir import ComputeInstr, OpType, RecvInstr, Schedule, SendInstr
from repro.sim import DeadlockError, PipelineSimulator, simulate

SEG = Segment(SegmentKind.LAYERS, 0, 1)


def _f(stage, mb=0, dur=1.0, stash=0.0, ws=0.0):
    return ComputeInstr(
        OpType.F, stage, mb, SEG, duration=dur, stash_delta=stash, workspace=ws
    )


class TestBasicExecution:
    def test_single_stage_serial(self):
        s = Schedule("t", 1, 2, [[_f(0, 0, 2.0), _f(0, 1, 3.0)]])
        r = simulate(s, abstract_cluster(1))
        assert r.makespan == pytest.approx(5.0)
        assert r.stages[0].busy_time == pytest.approx(5.0)
        assert r.stages[0].bubble_time(r.makespan) == pytest.approx(0.0)

    def test_transfer_blocks_receiver(self):
        s = Schedule(
            "t", 2, 1,
            [
                [_f(0, dur=2.0), SendInstr(0, 1, "x", nbytes=4.0)],
                [RecvInstr(1, 0, "x", nbytes=4.0), _f(1, dur=1.0)],
            ],
        )
        r = simulate(s, abstract_cluster(2))  # 1 byte/s links
        # stage1 waits 2 (compute) + 4 (transfer) then computes 1.
        assert r.makespan == pytest.approx(7.0)
        assert r.stages[1].comm_blocked_time == pytest.approx(6.0)

    def test_compute_overlaps_transfer(self):
        s = Schedule(
            "t", 2, 2,
            [
                [_f(0, 0, 2.0), SendInstr(0, 1, "x", 4.0), _f(0, 1, 10.0)],
                [RecvInstr(1, 0, "x", 4.0), _f(1, 0, 1.0)],
            ],
        )
        r = simulate(s, abstract_cluster(2))
        # Sender keeps computing while the wire moves data.
        assert r.makespan == pytest.approx(12.0)

    def test_recv_before_send_ready_is_fine(self):
        s = Schedule(
            "t", 2, 1,
            [
                [_f(0, dur=5.0), SendInstr(0, 1, "x", 1.0)],
                [RecvInstr(1, 0, "x", 1.0), _f(1, dur=1.0)],
            ],
        )
        r = simulate(s, abstract_cluster(2))
        assert r.makespan == pytest.approx(7.0)

    def test_missing_message_deadlocks(self):
        s = Schedule("t", 2, 1, [[], [RecvInstr(1, 0, "x", 1.0), _f(1)]])
        # Bypass validation (unpaired tag) to exercise the deadlock path.
        sim = PipelineSimulator.__new__(PipelineSimulator)
        sim.schedule = s
        sim.cluster = abstract_cluster(2)
        sim.duplex = "full"
        sim.static = [0.0, 0.0]
        with pytest.raises(DeadlockError):
            sim.run()


class TestEngines:
    def _two_senders(self):
        # Stages 1 and 2 each send 4 bytes to stage 0.
        return Schedule(
            "t", 3, 1,
            [
                [
                    RecvInstr(0, 1, "a", 4.0),
                    RecvInstr(0, 2, "b", 4.0),
                    _f(0, dur=1.0),
                ],
                [_f(1, dur=1.0), SendInstr(1, 0, "a", 4.0)],
                [_f(2, dur=1.0), SendInstr(2, 0, "b", 4.0)],
            ],
        )

    def test_receiver_engine_serialises_incoming(self):
        r = simulate(self._two_senders(), abstract_cluster(3), duplex="full")
        # Both transfers contend for stage 0's receive engine: 1 + 4 + 4 + 1.
        assert r.makespan == pytest.approx(10.0)

    def test_half_duplex_send_recv_contend(self):
        s = Schedule(
            "t", 2, 2,
            [
                [
                    _f(0, 0, 1.0),
                    SendInstr(0, 1, "x", 4.0),
                    RecvInstr(0, 1, "y", 4.0),
                    _f(0, 1, 1.0),
                ],
                [
                    _f(1, 0, 1.0),
                    SendInstr(1, 0, "y", 4.0),
                    RecvInstr(1, 0, "x", 4.0),
                    _f(1, 1, 1.0),
                ],
            ],
        )
        half = simulate(s, abstract_cluster(2), duplex="half")
        full = simulate(s, abstract_cluster(2), duplex="full")
        # Full duplex moves x and y simultaneously; half duplex serialises.
        assert full.makespan == pytest.approx(6.0)
        assert half.makespan == pytest.approx(10.0)

    def test_invalid_duplex(self):
        s = Schedule("t", 1, 1, [[_f(0)]])
        with pytest.raises(ValueError):
            simulate(s, abstract_cluster(1), duplex="quarter")


class TestMemoryTracking:
    def test_stash_peak(self):
        prog = [
            _f(0, 0, 1.0, stash=10.0),
            _f(0, 1, 1.0, stash=10.0),
            ComputeInstr(OpType.B, 0, 1, SEG, duration=1.0, stash_delta=-10.0),
            ComputeInstr(OpType.B, 0, 0, SEG, duration=1.0, stash_delta=-10.0),
        ]
        r = simulate(Schedule("t", 1, 2, [prog]), abstract_cluster(1))
        assert r.stages[0].peak_memory_bytes == pytest.approx(20.0)

    def test_workspace_transient(self):
        prog = [_f(0, 0, 1.0, stash=5.0, ws=100.0)]
        r = simulate(Schedule("t", 1, 1, [prog]), abstract_cluster(1))
        assert r.stages[0].peak_memory_bytes == pytest.approx(100.0)

    def test_static_baseline(self):
        prog = [_f(0, 0, 1.0, stash=5.0)]
        r = simulate(Schedule("t", 1, 1, [prog]), abstract_cluster(1), 50.0)
        assert r.stages[0].peak_memory_bytes == pytest.approx(55.0)

    def test_static_per_stage_list(self):
        s = Schedule("t", 2, 1, [[_f(0)], [_f(1)]])
        r = simulate(s, abstract_cluster(2), [10.0, 20.0])
        assert r.stages[0].peak_memory_bytes == pytest.approx(10.0)
        assert r.stages[1].peak_memory_bytes == pytest.approx(20.0)

    def test_static_list_wrong_len(self):
        s = Schedule("t", 2, 1, [[_f(0)], [_f(1)]])
        with pytest.raises(ValueError):
            simulate(s, abstract_cluster(2), [1.0])


class TestMetrics:
    def test_bytes_accounting(self):
        s = Schedule(
            "t", 2, 1,
            [
                [_f(0), SendInstr(0, 1, "x", 7.0)],
                [RecvInstr(1, 0, "x", 7.0), _f(1)],
            ],
        )
        r = simulate(s, abstract_cluster(2))
        assert r.stages[0].bytes_sent == 7.0
        assert r.stages[1].bytes_received == 7.0

    def test_throughput(self):
        s = Schedule("t", 1, 1, [[_f(0, dur=2.0)]])
        r = simulate(s, abstract_cluster(1))
        assert r.throughput_tokens_per_s(100.0) == pytest.approx(50.0)

    def test_summary_renders(self):
        s = Schedule("t", 1, 1, [[_f(0)]])
        r = simulate(s, abstract_cluster(1))
        assert "schedule=t" in r.summary()

    def test_cluster_too_small(self):
        s = Schedule("t", 2, 1, [[_f(0)], [_f(1)]])
        with pytest.raises(ValueError):
            simulate(s, abstract_cluster(1))


class TestRecordTraceOff:
    """record_trace=False (the tuner's hot path) must change only the trace."""

    def _real_workload(self):
        from repro.workloads import Workload

        wl = Workload.paper("1.3B", "H20", 4, 8192)
        return wl, wl.build("helix"), wl.static_memory()

    def test_metrics_identical_with_and_without_trace(self):
        wl, sched, static = self._real_workload()
        on = simulate(sched, wl.cluster, static_memory_bytes=static)
        off = simulate(
            sched, wl.cluster, static_memory_bytes=static, record_trace=False
        )
        assert off.makespan == on.makespan
        for a, b in zip(on.stages, off.stages):
            assert b.busy_time == a.busy_time
            assert b.comm_blocked_time == a.comm_blocked_time
            assert b.peak_memory_bytes == a.peak_memory_bytes
            assert b.bytes_sent == a.bytes_sent
            assert b.bytes_received == a.bytes_received

    def test_trace_is_empty_but_present(self):
        wl, sched, static = self._real_workload()
        off = simulate(
            sched, wl.cluster, static_memory_bytes=static, record_trace=False
        )
        assert off.trace.intervals == [] or not list(off.trace.intervals)

    def test_makespan_matches_trace_makespan_when_on(self):
        # The event loop reports the last popped event's time; with the
        # trace on this must coincide with the max interval end.
        wl, sched, static = self._real_workload()
        on = simulate(sched, wl.cluster, static_memory_bytes=static)
        assert on.makespan == on.trace.makespan
