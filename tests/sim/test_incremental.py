"""Differential suite for incremental re-simulation (`repro.sim.incremental`).

The contract under test: whatever path :func:`resimulate` takes --
timeline-prefix resume or conservative fallback -- its
:class:`SimResult` is *bit-identical* (dataclass equality over every
field) to a from-scratch :func:`repro.sim.simulate` of the sibling
schedule.  The suite sweeps every registered schedule across its
admissible recompute strategies and two pipeline shapes, then forces
the edge cases by hand: mid-timeline divergence via a mutated duration,
immediate divergence (no usable checkpoint), stage-count and duplex
mismatches, and references too coarse to checkpoint at all.
"""

import dataclasses
import functools

import pytest

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.ir import ComputeInstr, Schedule
from repro.schedules.registry import (
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.sim import ResimStats, resimulate, simulate, simulate_recording
from repro.workloads import Workload

PS = (2, 4)


def _workload(p):
    return Workload.paper("1.3B", "H20", p, 8192)


@functools.lru_cache(maxsize=None)
def _built(name, p, recompute):
    """Build one registered schedule on the smoke shape (memoised)."""
    spec = get_schedule(name)
    wl = _workload(p)
    opts = workload_option_defaults(spec, wl)
    m = spec.round_micro_batches(wl.num_micro_batches, p, **opts)
    m = m or spec.micro_batch_divisor(p, **opts)
    sched = spec.build((p, m), wl.costs(recompute), verify=False, **opts)
    return sched, wl


def _full(sched, wl):
    return simulate(
        sched,
        wl.cluster,
        static_memory_bytes=wl.static_memory(),
        verify=False,
        record_trace=False,
    )


def _cases():
    for name in available_schedules():
        spec = get_schedule(name)
        for p in PS:
            for rc in spec.recompute_choices:
                yield pytest.param(name, p, rc, id=f"{name}-p{p}-{rc.value}")


def _sibling_cases():
    """(schedule, p, reference recompute, sibling recompute) pairs."""
    for name in available_schedules():
        spec = get_schedule(name)
        choices = spec.recompute_choices
        if len(choices) < 2:
            continue
        for p in PS:
            ref_rc = choices[0]
            for sib_rc in choices[1:]:
                yield pytest.param(
                    name, p, ref_rc, sib_rc,
                    id=f"{name}-p{p}-{ref_rc.value}-vs-{sib_rc.value}",
                )


class TestRecordingMatchesSimulate:
    @pytest.mark.parametrize("name,p,rc", _cases())
    def test_bit_identical(self, name, p, rc):
        sched, wl = _built(name, p, rc)
        ref = simulate_recording(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        assert ref.result == _full(sched, wl)

    def test_rejects_bad_checkpoint_interval(self):
        sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        with pytest.raises(ValueError):
            simulate_recording(sched, wl.cluster, checkpoint_every=0)


class TestSiblingResimulation:
    @pytest.mark.parametrize("name,p,ref_rc,sib_rc", _sibling_cases())
    def test_bit_identical_across_recomputes(self, name, p, ref_rc, sib_rc):
        ref_sched, wl = _built(name, p, ref_rc)
        sib_sched, _ = _built(name, p, sib_rc)
        ref = simulate_recording(
            ref_sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        result, stats = resimulate(
            ref,
            sib_sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert isinstance(stats, ResimStats)
        assert stats.mode in ("incremental", "fallback")
        assert result == _full(sib_sched, wl)

    def test_helix_siblings_take_the_incremental_path(self):
        # Helix recompute siblings share the whole forward phase, so a
        # fine-grained reference must actually resume, not fall back.
        ref_sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        sib_sched, _ = _built("helix", 4, RecomputeStrategy.WITHOUT_ATTENTION)
        ref = simulate_recording(
            ref_sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        result, stats = resimulate(
            ref,
            sib_sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert stats.mode == "incremental"
        assert stats.resumed_at_events > 0
        assert result == _full(sib_sched, wl)

    def test_self_resimulation_resumes_from_last_checkpoint(self):
        sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        ref = simulate_recording(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        result, stats = resimulate(
            ref,
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert stats.mode == "incremental"
        # Identical programs never diverge, so the resume point is the
        # reference's final checkpoint.
        assert stats.resumed_at_events == ref.checkpoints[-1].events_processed
        assert result == ref.result


def _mutated(sched: Schedule, which: int, scale: float) -> Schedule:
    """Copy ``sched`` with the ``which``-th stage-0 compute rescaled."""
    programs = [list(prog) for prog in sched.programs]
    seen = 0
    for i, instr in enumerate(programs[0]):
        if isinstance(instr, ComputeInstr):
            if seen == which:
                programs[0][i] = dataclasses.replace(
                    instr, duration=instr.duration * scale
                )
                return Schedule(
                    f"{sched.name}-mut", sched.num_stages,
                    sched.num_micro_batches, programs,
                )
            seen += 1
    raise AssertionError(f"stage 0 has no {which}-th compute instruction")


class TestForcedDivergence:
    @pytest.fixture(scope="class")
    def reference(self):
        sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        ref = simulate_recording(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        return sched, wl, ref

    def test_mid_timeline_divergence_stays_bit_identical(self, reference):
        # A duration change halfway down stage 0 invalidates every
        # checkpoint past it; the resume must come from before the
        # mutation and still reproduce the mutant's full simulation.
        sched, wl, ref = reference
        n_computes = sum(
            isinstance(i, ComputeInstr) for i in sched.programs[0]
        )
        mutant = _mutated(sched, n_computes // 2, 1.5)
        result, stats = resimulate(
            ref,
            mutant,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert result == _full(mutant, wl)
        if stats.mode == "incremental":
            # The divergence detector must have seen the mutated index.
            assert min(stats.divergence_indices) < ref.sizes[0]
            assert result.makespan != ref.result.makespan

    def test_immediate_divergence_falls_back(self, reference):
        # Mutating the very first compute leaves no checkpoint inside
        # the shared prefix: the only safe answer is a full simulation.
        sched, wl, ref = reference
        mutant = _mutated(sched, 0, 2.0)
        result, stats = resimulate(
            ref,
            mutant,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert stats.mode == "fallback"
        assert "no checkpoint" in stats.reason
        assert result == _full(mutant, wl)


class TestConservativeFallbacks:
    @pytest.fixture(scope="class")
    def reference(self):
        sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        ref = simulate_recording(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=64,
        )
        return sched, wl, ref

    def test_stage_count_mismatch(self, reference):
        _, _, ref = reference
        other, wl2 = _built("helix", 2, RecomputeStrategy.NONE)
        result, stats = resimulate(
            ref,
            other,
            wl2.cluster,
            static_memory_bytes=wl2.static_memory(),
            verify=False,
        )
        assert stats.mode == "fallback"
        assert "stage count" in stats.reason
        assert result == _full(other, wl2)

    def test_duplex_mismatch(self, reference):
        sched, wl, ref = reference
        result, stats = resimulate(
            ref,
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            duplex="half",
            verify=False,
        )
        assert stats.mode == "fallback"
        assert "duplex" in stats.reason
        full_half = simulate(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            duplex="half",
            verify=False,
            record_trace=False,
        )
        assert result == full_half

    def test_reference_without_checkpoints(self):
        sched, wl = _built("helix", 4, RecomputeStrategy.NONE)
        coarse = simulate_recording(
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
            checkpoint_every=10**9,
        )
        assert coarse.checkpoints == []
        result, stats = resimulate(
            coarse,
            sched,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert stats.mode == "fallback"
        assert "no checkpoints" in stats.reason
        assert result == coarse.result

    def test_shared_tag_table_grows_monotonically(self, reference):
        # Sibling compilations extend the reference's interning table in
        # place; existing entries must never be reassigned.
        sched, wl, ref = reference
        before = dict(ref.tag_ids)
        sib, _ = _built("helix", 4, RecomputeStrategy.WITHOUT_ATTENTION)
        resimulate(
            ref,
            sib,
            wl.cluster,
            static_memory_bytes=wl.static_memory(),
            verify=False,
        )
        assert all(ref.tag_ids[k] == v for k, v in before.items())
        assert len(ref.tag_ids) >= len(before)
