"""Table 1 reproduction: per-op FLOPs / params / activation elements."""

import pytest
from hypothesis import given, strategies as st

from repro.costmodel import LAYER_OPS, layer_totals, op_costs

DIMS = st.tuples(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=128, max_value=1 << 17),
    st.integers(min_value=64, max_value=8192),
)


class TestTable1Rows:
    def setup_method(self):
        self.b, self.s, self.h = 1, 4096, 2048
        self.ops = op_costs(self.b, self.s, self.h)

    def test_all_ops_present_in_order(self):
        assert tuple(self.ops) == LAYER_OPS

    def test_qkv_linear_row(self):
        bsh2 = self.b * self.s * self.h**2
        op = self.ops["qkv_linear"]
        assert op.fwd_flops == 6 * bsh2
        assert op.bwd_b_flops == 6 * bsh2
        assert op.bwd_w_flops == 6 * bsh2
        assert op.params == 3 * self.h**2

    def test_attention_row(self):
        bhs2 = self.b * self.h * self.s**2
        op = self.ops["attention"]
        assert op.fwd_flops == 4 * bhs2
        assert op.bwd_b_flops == 8 * bhs2
        assert op.bwd_w_flops == 0  # non-parameterised (paper's key fact)
        assert op.params == 0
        assert op.activation_elems == 3 * self.b * self.s * self.h

    def test_layernorms_have_no_matrix_flops(self):
        for name in ("ln1", "ln2"):
            assert self.ops[name].fwd_flops == 0
            assert self.ops[name].params == 2 * self.h

    def test_mlp_linears(self):
        bsh2 = self.b * self.s * self.h**2
        for name in ("linear1", "linear2"):
            assert self.ops[name].fwd_flops == 8 * bsh2
            assert self.ops[name].params == 4 * self.h**2

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            op_costs(0, 1, 1)


class TestTable1Totals:
    @given(DIMS)
    def test_row_sums_match_totals_column(self, dims):
        b, s, h = dims
        ops = op_costs(b, s, h)
        tot = layer_totals(b, s, h)
        assert sum(o.fwd_flops for o in ops.values()) == pytest.approx(tot.fwd_flops)
        assert sum(o.bwd_b_flops for o in ops.values()) == pytest.approx(tot.bwd_b_flops)
        assert sum(o.bwd_w_flops for o in ops.values()) == pytest.approx(tot.bwd_w_flops)
        assert sum(o.params for o in ops.values()) == pytest.approx(tot.params)
        assert sum(o.activation_elems for o in ops.values()) == pytest.approx(
            tot.activation_elems
        )

    @given(DIMS)
    def test_closed_forms(self, dims):
        b, s, h = dims
        tot = layer_totals(b, s, h)
        bsh = b * s * h
        assert tot.fwd_flops == pytest.approx(4 * bsh * (6 * h + s))
        assert tot.bwd_b_flops == pytest.approx(4 * bsh * (6 * h + 2 * s))
        assert tot.bwd_w_flops == pytest.approx(4 * bsh * 6 * h)
        assert tot.params == pytest.approx(12 * h * h + 4 * h)
        assert tot.activation_elems == pytest.approx(16 * bsh)

    @given(DIMS)
    def test_backward_roughly_twice_forward_for_long_seq(self, dims):
        # Section 2.3.1: backward (B+W) ~ 2x forward.
        b, s, h = dims
        tot = layer_totals(b, s, h)
        ratio = (tot.bwd_b_flops + tot.bwd_w_flops) / tot.fwd_flops
        assert 1.9 < ratio < 2.7
