"""Batched timing model: numpy pass must equal the scalar model."""

import numpy as np
import pytest

from repro.cluster.gpu import GPU_PRESETS
from repro.costmodel.timing import TimingModel, batch_layer_times
from repro.model.config import MODEL_PRESETS

SEQ_LENS = (4096, 32768, 65536, 131072)
MICRO_BATCHES = (1, 2, 4)


def _phases(lt):
    return {
        "pre": lt.pre,
        "attn": lt.attn,
        "post": lt.post,
        "qkv": lt.qkv,
    }


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("gpu_name", sorted(GPU_PRESETS))
    @pytest.mark.parametrize("model_name", sorted(MODEL_PRESETS))
    def test_preset_matrix_to_1e12(self, gpu_name, model_name):
        """Every (gpu, model, b, s) cell matches the scalar model to 1e-12."""
        gpu = GPU_PRESETS[gpu_name]
        model = MODEL_PRESETS[model_name]
        shapes = [(b, s) for b in MICRO_BATCHES for s in SEQ_LENS]
        bs = np.array([b for b, _ in shapes])
        ss = np.array([s for _, s in shapes])
        batch = batch_layer_times(gpu, model, bs, ss, sp=8)
        assert len(batch) == len(shapes)
        for i, (b, s) in enumerate(shapes):
            scalar = TimingModel(gpu, model, b, s, sp=8).layer_times()
            for name, ph in _phases(scalar).items():
                bph = _phases(batch)[name]
                for f in ("fwd", "bwd_b", "bwd_w"):
                    want = getattr(ph, f)
                    got = float(getattr(bph, f)[i])
                    assert got == pytest.approx(want, rel=1e-12, abs=1e-300), (
                        f"{gpu_name}/{model_name} b={b} s={s} {name}.{f}"
                    )

    def test_aggregates_and_scalar_view(self):
        gpu = GPU_PRESETS["H20"]
        model = MODEL_PRESETS["7B"]
        batch = batch_layer_times(gpu, model, [1, 1], [32768, 65536], sp=8)
        for i, s in enumerate((32768, 65536)):
            scalar = TimingModel(gpu, model, 1, s, sp=8).layer_times()
            assert float(batch.fwd[i]) == pytest.approx(scalar.fwd, rel=1e-12)
            assert float(batch.bwd[i]) == pytest.approx(scalar.bwd, rel=1e-12)
            assert float(batch.total[i]) == pytest.approx(scalar.total, rel=1e-12)
            view = batch.scalar(i)
            assert view.pre.fwd == pytest.approx(scalar.pre.fwd, rel=1e-12)
            assert view.attn.bwd_b == pytest.approx(scalar.attn.bwd_b, rel=1e-12)

    def test_causal_flag_and_sp_mirror_scalar(self):
        gpu = GPU_PRESETS["A800"]
        model = MODEL_PRESETS["7B"]
        for causal in (True, False):
            for sp in (1, 4):
                batch = batch_layer_times(
                    gpu, model, [1], [16384], sp=sp, causal=causal
                )
                scalar = TimingModel(
                    gpu, model, 1, 16384, sp=sp, causal=causal
                ).layer_times()
                assert float(batch.attn.fwd[0]) == pytest.approx(
                    scalar.attn.fwd, rel=1e-12
                )

    def test_broadcasting_scalar_micro_batch(self):
        gpu = GPU_PRESETS["H20"]
        model = MODEL_PRESETS["7B"]
        batch = batch_layer_times(gpu, model, 1, list(SEQ_LENS), sp=8)
        assert len(batch) == len(SEQ_LENS)

    def test_rejects_bad_inputs(self):
        gpu = GPU_PRESETS["H20"]
        model = MODEL_PRESETS["7B"]
        with pytest.raises(ValueError):
            batch_layer_times(gpu, model, [0], [4096])
        with pytest.raises(ValueError):
            batch_layer_times(gpu, model, [1], [4096], sp=0)
