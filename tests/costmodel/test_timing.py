"""Timing model tests: Figure 3 / Figure 9 shapes and invariants."""

import pytest

from repro.cluster import A800, H20
from repro.costmodel import TimingModel, unit_layer_times
from repro.model import GPT3_7B, ModelConfig

FIG3_MODEL = ModelConfig(name="fig3", num_layers=1, num_heads=32, hidden_size=4096)


class TestTimingModel:
    def test_attention_fraction_grows_with_seq_len(self):
        """Figure 3: attention share of the layer grows superlinearly."""
        fractions = []
        for s in (4096, 16384, 65536, 131072):
            tm = TimingModel(A800, FIG3_MODEL, micro_batch=1, seq_len=s, sp=1)
            bd = tm.breakdown()
            total = sum(bd.values())
            fractions.append((bd["attn_fwd"] + bd["attn_bwd"]) / total)
        assert fractions == sorted(fractions)
        assert fractions[0] < 0.25  # small share at 4k
        assert fractions[-1] > 0.6  # dominant at 128k

    def test_attention_dominates_at_128k(self):
        tm = TimingModel(A800, FIG3_MODEL, micro_batch=1, seq_len=131072, sp=1)
        lt = tm.layer_times()
        assert lt.attn.fwd > 2 * (lt.pre.fwd + lt.post.fwd)

    def test_attention_quadratic_pre_post_linear(self):
        t1 = TimingModel(H20, GPT3_7B, seq_len=32768, sp=8).layer_times()
        t2 = TimingModel(H20, GPT3_7B, seq_len=65536, sp=8).layer_times()
        assert t2.attn.fwd / t1.attn.fwd == pytest.approx(4.0, rel=0.01)
        assert t2.post.fwd / t1.post.fwd == pytest.approx(2.0, rel=0.15)

    def test_fig9_magnitudes_7b_h20_128k(self):
        """Figure 9 (H20, 128k): attention fwd in the low hundreds of ms,
        clearly above pre+post, with comm (tested elsewhere) far below."""
        tm = TimingModel(H20, GPT3_7B, micro_batch=1, seq_len=131072, sp=8)
        lt = tm.layer_times()
        assert 0.1 < lt.attn.fwd < 0.5
        assert lt.attn.fwd > lt.pre.fwd + lt.post.fwd

    def test_a800_faster_attention_than_h20(self):
        # 2x compute -> roughly half the attention time (Section 5.2).
        a = TimingModel(A800, GPT3_7B, seq_len=65536, sp=8).attention_times()
        h = TimingModel(H20, GPT3_7B, seq_len=65536, sp=8).attention_times()
        assert a.fwd == pytest.approx(h.fwd * 148.0 / 312.0, rel=0.05)

    def test_causal_halves_attention(self):
        kw = dict(micro_batch=1, seq_len=32768, sp=8)
        c = TimingModel(H20, GPT3_7B, causal=True, **kw).attention_times()
        d = TimingModel(H20, GPT3_7B, causal=False, **kw).attention_times()
        assert d.fwd == pytest.approx(2 * c.fwd)

    def test_sp_divides_work(self):
        t1 = TimingModel(H20, GPT3_7B, seq_len=32768, sp=1).layer_times()
        t8 = TimingModel(H20, GPT3_7B, seq_len=32768, sp=8).layer_times()
        assert t1.attn.fwd == pytest.approx(8 * t8.attn.fwd)
        assert t1.fwd == pytest.approx(8 * t8.fwd, rel=0.01)

    def test_attention_has_no_weight_gradient_time(self):
        tm = TimingModel(H20, GPT3_7B, seq_len=32768, sp=8)
        assert tm.attention_times().bwd_w == 0.0

    def test_qkv_is_part_of_pre(self):
        tm = TimingModel(H20, GPT3_7B, seq_len=32768, sp=8)
        lt = tm.layer_times()
        assert lt.qkv.fwd < lt.pre.fwd

    def test_head_time_scales_with_vocab(self):
        small = ModelConfig("s", 2, 2, 64, vocab_size=1000)
        big = ModelConfig("b", 2, 2, 64, vocab_size=2000)
        ts = TimingModel(H20, small, seq_len=4096, sp=1).head_times()
        tb = TimingModel(H20, big, seq_len=4096, sp=1).head_times()
        assert tb.fwd > ts.fwd

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TimingModel(H20, GPT3_7B, micro_batch=0)


class TestUnitTimes:
    def test_ratio_1_3_2(self):
        lt = unit_layer_times()
        assert lt.pre.fwd == 1.0
        assert lt.attn.fwd == 3.0
        assert lt.post.fwd == 2.0
        assert lt.fwd == 6.0

    def test_backward_equals_forward(self):
        lt = unit_layer_times()
        assert lt.pre.bwd == lt.pre.fwd
        assert lt.attn.bwd == lt.attn.fwd
        assert lt.post.bwd == lt.post.fwd

    def test_custom_ratio(self):
        lt = unit_layer_times((2.0, 5.0, 3.0))
        assert (lt.pre.fwd, lt.attn.fwd, lt.post.fwd) == (2.0, 5.0, 3.0)
