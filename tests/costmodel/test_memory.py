"""Analytic memory model tests: Eq. 2 / Eq. 4 / Table 2 / Figure 4."""

import pytest
from hypothesis import given, strategies as st

from repro.costmodel import (
    RecomputeStrategy,
    activation_bytes_per_layer,
    activation_elems_per_layer,
    logits_stash_bytes,
    model_state_bytes_per_stage,
    stage_activation_bytes_1f1b,
    stage_activation_bytes_helix,
    stage_activation_bytes_zb1p,
)
from repro.model import GPT3_3B, GPT3_13B

GIB = float(1 << 30)


class TestPerLayer:
    def test_strategy_element_counts(self):
        b, s, h = 1, 1024, 64
        bsh = b * s * h
        expect = {
            RecomputeStrategy.NONE: 16,
            RecomputeStrategy.SELECTIVE: 13,
            RecomputeStrategy.WITHOUT_ATTENTION: 4,
            RecomputeStrategy.FULL: 1,
        }
        for strat, x in expect.items():
            assert activation_elems_per_layer(b, s, h, strat) == x * bsh

    def test_bytes_fp16_and_sp_sharding(self):
        b, s, h = 1, 1024, 64
        full = activation_bytes_per_layer(b, s, h, RecomputeStrategy.NONE, sp=1)
        assert full == 16 * b * s * h * 2
        assert activation_bytes_per_layer(b, s, h, RecomputeStrategy.NONE, sp=8) == full / 8

    def test_invalid_sp(self):
        with pytest.raises(ValueError):
            activation_bytes_per_layer(1, 1, 1, sp=0)


class TestEq2Eq4:
    @given(st.integers(min_value=2, max_value=16))
    def test_1f1b_stage0_independent_of_p(self, p):
        """Paper: 'for the first stage the activation overhead is 16bshL,
        irrelevant to pipeline size p'."""
        b, s, h, L = 1, 8192, 512, 48
        m0 = stage_activation_bytes_1f1b(b, s, h, L, p, 0)
        assert m0 == pytest.approx(16 * b * s * h * L * 2)

    def test_1f1b_memory_decreases_with_stage(self):
        vals = [
            stage_activation_bytes_1f1b(1, 8192, 512, 32, 8, i) for i in range(8)
        ]
        assert vals == sorted(vals, reverse=True)
        assert vals[-1] == pytest.approx(vals[0] / 8)

    def test_zb1p_equals_1f1b_worst_case(self):
        args = (1, 8192, 512, 32, 8)
        assert stage_activation_bytes_zb1p(*args) == pytest.approx(
            stage_activation_bytes_1f1b(*args, 0)
        )

    def test_stage_out_of_range(self):
        with pytest.raises(ValueError):
            stage_activation_bytes_1f1b(1, 1, 1, 8, 4, 4)

    def test_fig4_13b_128k_exceeds_80gb_on_first_two_stages(self):
        """Figure 4: at 128k the first two stages of a 13B/8-stage 1F1B
        run exceed the 80 GB A800 capacity while later stages do not."""
        h, L = GPT3_13B.hidden_size, GPT3_13B.num_layers
        # Per-GPU bytes with the paper's sequence-parallel size 8.
        per_gpu = [
            stage_activation_bytes_1f1b(1, 131072, h, L, 8, i, sp=8) / GIB
            for i in range(8)
        ]
        assert per_gpu[0] > 80
        assert per_gpu[1] > 80
        assert per_gpu[3] < 80

    def test_helix_balanced_and_table2(self):
        b, s, h, L, p, m = 1, 8192, 512, 32, 8, 16
        v = stage_activation_bytes_helix(b, s, h, L, p, m)
        assert v == pytest.approx(4 * b * s * h * m * L / p * 2)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_helix_beats_zb1p_when_m_at_most_2p(self, p, k):
        """With the paper's m = 2p setting, HelixPipe's 4bsh*m*L/p = 8bsh*L
        is half of ZB1P's 16bsh*L."""
        b, s, h, L = 1, 4096, 256, 8 * p
        m = 2 * p
        helix = stage_activation_bytes_helix(b, s, h, L, p, m)
        zb = stage_activation_bytes_zb1p(b, s, h, L, p)
        assert helix == pytest.approx(zb / 2)


class TestModelStates:
    def test_3b_model_states_order_of_magnitude(self):
        per_stage = model_state_bytes_per_stage(GPT3_3B, 8, sp=8)
        # ~3B params * 18B / 8 stages / 8 GPUs ~ 0.9 GiB per GPU.
        assert 0.3 * GIB < per_stage < 2.5 * GIB

    def test_logits_stash(self):
        v = logits_stash_bytes(1, 1024, 51200)
        assert v == 1024 * 51200 * 4
