"""Table 3 model configurations and parameter counting."""

import pytest

from repro.model import (
    GPT3_1P3B,
    GPT3_3B,
    GPT3_7B,
    GPT3_13B,
    MODEL_PRESETS,
    ModelConfig,
    tiny_config,
)


class TestTable3:
    def test_1_3b_row(self):
        assert GPT3_1P3B.num_layers == 24
        assert GPT3_1P3B.num_heads == 16
        assert GPT3_1P3B.hidden_size == 2048

    def test_3b_row(self):
        assert GPT3_3B.num_layers == 16
        assert GPT3_3B.num_heads == 32
        assert GPT3_3B.hidden_size == 4096

    def test_7b_row(self):
        assert GPT3_7B.num_layers == 32
        assert GPT3_7B.num_heads == 32
        assert GPT3_7B.hidden_size == 4096

    @pytest.mark.parametrize(
        "cfg,lo,hi",
        [
            (GPT3_1P3B, 1.1e9, 1.5e9),
            (GPT3_3B, 2.8e9, 3.5e9),
            (GPT3_7B, 6.2e9, 7.5e9),
            (GPT3_13B, 12.0e9, 14.0e9),
        ],
    )
    def test_param_counts_match_names(self, cfg, lo, hi):
        assert lo < cfg.total_params() < hi

    def test_presets(self):
        assert set(MODEL_PRESETS) == {"1.3B", "3B", "7B", "13B"}


class TestModelConfig:
    def test_layer_params_formula(self):
        h = 512
        cfg = ModelConfig("x", 2, 8, h)
        assert cfg.layer_params() == 12 * h * h + 4 * h

    def test_head_dim(self):
        assert GPT3_7B.head_dim == 128

    def test_ffn_hidden(self):
        assert GPT3_7B.ffn_hidden == 4 * 4096

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 3, 64)

    def test_positive_layers(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 2, 64)

    def test_tiny_config(self):
        t = tiny_config()
        assert t.num_layers == 4
        assert t.hidden_size % t.num_heads == 0

    def test_embedding_params_with_positions(self):
        cfg = ModelConfig("x", 2, 2, 64, vocab_size=100)
        assert cfg.embedding_params(10) == 100 * 64 + 10 * 64
