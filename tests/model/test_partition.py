"""Segment and layer-wise partition tests."""

import pytest
from hypothesis import given, strategies as st

from repro.model import Segment, SegmentKind, layerwise_partition, segments_cover_model


class TestSegment:
    def test_labels(self):
        assert Segment(SegmentKind.EMBED).label == "embed"
        assert Segment(SegmentKind.LAYERS, 4, 2).label == "layers[4:6]"
        assert Segment(SegmentKind.POST_PRE, 3).label == "post2+pre3"
        assert Segment(SegmentKind.ATTN, 5).label == "attn5"

    def test_post_pre_requires_l_ge_1(self):
        with pytest.raises(ValueError):
            Segment(SegmentKind.POST_PRE, 0)

    def test_phase_needs_layer(self):
        with pytest.raises(ValueError):
            Segment(SegmentKind.PRE)

    def test_layers_validation(self):
        with pytest.raises(ValueError):
            Segment(SegmentKind.LAYERS, 0, 0)

    def test_ordering_and_hash(self):
        a = Segment(SegmentKind.ATTN, 1)
        b = Segment(SegmentKind.ATTN, 1)
        assert a == b and hash(a) == hash(b)


class TestLayerwisePartition:
    def test_even_split(self):
        stages = layerwise_partition(8, 4)
        runs = [
            [s for s in segs if s.kind is SegmentKind.LAYERS][0] for segs in stages
        ]
        assert [(r.layer, r.num_layers) for r in runs] == [
            (0, 2), (2, 2), (4, 2), (6, 2),
        ]

    def test_embed_head_placement(self):
        stages = layerwise_partition(8, 4)
        assert stages[0][0].kind is SegmentKind.EMBED
        assert stages[-1][-1].kind is SegmentKind.HEAD
        middle = [s for segs in stages[1:-1] for s in segs]
        assert all(s.kind is SegmentKind.LAYERS for s in middle)

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            layerwise_partition(10, 4)

    @given(
        st.integers(min_value=1, max_value=8).flatmap(
            lambda p: st.tuples(
                st.just(p), st.integers(min_value=1, max_value=6).map(lambda k: k * p)
            )
        )
    )
    def test_coverage_property(self, pL):
        p, L = pL
        stages = layerwise_partition(L, p)
        assert segments_cover_model(stages, L)

    def test_optional_embed_head(self):
        stages = layerwise_partition(4, 2, include_embed=False, include_head=False)
        kinds = {s.kind for segs in stages for s in segs}
        assert kinds == {SegmentKind.LAYERS}
