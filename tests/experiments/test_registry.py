"""Experiment registry: spec lookup, parity with legacy entry points."""

import importlib
import json

import pytest

from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)

EXPECTED = {
    "chunked_mlp",
    "fig2_fig7_schedules",
    "fig3_breakdown",
    "fig4_memory_imbalance",
    "fig5_partition",
    "fig6_overlap",
    "fig8_throughput",
    "fig9_comm",
    "fig10_memory_footprint",
    "fig11_recompute",
    "table1",
    "table2",
}


class TestRegistryContents:
    def test_every_figure_and_table_registered(self):
        assert set(available_experiments()) == EXPECTED

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_specs_carry_schema_and_description(self):
        for name in available_experiments():
            spec = get_experiment(name)
            assert spec.description, name
            # Schema defaults are the runner's own keyword defaults.
            for pname, default in spec.params.items():
                assert pname in spec.runner.__code__.co_varnames

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("table1")(lambda: [])

    def test_runner_without_defaults_rejected(self):
        def runner(x):  # no default
            return []

        with pytest.raises(ValueError, match="needs a default"):
            register_experiment("bad-experiment")(runner)

    def test_smoke_params_must_name_schema_params(self):
        def runner(a=1):
            return []

        with pytest.raises(ValueError, match="smoke parameter"):
            register_experiment("bad-smoke", smoke={"b": 2})(runner)


class TestParityWithLegacyModules:
    """Each spec must reproduce its module ``run()`` on the smoke workload."""

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_registry_rows_match_module_entry_point(self, name):
        spec = get_experiment(name)
        module = importlib.import_module(f"repro.experiments.{name}")
        params = spec.resolve_params(smoke=True)
        expected_rows = module.run(**params)
        result = spec.run(smoke=True)
        assert result.name == name
        assert result.params == params
        assert result.rows == expected_rows
        assert result.rows, f"{name} produced no rows"


class TestRunOverrides:
    def test_override_applies_on_top_of_smoke(self):
        result = run_experiment("table2", smoke=True, num_layers=8)
        assert result.params["p"] == 2  # smoke
        assert result.params["num_layers"] == 8  # override wins

    def test_unknown_override_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            run_experiment("table2", banana=1)

    def test_renderer_attached_only_where_registered(self):
        spec = get_experiment("fig2_fig7_schedules")
        assert "P0 |" in spec.render()
        with pytest.raises(ValueError, match="no renderer"):
            get_experiment("table1").render()


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="demo",
            params={"seq_lens": (1, 2), "gpu": "H20"},
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}],
        )

    def test_columns_union_in_first_seen_order(self):
        assert self._result().columns == ["a", "b", "c"]

    def test_json_round_trip(self):
        payload = json.loads(self._result().to_json())
        assert payload["experiment"] == "demo"
        assert payload["params"]["seq_lens"] == [1, 2]
        assert payload["rows"][1]["c"] == "x"

    def test_csv_has_header_and_ragged_rows(self):
        lines = self._result().to_csv().strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2.5,"
        assert lines[2] == "3,,x"
