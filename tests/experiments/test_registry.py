"""Experiment registry: spec lookup, parity with legacy entry points."""

import importlib
import json
import math

import pytest


def _reject_constant(name):
    raise AssertionError(f"non-standard JSON token {name!r} emitted")

from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)

EXPECTED = {
    "chunked_mlp",
    "fig2_fig7_schedules",
    "fig3_breakdown",
    "fig4_memory_imbalance",
    "fig5_partition",
    "fig6_overlap",
    "fig8_throughput",
    "fig9_comm",
    "fig10_memory_footprint",
    "fig11_recompute",
    "table1",
    "table2",
}


class TestRegistryContents:
    def test_every_figure_and_table_registered(self):
        assert set(available_experiments()) == EXPECTED

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_specs_carry_schema_and_description(self):
        for name in available_experiments():
            spec = get_experiment(name)
            assert spec.description, name
            # Schema defaults are the runner's own keyword defaults.
            for pname, default in spec.params.items():
                assert pname in spec.runner.__code__.co_varnames

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("table1")(lambda: [])

    def test_runner_without_defaults_rejected(self):
        def runner(x):  # no default
            return []

        with pytest.raises(ValueError, match="needs a default"):
            register_experiment("bad-experiment")(runner)

    def test_smoke_params_must_name_schema_params(self):
        def runner(a=1):
            return []

        with pytest.raises(ValueError, match="smoke parameter"):
            register_experiment("bad-smoke", smoke={"b": 2})(runner)


class TestParityWithLegacyModules:
    """Each spec must reproduce its module ``run()`` on the smoke workload."""

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_registry_rows_match_module_entry_point(self, name):
        spec = get_experiment(name)
        module = importlib.import_module(f"repro.experiments.{name}")
        params = spec.resolve_params(smoke=True)
        expected_rows = module.run(**params)
        result = spec.run(smoke=True)
        assert result.name == name
        assert result.params == params
        assert result.rows == expected_rows
        assert result.rows, f"{name} produced no rows"


class TestRunOverrides:
    def test_override_applies_on_top_of_smoke(self):
        result = run_experiment("table2", smoke=True, num_layers=8)
        assert result.params["p"] == 2  # smoke
        assert result.params["num_layers"] == 8  # override wins

    def test_unknown_override_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            run_experiment("table2", banana=1)

    def test_renderer_attached_only_where_registered(self):
        spec = get_experiment("fig2_fig7_schedules")
        assert "P0 |" in spec.render()
        with pytest.raises(ValueError, match="no renderer"):
            get_experiment("table1").render()


class TestCanonicalSerialisation:
    """Artifact bytes must depend on the result values, nothing else."""

    def test_back_to_back_runs_are_byte_identical(self):
        a = run_experiment("fig8_throughput", smoke=True)
        b = run_experiment("fig8_throughput", smoke=True)
        assert a.to_json() == b.to_json()
        assert a.to_csv() == b.to_csv()

    def test_row_production_order_does_not_change_artifacts(self):
        rows = [
            {"k": "b", "v": 2.0},
            {"k": "a", "v": 1.0},
        ]
        fwd = ExperimentResult(name="demo", params={}, rows=rows)
        rev = ExperimentResult(name="demo", params={}, rows=rows[::-1])
        assert fwd.to_json() == rev.to_json()
        assert fwd.to_csv() == rev.to_csv()

    def test_heterogeneous_rows_serialise_order_independently(self):
        """Column order must not leak production order even when rows
        have different key sets (ragged artifacts)."""
        rows = [
            {"k": "a", "v": 1.0},
            {"k": "b", "w": 2.0},
        ]
        fwd = ExperimentResult(name="demo", params={}, rows=rows)
        rev = ExperimentResult(name="demo", params={}, rows=rows[::-1])
        assert fwd.to_json() == rev.to_json()
        assert fwd.to_csv() == rev.to_csv()
        assert fwd.canonical_columns() == rev.canonical_columns()

    def test_rows_sort_numerically_not_lexicographically(self):
        """Integer axis columns must serialise in sweep order: the full
        protocol's seq_len=131072 comes after 98304, not before 32768
        as repr-lexicographic ordering would put it."""
        rows = [{"seq_len": s, "v": 1.0} for s in (131072, 32768, 98304)]
        r = ExperimentResult(name="demo", params={}, rows=rows)
        assert [row["seq_len"] for row in r.canonical_rows()] == [
            32768, 98304, 131072,
        ]

    def test_missing_vs_explicit_none_sort_deterministically(self):
        """A missing cell and an explicit None cell must not share a
        sort key, or production order would leak into the bytes."""
        rows = [
            {"k": "a", "v": None},
            {"k": "a"},
        ]
        fwd = ExperimentResult(name="demo", params={}, rows=rows)
        rev = ExperimentResult(name="demo", params={}, rows=rows[::-1])
        assert fwd.to_json() == rev.to_json()

    def test_non_finite_cells_emit_strict_json(self):
        r = ExperimentResult(
            name="demo",
            params={"cap": float("inf")},
            rows=[{"k": "x", "v": float("nan"), "w": float("-inf")}],
        )
        # Standard parsers reject bare NaN/Infinity tokens; the strict
        # loader must refuse them, meaning none were emitted.
        payload = json.loads(r.to_json(), parse_constant=_reject_constant)
        assert payload["rows"][0]["v"] == "NaN"
        assert payload["rows"][0]["w"] == "-Infinity"
        assert payload["params"]["cap"] == "Infinity"
        # ...and from_json restores the float cells and params.
        back = ExperimentResult.from_json(r.to_json())
        assert math.isnan(back.rows[0]["v"])
        assert back.rows[0]["w"] == float("-inf")
        assert back.params["cap"] == float("inf")

    def test_nonfinite_params_decode_inside_lists(self):
        r = ExperimentResult(
            name="demo", params={"caps": (1.0, float("inf"))}, rows=[]
        )
        back = ExperimentResult.from_json(r.to_json())
        assert back.params["caps"] == [1.0, float("inf")]

    def test_literal_nonfinite_strings_fold_into_floats(self):
        """A string cell spelling exactly "NaN"/"Infinity" aliases the
        float on round-trip by design -- canonical_cell folds the
        in-memory form the same way, so the two can never diff."""
        from repro.experiments.registry import canonical_cell

        assert math.isnan(canonical_cell("NaN"))
        assert canonical_cell("Infinity") == float("inf")
        assert canonical_cell("nan") == "nan"  # only the JSON spellings
        stringy = ExperimentResult(
            name="demo", params={}, rows=[{"k": "x", "v": "NaN"}]
        )
        floaty = ExperimentResult(
            name="demo", params={}, rows=[{"k": "x", "v": float("nan")}]
        )
        assert stringy.to_json() == floaty.to_json()

    def test_from_json_rejects_non_object_rows(self):
        bad = json.dumps({"experiment": "demo", "rows": [1, 2]})
        with pytest.raises(ValueError, match="rows must be JSON objects"):
            ExperimentResult.from_json(bad)

    def test_float_repr_normalised_to_12_significant_digits(self):
        noisy = ExperimentResult(
            name="demo", params={}, rows=[{"k": "x", "v": 0.1 + 0.2}]
        )
        exact = ExperimentResult(
            name="demo", params={}, rows=[{"k": "x", "v": 0.3}]
        )
        assert noisy.to_json() == exact.to_json()
        assert noisy.canonical_rows()[0]["v"] == 0.3

    def test_negative_zero_folds_into_zero(self):
        r = ExperimentResult(name="demo", params={}, rows=[{"v": -0.0}])
        assert "-0" not in r.to_json()

    def test_params_serialise_sorted(self):
        r = ExperimentResult(name="demo", params={"z": 1, "a": 2}, rows=[])
        payload = r.to_json()
        assert payload.index('"a"') < payload.index('"z"')

    def test_header_carries_columns_and_fingerprint(self):
        r = run_experiment("table2", smoke=True)
        payload = json.loads(r.to_json())
        assert payload["columns"] == r.columns
        assert payload["costmodel"] == r.costmodel != ""

    def test_from_json_round_trips_canonical_rows(self):
        r = run_experiment("table2", smoke=True)
        back = ExperimentResult.from_json(r.to_json())
        assert back.name == r.name
        assert back.rows == r.canonical_rows()
        assert back.costmodel == r.costmodel

    def test_from_json_rejects_non_artifacts(self):
        with pytest.raises(ValueError, match="not an experiment artifact"):
            ExperimentResult.from_json("[1, 2, 3]")
        with pytest.raises(ValueError, match="not an experiment artifact"):
            ExperimentResult.from_json("not json at all")

    def test_pre_canonical_artifact_loads_unstamped(self):
        legacy = json.dumps(
            {"experiment": "demo", "params": {}, "rows": [{"a": 1}]}
        )
        back = ExperimentResult.from_json(legacy)
        assert back.costmodel == ""
        assert back.rows == [{"a": 1}]


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="demo",
            params={"seq_lens": (1, 2), "gpu": "H20"},
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}],
        )

    def test_columns_union_in_first_seen_order(self):
        assert self._result().columns == ["a", "b", "c"]

    def test_json_round_trip(self):
        payload = json.loads(self._result().to_json())
        assert payload["experiment"] == "demo"
        assert payload["params"]["seq_lens"] == [1, 2]
        assert payload["rows"][1]["c"] == "x"

    def test_csv_has_header_and_ragged_rows(self):
        lines = self._result().to_csv().strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2.5,"
        assert lines[2] == "3,,x"
