"""Diff engine + golden verification: tolerances, edge cases, the tree."""

import json
import math
import os

import pytest

from repro.experiments.diffing import (
    DiffReport,
    Tolerance,
    diff_files,
    diff_results,
    format_verify_report,
    golden_path,
    infer_key_columns,
    verify_experiments,
)
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    run_experiment,
)

#: The committed golden tree, independent of the process working dir.
GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "golden"
)


def result(rows, name="demo", params=None, costmodel="abc123"):
    return ExperimentResult(
        name=name, params=params or {"p": 2}, rows=rows, costmodel=costmodel
    )


BASE_ROWS = [
    {"method": "1f1b", "seq_len": 1024, "tokens_per_s": 100.0, "note": "ok"},
    {"method": "helix", "seq_len": 1024, "tokens_per_s": 120.0, "note": "ok"},
]


class TestKeyInference:
    def test_non_float_columns_key_rows(self):
        a, b = result(BASE_ROWS), result(BASE_ROWS)
        rep = diff_results(a, b)
        assert rep.key_columns == ("method", "seq_len", "note")
        assert rep.clean
        assert rep.rows_compared == 2

    def test_all_float_rows_key_on_the_first_column(self):
        """Keyless artifacts (every column float, e.g. fig6_overlap)
        fall back to the x-axis convention: first column keys."""
        rows = [{"x": 1.0, "y": 10.0}, {"x": 2.0, "y": 20.0}]
        rep = diff_results(result(rows), result(rows))
        assert rep.key_columns == ("x",)
        assert rep.clean and rep.rows_compared == 2

    def test_first_column_key_prevents_cascading_diffs(self):
        """One drifted measurement must produce one entry, not spurious
        diffs on neighbouring rows via value-sorted positional pairing."""
        a = result([{"x": 1.0, "y": 10.0}, {"x": 2.0, "y": 20.0}])
        b = result([{"x": 1.0, "y": 30.0}, {"x": 2.0, "y": 20.0}])
        rep = diff_results(a, b)
        (entry,) = rep.drift
        assert entry.kind == "value"
        assert entry.key == ("1",)  # float keys quantise to 6 sig digits
        assert (entry.baseline, entry.candidate) == (10.0, 30.0)

    def test_no_columns_at_all_align_by_position(self):
        rep = diff_results(result([{}]), result([{}]))
        assert rep.key_columns == ()
        assert rep.clean and rep.rows_compared == 1

    def test_bool_columns_are_measurements_not_keys(self):
        """A derived bool (fig4 exceeds_capacity, fig9 overlappable)
        must diff as a per-cell entry when it flips, not re-key the row
        into row-removed + row-added noise."""
        a = result([{"stage": 0, "gib": 10.0, "exceeds": False}])
        b = result([{"stage": 0, "gib": 99.0, "exceeds": True}])
        rep = diff_results(a, b)
        assert rep.key_columns == ("stage",)
        kinds = sorted(e.kind for e in rep.drift)
        assert kinds == ["non-numeric", "value"]
        flip = next(e for e in rep.drift if e.kind == "non-numeric")
        assert flip.column == "exceeds"
        assert (flip.baseline, flip.candidate) == (False, True)

    def test_explicit_keys_validated(self):
        with pytest.raises(ValueError, match="not shared by both"):
            diff_results(
                result(BASE_ROWS), result(BASE_ROWS), key_columns=["banana"]
            )

    def test_different_experiments_rejected(self):
        with pytest.raises(ValueError, match="different experiments"):
            diff_results(result(BASE_ROWS, name="a"), result(BASE_ROWS, name="b"))


class TestNumericTolerance:
    def _drifted(self, factor, **tol):
        rows = [dict(r) for r in BASE_ROWS]
        rows[0] = dict(rows[0], tokens_per_s=rows[0]["tokens_per_s"] * factor)
        return diff_results(
            result(BASE_ROWS), result(rows), tolerance=Tolerance(**tol)
        )

    def test_exact_match_is_clean(self):
        assert diff_results(result(BASE_ROWS), result(BASE_ROWS)).clean

    def test_drift_beyond_rtol_reported_with_delta(self):
        rep = self._drifted(1.05, rtol=0.01)
        assert not rep.clean
        (entry,) = rep.drift
        assert entry.kind == "value"
        assert entry.column == "tokens_per_s"
        assert entry.key[0] == "1f1b"
        assert entry.delta == pytest.approx(5.0)
        assert entry.rel == pytest.approx(0.05)

    def test_drift_within_rtol_is_clean(self):
        assert self._drifted(1.05, rtol=0.10).clean

    def test_atol_absorbs_small_absolute_drift(self):
        assert self._drifted(1.05, atol=10.0, rtol=0.0).clean

    def test_zero_baseline_reports_infinite_rel(self):
        a = result([{"k": "x", "v": 0.0}])
        b = result([{"k": "x", "v": 1.0}])
        (entry,) = diff_results(a, b).drift
        assert entry.rel == math.inf

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Tolerance(atol=-1.0)


class TestEdgeCases:
    """Each divergence class produces its own distinct entry kind."""

    def test_nan_vs_number_is_non_finite(self):
        a = result([{"k": "x", "v": float("nan")}])
        b = result([{"k": "x", "v": 1.0}])
        (entry,) = diff_results(a, b).drift
        assert entry.kind == "non-finite"

    def test_nan_vs_nan_matches(self):
        rows = [{"k": "x", "v": float("nan")}]
        assert diff_results(result(rows), result(rows)).clean

    def test_nan_in_key_column_still_matches_rows(self):
        """nan != nan must not break row alignment: an artifact whose
        key cell is NaN would otherwise diff as permanent
        row-removed + row-added against its own reload."""
        rows = [{"x": float("nan"), "y": 10.0}, {"x": 2.0, "y": 20.0}]
        r = result(rows)  # all-float: first column ("x") keys
        loaded = ExperimentResult.from_json(r.to_json())
        assert diff_results(loaded, r).clean
        explicit = diff_results(r, r, key_columns=["x"])
        assert explicit.clean and explicit.rows_compared == 2

    def test_float_key_cells_match_under_jitter(self):
        """Sub-tolerance jitter in a float key (the x-axis fallback)
        must not explode into row-removed + row-added drift."""
        a = result([{"x": 1.0, "y": 2.0}])
        b = result([{"x": 1.0000000001, "y": 2.0}])
        rep = diff_results(a, b)
        assert rep.key_columns == ("x",)
        assert rep.rows_compared == 1
        # The key matched; the x drift itself is within tolerance.
        assert rep.clean

    def test_float_key_drift_beyond_tolerance_still_reported(self):
        """Jitter small enough to match the key (6 sig digits) but
        beyond the numeric tolerance must surface as value drift, not
        vanish because the column keys the row."""
        a = result([{"x": 1.0, "y": 2.0}])
        b = result([{"x": 1.0000001, "y": 2.0}])
        rep = diff_results(a, b)
        assert rep.rows_compared == 1  # still one matched row
        (entry,) = rep.drift
        assert entry.kind == "value"
        assert entry.column == "x"

    def test_near_zero_jitter_absorbed_by_default_atol(self):
        """Absolute libm noise against an exactly-zero baseline must not
        drift: no rtol can absorb it (rtol * |0| == 0)."""
        a = result([{"k": "x", "v": 0.0}])
        b = result([{"k": "x", "v": 1e-16}])
        assert diff_results(a, b).clean

    def test_inf_vs_finite_is_non_finite(self):
        a = result([{"k": "x", "v": math.inf}])
        b = result([{"k": "x", "v": 1e300}])
        (entry,) = diff_results(a, b).drift
        assert entry.kind == "non-finite"

    def test_opposite_infinities_are_non_finite(self):
        a = result([{"k": "x", "v": math.inf}])
        b = result([{"k": "x", "v": -math.inf}])
        (entry,) = diff_results(a, b).drift
        assert entry.kind == "non-finite"

    def test_same_infinity_matches(self):
        rows = [{"k": "x", "v": math.inf}]
        assert diff_results(result(rows), result(rows)).clean

    def test_added_and_removed_rows(self):
        a = result(BASE_ROWS)
        b = result(
            [BASE_ROWS[0], {"method": "zb1p", "seq_len": 1024,
                            "tokens_per_s": 110.0, "note": "ok"}]
        )
        rep = diff_results(a, b)
        kinds = sorted(e.kind for e in rep.drift)
        assert kinds == ["row-added", "row-removed"]
        removed = next(e for e in rep.drift if e.kind == "row-removed")
        assert removed.key[0] == "helix"
        assert rep.rows_compared == 1

    def test_reason_string_columns_diff_as_non_numeric(self):
        # A float column forces "note" to stay a value column via --key.
        a = result([{"k": "x", "v": 1.0, "note": "ok"}])
        b = result([{"k": "x", "v": 1.0, "note": "OOM: peak 99 GiB"}])
        rep = diff_results(a, b, key_columns=["k"])
        (entry,) = rep.drift
        assert entry.kind == "non-numeric"
        assert entry.column == "note"
        assert entry.baseline == "ok"

    def test_missing_cell_in_ragged_row_is_non_numeric(self):
        a = result([{"k": "x", "v": 1.0, "extra": 2.0}])
        b = result([{"k": "x", "v": 1.0}])
        rep = diff_results(a, b, key_columns=["k"])
        # "extra" is missing column-wise on the candidate side entirely.
        assert [e.kind for e in rep.drift] == ["column-removed"]

    def test_cell_missing_in_one_row_is_non_numeric(self):
        # Column shared by both artifacts, absent from one baseline row.
        a = result([{"k": "x", "v": 1.0}, {"k": "y", "v": 1.0, "extra": 5.0}])
        b = result([{"k": "x", "v": 1.0, "extra": 5.0},
                    {"k": "y", "v": 1.0, "extra": 5.0}])
        rep = diff_results(a, b, key_columns=["k"])
        (entry,) = rep.drift
        assert entry.kind == "non-numeric"
        assert entry.column == "extra"
        assert entry.baseline == "<missing>"

    def test_added_and_removed_columns(self):
        a = result([{"k": "x", "v": 1.0, "old": 1.0}])
        b = result([{"k": "x", "v": 1.0, "new": 1.0}])
        kinds = sorted(e.kind for e in diff_results(a, b).drift)
        assert kinds == ["column-added", "column-removed"]

    def test_fingerprint_mismatch_is_warning_not_drift(self):
        a = result(BASE_ROWS, costmodel="aaa")
        b = result(BASE_ROWS, costmodel="bbb")
        rep = diff_results(a, b)
        assert rep.clean  # warning only
        (warn,) = rep.warnings
        assert warn.kind == "fingerprint"
        assert (warn.baseline, warn.candidate) == ("aaa", "bbb")
        assert "fingerprint mismatch" in rep.format()

    def test_literal_nonfinite_string_never_drifts_from_its_float(self):
        """Golden loading decodes "NaN" -> nan; the fresh in-memory side
        must canonicalise the same way or verify would report permanent
        drift that --update cannot clear."""
        loaded = ExperimentResult.from_json(
            result([{"k": "x", "note": "NaN", "v": 1.0}]).to_json()
        )
        fresh = result([{"k": "x", "note": float("nan"), "v": 1.0}])
        assert diff_results(loaded, fresh, key_columns=["k"]).clean
        stringy = result([{"k": "x", "note": "NaN", "v": 1.0}])
        assert diff_results(loaded, stringy, key_columns=["k"]).clean

    def test_unstamped_artifact_renders_as_unstamped(self):
        rep = diff_results(
            result(BASE_ROWS, costmodel=""), result(BASE_ROWS, costmodel="bbb")
        )
        (warn,) = rep.warnings
        assert warn.baseline == "<unstamped>"

    def test_param_drift_reported(self):
        a = result(BASE_ROWS, params={"p": 2, "seq": 32768})
        b = result(BASE_ROWS, params={"p": 4, "seq": 32768})
        (entry,) = diff_results(a, b).drift
        assert entry.kind == "param"
        assert entry.column == "p"
        assert (entry.baseline, entry.candidate) == (2, 4)

    def test_duplicate_keys_pair_by_occurrence(self):
        rows = [
            {"k": "x", "v": 1.0},
            {"k": "x", "v": 2.0},
        ]
        drifted = [dict(rows[0]), dict(rows[1], v=3.0)]
        rep = diff_results(result(rows), result(drifted))
        (entry,) = rep.drift
        assert entry.kind == "value"
        assert entry.baseline == 2.0 and entry.candidate == 3.0

    def test_duplicate_keys_pair_exact_matches_first(self):
        """One changed row in a duplicated-key group re-sorts the
        canonical order; the unchanged row must still pair with its
        identical twin, not with the changed row's new position."""
        rows = [
            {"k": "x", "v": 1.0},
            {"k": "x", "v": 2.0},
        ]
        # v=1.0 drifts to 3.0; canonical order becomes [2.0, 3.0].
        drifted = [{"k": "x", "v": 3.0}, {"k": "x", "v": 2.0}]
        rep = diff_results(result(rows), result(drifted))
        (entry,) = rep.drift
        assert entry.kind == "value"
        assert (entry.baseline, entry.candidate) == (1.0, 3.0)


class TestReportSerialisation:
    def _report(self) -> DiffReport:
        rows = [dict(BASE_ROWS[0], tokens_per_s=105.0), BASE_ROWS[1]]
        return diff_results(
            result(BASE_ROWS), result(rows, costmodel="zzz")
        )

    def test_json_round_trips_and_flags_clean(self):
        payload = json.loads(self._report().to_json())
        assert payload["experiment"] == "demo"
        assert payload["clean"] is False
        kinds = {e["kind"] for e in payload["entries"]}
        assert kinds == {"fingerprint", "value"}

    def test_json_is_strict_with_non_finite_deltas(self):
        """rel=inf (zero baseline) and NaN cells must serialise as
        strings, not Python's bare Infinity/NaN tokens that strict
        parsers (jq, JSON.parse) reject."""
        a = result([{"k": "x", "v": 0.0, "w": float("nan")}])
        b = result([{"k": "x", "v": 1.0, "w": 2.0}])
        rep = diff_results(a, b)
        assert not rep.clean

        def reject(name):
            raise AssertionError(f"non-standard JSON token {name!r}")

        payload = json.loads(rep.to_json(), parse_constant=reject)
        by_col = {e["column"]: e for e in payload["entries"]}
        assert by_col["v"]["rel"] == "Infinity"
        assert by_col["w"]["baseline"] == "NaN"

    def test_format_names_the_drifted_cell(self):
        text = self._report().format()
        assert "tokens_per_s" in text
        assert "method=1f1b" in text
        assert "DRIFT" in text

    def test_clean_report_says_so(self):
        text = diff_results(result(BASE_ROWS), result(BASE_ROWS)).format()
        assert "no drift" in text


class TestDiffFiles:
    def test_file_diff_and_bad_artifact(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(result(BASE_ROWS).to_json())
        rows = [dict(BASE_ROWS[0], tokens_per_s=200.0), BASE_ROWS[1]]
        b.write_text(result(rows).to_json())
        rep = diff_files(a, b)
        assert not rep.clean
        assert rep.baseline_label == str(a)

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="not an experiment artifact"):
            diff_files(a, bad)


class TestVerify:
    def test_committed_goldens_match_smoke_runs(self):
        """THE regression harness: every registered spec must reproduce
        its committed golden artifact bit-for-bit (within the default
        near-exact tolerance)."""
        outcomes = verify_experiments(GOLDEN_DIR, smoke=True)
        drifted = {
            o.name: (o.report.format() if o.report else o.status)
            for o in outcomes
            if not o.ok
        }
        assert not drifted, (
            "experiment output drifted from tests/golden -- if the "
            "cost-model change is intentional, regenerate with "
            "`python -m repro experiment verify --smoke --update` and "
            f"commit the result:\n{json.dumps(list(drifted), indent=2)}\n"
            + "\n\n".join(drifted.values())
        )

    def test_update_then_verify_round_trip(self, tmp_path):
        out = verify_experiments(
            tmp_path, ["table2"], smoke=True, update=True
        )
        assert [o.status for o in out] == ["updated"]
        again = verify_experiments(
            tmp_path, ["table2"], smoke=True, update=True
        )
        assert [o.status for o in again] == ["unchanged"]
        clean = verify_experiments(tmp_path, ["table2"], smoke=True)
        assert [o.status for o in clean] == ["ok"]

    def test_missing_golden_reported(self, tmp_path):
        out = verify_experiments(tmp_path, ["table2"], smoke=True)
        assert [o.status for o in out] == ["missing"]
        assert not out[0].ok
        assert "no golden committed" in format_verify_report(out, tmp_path)

    def test_drifted_golden_fails_with_cell_report(self, tmp_path):
        verify_experiments(tmp_path, ["table2"], smoke=True, update=True)
        path = golden_path("table2", tmp_path)
        payload = json.loads(open(path).read())
        payload["rows"][0]["makespan"] += 7.0
        with open(path, "w") as fh:
            json.dump(payload, fh)
        out = verify_experiments(tmp_path, ["table2"], smoke=True)
        assert [o.status for o in out] == ["drift"]
        text = format_verify_report(out, tmp_path)
        assert "makespan" in text and "DRIFT" in text

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiment"):
            verify_experiments(tmp_path, ["fig99"], smoke=True)

    def test_mode_mismatch_fails_fast_on_params(self, tmp_path, monkeypatch):
        """verify without smoke against smoke goldens must fail with
        param-drift entries *before* running the full-protocol spec."""
        verify_experiments(tmp_path, ["fig8_throughput"], smoke=True,
                           update=True)

        def boom(**kw):  # the full run must never start
            raise AssertionError("spec ran despite param mismatch")

        spec = get_experiment("fig8_throughput")
        monkeypatch.setattr(type(spec), "run", lambda self, **kw: boom())
        out = verify_experiments(tmp_path, ["fig8_throughput"], smoke=False)
        assert [o.status for o in out] == ["drift"]
        kinds = {e.kind for e in out[0].report.drift}
        assert kinds == {"param"}
        assert out[0].report.rows_compared == 0

    def test_fingerprint_stamped_on_run(self):
        from repro.tuner.cache import costmodel_fingerprint

        assert run_experiment("table2", smoke=True).costmodel == (
            costmodel_fingerprint()
        )
