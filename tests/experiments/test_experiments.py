"""Integration smoke tests for every experiment module (fast configs)."""

import pytest

from repro.experiments import (
    Workload,
    chunked_mlp,
    fig2_fig7_schedules,
    fig3_breakdown,
    fig4_memory_imbalance,
    fig5_partition,
    fig6_overlap,
    fig8_throughput,
    fig9_comm,
    fig10_memory_footprint,
    fig11_recompute,
    run_method,
    table1,
    table2,
)


class TestWorkload:
    def test_paper_defaults(self):
        wl = Workload.paper("7B", "H20", 4, 65536)
        assert wl.p == 4
        assert wl.num_micro_batches == 8  # 2 x p
        assert wl.tokens_per_iteration == 8 * 65536

    def test_unknown_method(self):
        wl = Workload.paper("3B", "A800", 2, 32768)
        with pytest.raises(ValueError, match="unknown method"):
            wl.build("pipedream")

    @pytest.mark.parametrize(
        "method", ["1f1b", "zb1p", "adapipe", "helix", "helix-naive", "helix-no-recompute"]
    )
    def test_all_methods_run(self, method):
        wl = Workload.paper("1.3B", "H20", 2, 32768)
        r = run_method(wl, method)
        assert r.makespan > 0


class TestExperimentModules:
    def test_table1_rows(self):
        rows = table1.run()
        assert len(rows) == 9  # 8 ops + total

    def test_table2_rows(self):
        rows = table2.run(p=2, num_layers=4)
        assert {r["pipeline"] for r in rows} == {"1F1B", "ZB1P", "HelixPipe"}

    def test_fig3_monotone(self):
        rows = fig3_breakdown.run(seq_lens=(4096, 32768))
        assert rows[1]["attn_share_pct"] > rows[0]["attn_share_pct"]

    def test_fig4_shape(self):
        rows = fig4_memory_imbalance.run(seq_lens=(131072,))
        assert len(rows) == 8

    def test_fig5(self):
        rows = fig5_partition.run()
        assert len(rows) == 2

    def test_fig6(self):
        rows = fig6_overlap.run(comm_times=(0.0, 1.0))
        assert rows[1]["twofold_makespan"] <= rows[1]["naive_makespan"]

    def test_fig2_fig7_render(self):
        text = fig2_fig7_schedules.render(width=60)
        assert "fig2a_1f1b" in text and "P0 |" in text

    def test_fig8_tiny_grid(self):
        rows = fig8_throughput.run(
            models=("1.3B",), gpus=("H20",), seq_lens=(32768,), pp_sizes=(2,)
        )
        assert len(rows) == 4
        norm = {r["method"]: r["normalized"] for r in rows}
        assert max(norm.values()) == pytest.approx(1.0)
        speed = fig8_throughput.speedup_vs_best_baseline(rows)
        assert len(speed) == 1

    def test_fig9(self):
        rows = fig9_comm.run(seq_lens=(32768,))
        assert {r["gpu"] for r in rows} == {"H20", "A800"}

    def test_fig10(self):
        rows = fig10_memory_footprint.run(p=2, seq_len=32768)
        summary = fig10_memory_footprint.summarize(rows)
        assert {s["method"] for s in summary} == {"1f1b", "zb1p", "adapipe", "helix"}

    def test_fig11(self):
        rows = fig11_recompute.run(gpus=("H20",), p=2, seq_lens=(32768,))
        assert rows[0]["throughput_ratio"] <= 1.0

    def test_chunked_mlp(self):
        rows = chunked_mlp.run(num_layers=2, num_micro_batches=2, s=8192)
        assert {r["variant"] for r in rows} == {
            "unchunked", "unchunked+expandable", "chunked",
        }
