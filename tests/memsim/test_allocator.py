"""Caching allocator unit tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim import CachingAllocator, OutOfMemoryError

KB = 1024


class TestBasics:
    def test_malloc_free_roundtrip(self):
        a = CachingAllocator(capacity=1024 * KB, segment_granularity=KB)
        h = a.malloc(10 * KB)
        assert a.allocated == 10 * KB
        assert a.reserved == 10 * KB
        a.free(h)
        assert a.allocated == 0
        assert a.reserved == 10 * KB  # cached, not released

    def test_cached_block_reused(self):
        a = CachingAllocator(capacity=1024 * KB, segment_granularity=KB)
        h = a.malloc(10 * KB)
        a.free(h)
        a.malloc(8 * KB)  # fits in the cached block
        assert a.reserved == 10 * KB

    def test_split_and_coalesce(self):
        a = CachingAllocator(capacity=1024 * KB, segment_granularity=KB)
        h = a.malloc(10 * KB)
        a.free(h)
        h1 = a.malloc(4 * KB)
        h2 = a.malloc(6 * KB)
        assert a.reserved == 10 * KB  # both carved from the old block
        a.free(h1)
        a.free(h2)
        h3 = a.malloc(10 * KB)  # coalesced back into one block
        assert a.reserved == 10 * KB
        a.free(h3)

    def test_granularity_rounding(self):
        a = CachingAllocator(capacity=1024 * KB, segment_granularity=4 * KB)
        a.malloc(KB)
        assert a.reserved == 4 * KB

    def test_oom_on_capacity(self):
        a = CachingAllocator(capacity=10 * KB, segment_granularity=KB)
        a.malloc(8 * KB)
        with pytest.raises(OutOfMemoryError):
            a.malloc(4 * KB)

    def test_fragmentation_oom(self):
        """Free bytes exist but no block is large enough -> OOM."""
        a = CachingAllocator(capacity=10 * KB, segment_granularity=KB)
        h1 = a.malloc(4 * KB)
        h2 = a.malloc(2 * KB)
        h3 = a.malloc(4 * KB)
        a.free(h1)
        a.free(h3)  # 8 KB free, but split 4 + 4 across segments
        with pytest.raises(OutOfMemoryError):
            a.malloc(6 * KB)
        del h2

    def test_empty_cache_releases_free_segments(self):
        a = CachingAllocator(capacity=100 * KB, segment_granularity=KB)
        h = a.malloc(10 * KB)
        a.free(h)
        a.empty_cache()
        assert a.reserved == 0

    def test_empty_cache_keeps_live_segments(self):
        a = CachingAllocator(capacity=100 * KB, segment_granularity=KB)
        a.malloc(10 * KB)
        a.empty_cache()
        assert a.reserved == 10 * KB

    def test_invalid_sizes(self):
        a = CachingAllocator(capacity=KB)
        with pytest.raises(ValueError):
            a.malloc(0)
        with pytest.raises(ValueError):
            CachingAllocator(capacity=0)


class TestExpandableSegments:
    def test_grows_in_place(self):
        a = CachingAllocator(
            capacity=100 * KB, segment_granularity=KB, expandable_segments=True
        )
        a.malloc(10 * KB)
        a.malloc(10 * KB)
        assert len(a.segments) == 1
        assert a.reserved == 20 * KB

    def test_tail_block_extension(self):
        a = CachingAllocator(
            capacity=100 * KB, segment_granularity=KB, expandable_segments=True
        )
        h = a.malloc(10 * KB)
        a.free(h)
        a.malloc(14 * KB)  # tail (10 free) grows by 4
        assert a.reserved == 14 * KB
        assert len(a.segments) == 1

    def test_oom_when_growth_exceeds_capacity(self):
        a = CachingAllocator(
            capacity=10 * KB, segment_granularity=KB, expandable_segments=True
        )
        a.malloc(8 * KB)
        with pytest.raises(OutOfMemoryError):
            a.malloc(4 * KB)


class TestStatsInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=64)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants(self, ops):
        """allocated <= reserved <= capacity under any malloc/free stream."""
        a = CachingAllocator(capacity=100_000 * KB, segment_granularity=KB)
        live = []
        for is_malloc, size in ops:
            if is_malloc or not live:
                live.append(a.malloc(size * KB))
            else:
                a.free(live.pop())
            s = a.stats()
            assert 0 <= s.allocated <= s.reserved <= a.capacity
            assert s.peak_allocated >= s.allocated
            assert s.peak_reserved >= s.reserved
        # Freeing everything leaves allocated at exactly zero.
        for h in live:
            a.free(h)
        assert a.stats().allocated == 0

    def test_fragmentation_ratio(self):
        a = CachingAllocator(capacity=100 * KB, segment_granularity=KB)
        h = a.malloc(10 * KB)
        a.free(h)
        st_ = a.stats()
        assert st_.fragmentation == 10 * KB
        assert st_.fragmentation_ratio == pytest.approx(1.0)
