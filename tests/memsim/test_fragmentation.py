"""Chunked-MLP fragmentation study (paper Section 4.4.2)."""

import pytest

from repro.memsim import (
    CachingAllocator,
    chunked_mlp_trace,
    mlp_phase_trace,
    replay,
)

GIB = 1 << 30
ARGS = dict(num_layers=4, num_micro_batches=8, s=32768, b=1, h=4096)


def _run(trace, expandable=False):
    alloc = CachingAllocator(
        capacity=960 * GIB, segment_granularity=2 << 20, expandable_segments=expandable
    )
    return replay(trace, alloc)


class TestChunkedMLP:
    def test_traces_balance(self):
        for fn in (mlp_phase_trace, chunked_mlp_trace):
            trace = fn(**ARGS)
            mallocs = {e.name for e in trace if e.op == "malloc"}
            frees = {e.name for e in trace if e.op == "free"}
            assert mallocs == frees

    def test_chunked_lowers_peak_reserved(self):
        """The headline effect: chunking shrinks the transient footprint
        and removes the irregular-size fragmentation."""
        un, _ = _run(mlp_phase_trace(**ARGS))
        ch, _ = _run(chunked_mlp_trace(**ARGS, chunk_rows=2048))
        assert ch.peak_reserved < un.peak_reserved

    def test_unchunked_fragments_chunked_does_not(self):
        un, _ = _run(mlp_phase_trace(**ARGS))
        ch, _ = _run(chunked_mlp_trace(**ARGS, chunk_rows=2048))
        frag_un = un.peak_reserved - un.peak_allocated
        frag_ch = ch.peak_reserved - ch.peak_allocated
        assert frag_un > 0
        assert frag_ch <= frag_un * 0.25

    def test_expandable_segments_mitigates(self):
        """Section 5.1: expandable segments reduce reservation waste."""
        plain, _ = _run(mlp_phase_trace(**ARGS), expandable=False)
        expand, _ = _run(mlp_phase_trace(**ARGS), expandable=True)
        assert expand.peak_reserved <= plain.peak_reserved
        assert expand.num_segments < plain.num_segments

    def test_smaller_chunks_smaller_transients(self):
        big, _ = _run(chunked_mlp_trace(**ARGS, chunk_rows=8192))
        small, _ = _run(chunked_mlp_trace(**ARGS, chunk_rows=1024))
        assert small.peak_reserved <= big.peak_reserved

    def test_replay_rejects_double_malloc(self):
        from repro.memsim import TraceEvent

        trace = [TraceEvent("malloc", "x", 10), TraceEvent("malloc", "x", 10)]
        with pytest.raises(ValueError, match="double malloc"):
            _run(trace)

    def test_replay_rejects_unknown_op(self):
        from repro.memsim import TraceEvent

        with pytest.raises(ValueError, match="unknown trace op"):
            _run([TraceEvent("poke", "x", 10)])
