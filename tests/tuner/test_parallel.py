"""Parallel sweeps and persisted caches reproduce the serial tuner.

ISSUE acceptance: ``autotune(..., workers=4)`` returns plans identical
to the serial sweep on the 7B / H20 / p=8 / 64k grid, and a repeated
sweep against a persisted cache performs zero cold evaluations
(verified via :class:`CacheStats`).
"""

import pytest

from repro.experiments.common import Workload
from repro.tuner import CostCache, autotune
from repro.tuner.autotune import _candidate_key, enumerate_candidates
from repro.tuner.worker import evaluate_chunk


@pytest.fixture(scope="module")
def wl():
    """The paper's 7B / H20 / p=8 / 64k acceptance workload."""
    return Workload.paper("7B", "H20", 8, 65536)


@pytest.fixture(scope="module")
def serial(wl):
    cache = CostCache()
    plans = autotune(wl, cache=cache)
    return plans, cache


class TestParallelEquivalence:
    def test_workers4_matches_serial_on_acceptance_grid(self, wl, serial):
        serial_plans, serial_cache = serial
        cache = CostCache()
        parallel_plans = autotune(wl, cache=cache, workers=4)
        assert parallel_plans == serial_plans

    def test_parallel_cache_stats_match_serial(self, wl, serial):
        _, serial_cache = serial
        cache = CostCache()
        autotune(wl, cache=cache, workers=4)
        assert cache.stats.misses == serial_cache.stats.misses
        assert cache.stats.hits == serial_cache.stats.hits
        assert len(cache) == len(serial_cache)

    def test_workers_skip_already_cached_candidates(self, wl, serial):
        """A warm cache leaves nothing for the pool: all hits, no forks."""
        serial_plans, serial_cache = serial
        before = serial_cache.stats.misses
        again = autotune(wl, cache=serial_cache, workers=4)
        assert again == serial_plans
        assert serial_cache.stats.misses == before

    def test_worker_chunk_merges_into_caller_cache(self, wl):
        """The per-worker cache's keys are the caller's keys."""
        cap = float(wl.cluster.node.gpu.hbm_bytes)
        cands = enumerate_candidates(wl, schedules=["1f1b"])[:2]
        worker_cache = evaluate_chunk(wl, cap, cands)
        assert worker_cache.stats.misses == len(cands)
        parent = CostCache()
        assert parent.merge(worker_cache) == len(cands)
        for cand in cands:
            assert _candidate_key(wl, cand, cap) in parent


class TestPersistedSweep:
    def test_second_sweep_from_disk_is_all_hits(self, wl, serial, tmp_path):
        serial_plans, serial_cache = serial
        path = tmp_path / "sweep.json"
        serial_cache.save(path)

        reloaded = CostCache.from_file(path)
        plans = autotune(wl, cache=reloaded)
        assert plans == serial_plans
        assert reloaded.stats.misses == 0, "persisted sweep must be fully warm"
        assert reloaded.stats.disk_hits == reloaded.stats.lookups

    def test_parallel_sweep_against_disk_cache_stays_cold_free(
        self, wl, serial, tmp_path
    ):
        serial_plans, serial_cache = serial
        path = tmp_path / "sweep.json"
        serial_cache.save(path)

        reloaded = CostCache.from_file(path)
        plans = autotune(wl, cache=reloaded, workers=4)
        assert plans == serial_plans
        assert reloaded.stats.misses == 0
