"""SqliteCostStore: backend selection, lazy lookup, concurrent writers."""

import json
import multiprocessing
import sqlite3

import pytest

from repro.tuner import CostCache, SqliteCostStore, costmodel_fingerprint, detect_backend
from repro.tuner.store import is_sqlite_file


def _key(i):
    return (("model", "7B"), 1.0, "helix", "none", i, (("fold", 2),))


def _record(i):
    return {"error": None, "makespan": float(i), "peak_memory_bytes": 2.0 * i,
            "bubble_fraction": 0.1}


class TestDetectBackend:
    @pytest.mark.parametrize("path,expected", [
        ("sweep.json", "json"),
        ("sweep", "json"),
        ("sweep.sqlite", "sqlite"),
        ("sweep.SQLITE3", "sqlite"),
        ("plans.db", "sqlite"),
        ("dir.sqlite/sweep.json", "json"),
    ])
    def test_suffix_selects_backend(self, path, expected):
        assert detect_backend(path) == expected

    def test_explicit_backend_overrides_suffix(self):
        assert detect_backend("sweep.json", "sqlite") == "sqlite"
        assert detect_backend("sweep.sqlite", "json") == "json"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown cost cache backend"):
            detect_backend("sweep.json", "tape")


class TestStore:
    def test_round_trip_preserves_keys_and_records(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = SqliteCostStore(path)
        for i in range(5):
            store.put(_key(i), _record(i))
        assert len(store) == 5

        reopened = SqliteCostStore(path, create=False)
        for i in range(5):
            # Keys must round trip as nested tuples, not JSON lists.
            assert _key(i) in reopened
            assert reopened.get(_key(i)) == _record(i)
        assert _key(99) not in reopened
        assert reopened.get(_key(99)) is None

    def test_put_many_and_items(self, tmp_path):
        store = SqliteCostStore(tmp_path / "store.sqlite")
        assert store.put_many(iter((_key(i), _record(i)) for i in range(10))) == 10
        entries = dict(store.items())
        assert entries == {_key(i): _record(i) for i in range(10)}

    def test_put_replaces(self, tmp_path):
        store = SqliteCostStore(tmp_path / "store.sqlite")
        store.put(_key(0), _record(0))
        store.put(_key(0), _record(7))
        assert len(store) == 1
        assert store.get(_key(0)) == _record(7)

    def test_create_false_requires_existing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SqliteCostStore(tmp_path / "nope.sqlite", create=False)

    def test_create_makes_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "store.sqlite"
        SqliteCostStore(path).put(_key(0), _record(0))
        assert is_sqlite_file(path)

    def test_non_sqlite_file_rejected_with_pointed_error(self, tmp_path):
        path = tmp_path / "actually.json"
        path.write_text(json.dumps({"format": "repro-costcache"}))
        with pytest.raises(ValueError, match="not a sqlite cost cache store"):
            SqliteCostStore(path)

    def test_foreign_sqlite_database_rejected(self, tmp_path):
        path = tmp_path / "other.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="not a cost cache store"):
            SqliteCostStore(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "store.sqlite"
        SqliteCostStore(path)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='99' WHERE key='version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="unsupported sqlite cost cache"):
            SqliteCostStore(path)

    def test_fingerprint_mismatch_clears_and_restamps(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = SqliteCostStore(path)
        store.put(_key(0), _record(0))
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='0123456789abcdef' WHERE key='costmodel'")
        conn.commit()
        conn.close()

        with pytest.warns(UserWarning, match="fingerprint"):
            reopened = SqliteCostStore(path)
        assert len(reopened) == 0  # stale records are not served
        assert reopened.fingerprint == costmodel_fingerprint()


class TestCacheIntegration:
    def test_attached_store_serves_lazy_disk_hits(self, tmp_path):
        path = tmp_path / "store.sqlite"
        SqliteCostStore(path).put(_key(0), _record(0))

        cache = CostCache.open(path)
        assert cache.stats.lookups == 0
        value = cache.get_or_eval(_key(0), lambda: pytest.fail("on disk"))
        assert value == _record(0)
        assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
        # Second lookup is served from the hot layer, still a disk hit.
        cache.get_or_eval(_key(0), lambda: pytest.fail("cached"))
        assert cache.stats.disk_hits == 2

    def test_cold_evaluations_write_through(self, tmp_path):
        path = tmp_path / "store.sqlite"
        cache = CostCache.open(path)
        cache.get_or_eval(_key(0), lambda: _record(0))
        assert cache.stats.misses == 1
        # A second cache over the same store sees the entry without any
        # explicit save() -- that is what makes the store shareable.
        other = CostCache.open(path)
        other.get_or_eval(_key(0), lambda: pytest.fail("written through"))
        assert other.stats.disk_hits == 1

    def test_contains_and_peek_fall_through_to_store(self, tmp_path):
        path = tmp_path / "store.sqlite"
        SqliteCostStore(path).put(_key(0), _record(0))
        cache = CostCache.open(path)
        assert _key(0) in cache  # the parallel sweep path uses `in`
        assert cache.peek(_key(0)) == _record(0)
        assert cache.stats.lookups == 0  # neither call counts stats
        with pytest.raises(KeyError):
            cache.peek(_key(99))

    def test_save_flushes_adopted_entries(self, tmp_path):
        path = tmp_path / "store.sqlite"
        cache = CostCache.open(path)
        cache.adopt(_key(0), _record(0))  # adopt() does not write through
        assert cache.save(path) == 1
        assert SqliteCostStore(path, create=False).get(_key(0)) == _record(0)

    def test_save_json_cache_to_sqlite_path(self, tmp_path):
        cache = CostCache()
        for i in range(3):
            cache.adopt(_key(i), _record(i))
        path = tmp_path / "out.sqlite"
        assert cache.save(path) == 3
        assert dict(SqliteCostStore(path, create=False).items()) == {
            _key(i): _record(i) for i in range(3)
        }

    def test_len_counts_memory_and_store_without_double_counting(self, tmp_path):
        path = tmp_path / "store.sqlite"
        SqliteCostStore(path).put(_key(0), _record(0))
        cache = CostCache.open(path)
        cache.get_or_eval(_key(0), lambda: pytest.fail("on disk"))  # fetched
        cache.get_or_eval(_key(1), lambda: _record(1))  # written through
        cache.adopt(_key(2), _record(2))  # memory only
        assert len(cache) == 3

    def test_load_sqlite_file_with_json_suffix_is_pointed_at(self, tmp_path):
        path = tmp_path / "mislabeled.json"
        # Write a real sqlite store under a .json name.
        store = SqliteCostStore(tmp_path / "real.sqlite")
        store.put(_key(0), _record(0))
        store.close()
        (tmp_path / "real.sqlite").rename(path)
        with pytest.raises(ValueError, match="backend='sqlite'"):
            CostCache().load(path)
        # The explicit backend override loads it fine.
        cache = CostCache.from_file(path, backend="sqlite")
        assert cache.peek(_key(0)) == _record(0)

    def test_json_and_sqlite_backends_round_trip_identically(self, tmp_path):
        cache = CostCache()
        for i in range(20):
            cache.get_or_eval(_key(i), lambda i=i: _record(i))
        cache.save(tmp_path / "store.json")
        cache.save(tmp_path / "store.sqlite")

        via_json = CostCache.from_file(tmp_path / "store.json")
        via_sqlite = CostCache.from_file(tmp_path / "store.sqlite")
        json_entries = dict(via_json.entries())
        sqlite_entries = {k: via_sqlite.peek(k) for k in json_entries}
        assert sqlite_entries == json_entries


def _writer(path, start, count):
    """One writer process: upsert ``count`` entries starting at ``start``."""
    store = SqliteCostStore(path)
    for i in range(start, start + count):
        store.put(_key(i), _record(i))
    store.close()


class TestConcurrentWriters:
    def test_multi_process_writers_lose_no_entries(self, tmp_path):
        """Several processes writing one store: every entry survives."""
        path = str(tmp_path / "shared.sqlite")
        SqliteCostStore(path)  # stamp once, before the writers race
        per_writer = 40
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(target=_writer, args=(path, w * per_writer, per_writer))
            for w in range(4)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in writers)

        store = SqliteCostStore(path, create=False)
        assert len(store) == 4 * per_writer
        for i in range(4 * per_writer):
            assert store.get(_key(i)) == _record(i)


class TestConnectionLifecycle:
    """close() semantics: every fd released, reuse-safe, leak-bounded."""

    def test_close_empties_the_registry(self, tmp_path):
        store = SqliteCostStore(tmp_path / "c.sqlite")
        store.put(_key(1), _record(1))
        assert store._all_conns
        store.close()
        assert store._all_conns == []

    def test_close_from_another_thread_closes_this_threads_conn(self, tmp_path):
        import threading

        store = SqliteCostStore(tmp_path / "c.sqlite")
        conn = store._conn  # main thread's cached connection
        t = threading.Thread(target=store.close)
        t.start()
        t.join()
        with pytest.raises(sqlite3.ProgrammingError):
            conn.execute("SELECT 1")

    def test_reuse_after_close_reconnects(self, tmp_path):
        store = SqliteCostStore(tmp_path / "c.sqlite")
        store.put(_key(1), _record(1))
        store.close()
        # The cached per-thread handle is stale (generation bumped):
        # the next use reconnects instead of failing on a closed conn.
        assert store.get(_key(1)) == _record(1)
        store.put(_key(2), _record(2))
        assert len(store) == 2

    def test_dead_owner_connections_are_pruned(self, tmp_path):
        import threading

        store = SqliteCostStore(tmp_path / "c.sqlite")

        def use():
            store.put(_key(3), _record(3))

        for _ in range(5):
            t = threading.Thread(target=use)
            t.start()
            t.join()
        # Registering a fresh connection prunes every dead owner's entry,
        # so the registry is bounded by live threads -- not thread churn.
        store.close()
        assert store.get(_key(3)) == _record(3)  # reconnect registers anew
        assert len(store._all_conns) == 1

    def test_cache_close_closes_the_store(self, tmp_path):
        cache = CostCache.open(tmp_path / "c.sqlite")
        cache.get_or_eval(_key(4), lambda: _record(4))
        assert cache.store._all_conns
        cache.close()
        assert cache.store._all_conns == []
