"""Auto-tuner: candidate sweep, memory cap, memoizing cache, acceptance."""

import pytest

from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.common import METHODS, Workload, run_method
from repro.tuner import CostCache, autotune, enumerate_candidates
from repro.tuner.autotune import _candidate_key

GIB = float(1 << 30)


@pytest.fixture(scope="module")
def wl():
    """The paper's 7B / H20 / p=8 / 64k acceptance workload."""
    return Workload.paper("7B", "H20", 8, 65536)


@pytest.fixture(scope="module")
def small_wl():
    return Workload.paper("7B", "H20", 4, 32768)


class TestEnumeration:
    def test_micro_batch_counts_follow_schedule_divisors(self, small_wl):
        cands = enumerate_candidates(small_wl)
        helix = {c.num_micro_batches for c in cands if c.schedule == "helix"}
        layerwise = {c.num_micro_batches for c in cands if c.schedule == "1f1b"}
        assert helix == {8}  # multiples of 2p up to the budget of 2p
        assert layerwise == {4, 8}  # multiples of p

    def test_recompute_restricted_per_schedule(self, small_wl):
        cands = enumerate_candidates(small_wl)
        helix = {c.recompute for c in cands if c.schedule == "helix"}
        assert helix == {RecomputeStrategy.NONE, RecomputeStrategy.WITHOUT_ATTENTION}
        ada = {c.recompute for c in cands if c.schedule == "adapipe"}
        assert ada == {RecomputeStrategy.NONE}

    def test_aliases_not_swept(self, small_wl):
        cands = enumerate_candidates(small_wl)
        assert not any(c.schedule == "helix-no-recompute" for c in cands)

    def test_explicit_inadmissible_strategy_surfaces_as_infeasible(self, small_wl):
        """A requested strategy outside a schedule's choices is reported,
        not silently dropped from the sweep."""
        plans = autotune(
            small_wl,
            recomputes=[RecomputeStrategy.FULL],
            cache=CostCache(),
        )
        helix = [p for p in plans if p.candidate.schedule == "helix"]
        assert helix
        assert all(not p.feasible for p in helix)
        assert all("not admissible" in (p.reason or "") for p in helix)
        # Layer-wise schedules model FULL faithfully and still evaluate.
        assert any(p.feasible and p.candidate.schedule == "1f1b" for p in plans)


class TestMemoryCap:
    def test_feasible_plans_respect_cap(self, small_wl):
        cap = 24 * GIB
        plans = autotune(small_wl, memory_cap_bytes=cap, cache=CostCache())
        feasible = [p for p in plans if p.feasible]
        assert feasible
        assert all(p.peak_memory_bytes <= cap for p in feasible)
        over = [p for p in plans if not p.feasible and p.reason and "OOM" in p.reason]
        assert over, "a 24 GiB cap must exclude the no-recompute plans"

    def test_tiny_cap_reports_reasons_for_everything(self, small_wl):
        plans = autotune(small_wl, memory_cap_bytes=1 * GIB, cache=CostCache())
        assert all(not p.feasible for p in plans)
        assert all(p.reason for p in plans)

    def test_infeasible_can_be_dropped(self, small_wl):
        plans = autotune(
            small_wl,
            memory_cap_bytes=24 * GIB,
            cache=CostCache(),
            include_infeasible=False,
        )
        assert plans and all(p.feasible for p in plans)


class TestCache:
    def test_cache_hits_reproduce_cold_results(self, small_wl):
        shared = CostCache()
        cold = autotune(small_wl, cache=shared)
        assert shared.stats.hits == 0 and shared.stats.misses > 0
        warm = autotune(small_wl, cache=shared)
        assert warm == cold
        assert shared.stats.hits == shared.stats.misses

    def test_cache_matches_independent_cold_run(self, small_wl):
        a = autotune(small_wl, cache=CostCache())
        b = autotune(small_wl, cache=CostCache())
        assert a == b

    def test_cached_equality_with_build_error_candidates(self, small_wl):
        """Build-error rows carry None metrics (not NaN), so a cached
        sweep still compares equal to its cold run."""
        shared = CostCache()
        kw = dict(
            schedules=["helix"],
            micro_batch_counts=[6],  # not a multiple of 2p: build error
            cache=shared,
        )
        cold = autotune(small_wl, **kw)
        warm = autotune(small_wl, **kw)
        assert cold and not cold[0].feasible
        assert cold[0].iteration_time is None
        assert "multiple" in cold[0].reason
        assert warm == cold

    def test_key_distinguishes_caps(self, small_wl):
        c1 = enumerate_candidates(small_wl)[0]
        assert _candidate_key(small_wl, c1, 1.0) != _candidate_key(small_wl, c1, 2.0)


class TestAcceptance:
    def test_paper_workload_ranked_and_beats_hardcoded_methods(self, wl):
        """ISSUE acceptance: non-empty ranked list, top plan feasible
        under the HBM cap and at least matching the best hardcoded
        METHODS entry on simulated iteration time."""
        cap = wl.cluster.node.gpu.hbm_bytes
        plans = autotune(wl, cache=CostCache())
        assert plans
        top = plans[0]
        assert top.feasible
        assert top.peak_memory_bytes <= cap
        assert top.iteration_time is not None

        best_hardcoded = min(
            run_method(wl, method).makespan for method in METHODS
        )
        assert top.iteration_time <= best_hardcoded * (1 + 1e-9)

    def test_ranking_is_by_throughput(self, wl):
        plans = [p for p in autotune(wl, cache=CostCache()) if p.feasible]
        rates = [p.tokens_per_s for p in plans]
        assert rates == sorted(rates, reverse=True)
