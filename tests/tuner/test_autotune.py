"""Auto-tuner: candidate sweep, memory cap, memoizing cache, acceptance."""

import pytest

from repro.costmodel.memory import RecomputeStrategy
from repro.experiments.common import METHODS, Workload, run_method
from repro.schedules.registry import workload_cache_key
from repro.tuner import CostCache, autotune, enumerate_candidates
from repro.tuner.autotune import _candidate_key, _workload_key

GIB = float(1 << 30)


@pytest.fixture(scope="module")
def wl():
    """The paper's 7B / H20 / p=8 / 64k acceptance workload."""
    return Workload.paper("7B", "H20", 8, 65536)


@pytest.fixture(scope="module")
def small_wl():
    return Workload.paper("7B", "H20", 4, 32768)


class TestEnumeration:
    def test_micro_batch_counts_follow_schedule_divisors(self, small_wl):
        cands = enumerate_candidates(small_wl)
        # The divisor tracks the swept fold: 2p for the bound fold=2,
        # p for the fold=1 grid point.
        helix2 = {
            c.num_micro_batches
            for c in cands
            if c.schedule == "helix" and c.options == ()
        }
        helix1 = {
            c.num_micro_batches
            for c in cands
            if c.schedule == "helix" and c.options == (("fold", 1),)
        }
        layerwise = {c.num_micro_batches for c in cands if c.schedule == "1f1b"}
        assert helix2 == {8}  # multiples of 2p up to the budget of 2p
        assert helix1 == {4, 8}  # fold 1 runs on the p grid
        assert layerwise == {4, 8}  # multiples of p

    def test_recompute_restricted_per_schedule(self, small_wl):
        cands = enumerate_candidates(small_wl)
        helix = {c.recompute for c in cands if c.schedule == "helix"}
        assert helix == {RecomputeStrategy.NONE, RecomputeStrategy.WITHOUT_ATTENTION}
        ada = {c.recompute for c in cands if c.schedule == "adapipe"}
        assert ada == {RecomputeStrategy.NONE}

    def test_aliases_not_swept(self, small_wl):
        cands = enumerate_candidates(small_wl)
        assert not any(c.schedule == "helix-no-recompute" for c in cands)
        # helix-naive is helix x fold=1, which the fold grid now covers.
        assert not any(c.schedule == "helix-naive" for c in cands)
        assert any(
            c.schedule == "helix" and c.options == (("fold", 1),) for c in cands
        )

    def test_explicit_inadmissible_strategy_surfaces_as_infeasible(self, small_wl):
        """A requested strategy outside a schedule's choices is reported,
        not silently dropped from the sweep."""
        plans = autotune(
            small_wl,
            recomputes=[RecomputeStrategy.FULL],
            cache=CostCache(),
            # Exhaustive: this test is about strategy admissibility, and
            # with pruning on a slow-but-admissible 1f1b x FULL row may
            # be (correctly) skipped as provably losing.
            prune=False,
        )
        helix = [p for p in plans if p.candidate.schedule == "helix"]
        assert helix
        assert all(not p.feasible for p in helix)
        assert all("not admissible" in (p.reason or "") for p in helix)
        # Layer-wise schedules model FULL faithfully and still evaluate.
        assert any(p.feasible and p.candidate.schedule == "1f1b" for p in plans)


class TestOptionAxis:
    def test_interleaved_chunk_grid_swept(self, small_wl):
        cands = enumerate_candidates(small_wl)
        combos = {c.options for c in cands if c.schedule == "interleaved"}
        assert combos == {(), (("num_chunks_per_stage", 4),)}

    def test_zb1p_grid_depends_on_pipeline_size(self, small_wl):
        cands = enumerate_candidates(small_wl)
        combos = {c.options for c in cands if c.schedule == "zb1p"}
        # None (the schema default) canonicalises to the empty combo.
        assert combos == {(), (("max_outstanding", small_wl.p),)}

    def test_default_combo_is_canonical_empty_tuple(self, small_wl):
        """A grid value equal to the schema default must not produce a
        second, distinct cache key for the same configuration."""
        cands = enumerate_candidates(small_wl, schedules=["helix"])
        fold_combos = {c.options for c in cands}
        assert () in fold_combos  # fold=2, the bound default
        assert (("fold", 2),) not in fold_combos

    def test_option_grids_override_and_disable(self, small_wl):
        none = enumerate_candidates(small_wl, option_grids={})
        assert all(c.options == () for c in none)
        custom = enumerate_candidates(
            small_wl,
            schedules=["interleaved"],
            option_grids={"interleaved": {"num_chunks_per_stage": (2, 4, 8)}},
        )
        combos = {c.options for c in custom}
        assert (("num_chunks_per_stage", 8),) in combos

    def test_unknown_option_grid_name_rejected(self, small_wl):
        with pytest.raises(ValueError, match="not in the option schema"):
            enumerate_candidates(
                small_wl,
                schedules=["1f1b"],
                option_grids={"1f1b": {"bogus": (1, 2)}},
            )

    def test_empty_option_grid_values_rejected(self, small_wl):
        """An empty value sequence would product to zero combos and
        silently drop the schedule; it must fail loudly instead."""
        with pytest.raises(ValueError, match="empty value sequence"):
            enumerate_candidates(
                small_wl,
                schedules=["interleaved"],
                option_grids={"interleaved": {"num_chunks_per_stage": []}},
            )

    def test_grid_for_unswept_schedule_rejected(self, small_wl):
        """A typo'd schedule key must fail loudly, not silently run an
        all-defaults sweep with every registered grid disabled."""
        with pytest.raises(ValueError, match="name no swept schedule"):
            enumerate_candidates(
                small_wl,
                option_grids={"interleavd": {"num_chunks_per_stage": (2, 4)}},
            )

    def test_option_candidates_evaluate(self, small_wl):
        """fold=1 grid points build and rank like any other candidate."""
        plans = autotune(small_wl, schedules=["helix"], cache=CostCache())
        fold1 = [p for p in plans if p.candidate.options == (("fold", 1),)]
        assert fold1
        assert any(p.feasible for p in fold1)


class TestDivisorBudgetPreclusion:
    def test_schedule_beyond_budget_reported_not_dropped(self):
        """p=4 with a budget of 4 micro-batches cannot run two-fold
        helix (divisor 8); the sweep must say so instead of silently
        omitting the schedule."""
        wl = Workload.paper("7B", "H20", 4, 32768, num_micro_batches=4)
        plans = autotune(wl, schedules=["helix"], cache=CostCache())
        precluded = [
            p
            for p in plans
            if p.reason and "micro-batch divisor 8 exceeds budget 4" in p.reason
        ]
        assert len(precluded) == 1
        assert not precluded[0].feasible
        assert precluded[0].candidate.num_micro_batches == 8
        assert precluded[0].iteration_time is None
        # The fold-1 grid points still fit the budget and evaluate.
        assert any(p.feasible and p.candidate.options == (("fold", 1),) for p in plans)

    def test_enumerate_candidates_excludes_synthetic_rows(self):
        wl = Workload.paper("7B", "H20", 4, 32768, num_micro_batches=4)
        cands = enumerate_candidates(wl, schedules=["helix"])
        assert all(c.num_micro_batches <= 4 for c in cands)


class TestWorkloadKey:
    def test_key_is_value_based_and_stable(self, small_wl):
        other = Workload.paper("7B", "H20", 4, 32768)
        assert _workload_key(small_wl) == _workload_key(other)
        assert _workload_key(small_wl) != _workload_key(
            Workload.paper("7B", "H20", 4, 65536)
        )

    def test_key_contains_no_memory_addresses(self, small_wl):
        assert " at 0x" not in repr(_workload_key(small_wl))

    def test_duck_typed_default_repr_rejected_loudly(self, small_wl):
        class Opaque:
            pass

        class DuckWorkload:
            model = Opaque()
            cluster = small_wl.cluster
            seq_len = 1024
            micro_batch = 1

        with pytest.raises(TypeError, match="memory address"):
            _workload_key(DuckWorkload())

    def test_cache_key_hook_opts_in(self):
        class DuckWorkload:
            def cache_key(self):
                return ("my-workload", 42)

        assert workload_cache_key(DuckWorkload()) == ("my-workload", 42)

    def test_cache_key_hook_accepts_scalars(self):
        """A scalar hook return is one key component, not an iterable
        to splat -- '7B-H20' must not become a tuple of characters."""

        class StringKey:
            def cache_key(self):
                return "7B-H20-p8-64k"

        class IntKey:
            def cache_key(self):
                return 1234

        assert workload_cache_key(StringKey()) == ("7B-H20-p8-64k",)
        assert workload_cache_key(IntKey()) == (1234,)

    def test_set_fields_key_order_independently(self):
        """Set repr order is hash-randomised per process; the key must
        not depend on it or pool workers would never hit the cache."""
        from repro.schedules.registry import stable_value_key

        a = stable_value_key(frozenset({"alpha", "beta", "gamma"}))
        b = stable_value_key(frozenset({"gamma", "alpha", "beta"}))
        assert a == b
        assert a[0] == "set"

    def test_mapping_keys_do_not_alias_across_types(self):
        from repro.schedules.registry import stable_value_key

        assert stable_value_key({1: "x"}) != stable_value_key({"1": "x"})
        # Mixed-type keys must derive a key, not crash in sorted().
        mixed = stable_value_key({1: "a", "b": 2})
        assert mixed[0] == "map"


class TestMemoryCap:
    def test_feasible_plans_respect_cap(self, small_wl):
        cap = 24 * GIB
        plans = autotune(small_wl, memory_cap_bytes=cap, cache=CostCache())
        feasible = [p for p in plans if p.feasible]
        assert feasible
        assert all(p.peak_memory_bytes <= cap for p in feasible)
        over = [p for p in plans if not p.feasible and p.reason and "OOM" in p.reason]
        assert over, "a 24 GiB cap must exclude the no-recompute plans"

    def test_tiny_cap_reports_reasons_for_everything(self, small_wl):
        plans = autotune(small_wl, memory_cap_bytes=1 * GIB, cache=CostCache())
        assert all(not p.feasible for p in plans)
        assert all(p.reason for p in plans)

    def test_infeasible_can_be_dropped(self, small_wl):
        plans = autotune(
            small_wl,
            memory_cap_bytes=24 * GIB,
            cache=CostCache(),
            include_infeasible=False,
        )
        assert plans and all(p.feasible for p in plans)


class TestCache:
    def test_cache_hits_reproduce_cold_results(self, small_wl):
        shared = CostCache()
        cold = autotune(small_wl, cache=shared)
        assert shared.stats.hits == 0 and shared.stats.misses > 0
        warm = autotune(small_wl, cache=shared)
        assert warm == cold
        assert shared.stats.hits == shared.stats.misses

    def test_cache_matches_independent_cold_run(self, small_wl):
        a = autotune(small_wl, cache=CostCache())
        b = autotune(small_wl, cache=CostCache())
        assert a == b

    def test_cached_equality_with_build_error_candidates(self, small_wl):
        """Build-error rows carry None metrics (not NaN), so a cached
        sweep still compares equal to its cold run."""
        shared = CostCache()
        kw = dict(
            schedules=["helix"],
            micro_batch_counts=[6],  # not a multiple of 2p: build error
            cache=shared,
        )
        cold = autotune(small_wl, **kw)
        warm = autotune(small_wl, **kw)
        assert cold and not cold[0].feasible
        assert cold[0].iteration_time is None
        assert "multiple" in cold[0].reason
        assert warm == cold

    def test_key_distinguishes_caps(self, small_wl):
        c1 = enumerate_candidates(small_wl)[0]
        assert _candidate_key(small_wl, c1, 1.0) != _candidate_key(small_wl, c1, 2.0)


class TestFillBudgetParity:
    """fill_budget=True must pick the plan an exhaustive sweep picks."""

    KW = dict(schedules=["1f1b", "helix", "zb1p"], recomputes="defaults")

    def test_candidates_are_the_max_divisor_multiples(self, small_wl):
        full = enumerate_candidates(small_wl, **self.KW)
        filled = enumerate_candidates(small_wl, fill_budget=True, **self.KW)
        # One candidate per (schedule, recompute, options) combination...
        combo = lambda c: (c.schedule, c.recompute, c.options)
        assert len(filled) == len({combo(c) for c in full})
        # ...at exactly the largest count the exhaustive sweep reaches.
        max_full = {}
        for c in full:
            key = combo(c)
            max_full[key] = max(max_full.get(key, 0), c.num_micro_batches)
        for c in filled:
            assert c.num_micro_batches == max_full[combo(c)]

    def test_best_plan_matches_exhaustive_sweep(self, small_wl):
        """On the smoke workload, the winner of the full micro-batch-count
        sweep runs at the budget-filling count, so the cheap fill_budget
        sweep returns an identical best PlanResult."""
        full = autotune(small_wl, cache=CostCache(), **self.KW)
        filled = autotune(
            small_wl, cache=CostCache(), fill_budget=True, **self.KW
        )
        assert full and filled
        assert full[0].feasible and filled[0].feasible
        assert filled[0] == full[0]
        # Every fill_budget plan appears in the exhaustive sweep with
        # identical metrics (same cache keys -> same records).
        by_cand = {p.candidate: p for p in full}
        for plan in filled:
            assert by_cand[plan.candidate] == plan


class TestAcceptance:
    def test_paper_workload_ranked_and_beats_hardcoded_methods(self, wl):
        """ISSUE acceptance: non-empty ranked list, top plan feasible
        under the HBM cap and at least matching the best hardcoded
        METHODS entry on simulated iteration time."""
        cap = wl.cluster.node.gpu.hbm_bytes
        plans = autotune(wl, cache=CostCache())
        assert plans
        top = plans[0]
        assert top.feasible
        assert top.peak_memory_bytes <= cap
        assert top.iteration_time is not None

        best_hardcoded = min(
            run_method(wl, method).makespan for method in METHODS
        )
        assert top.iteration_time <= best_hardcoded * (1 + 1e-9)

    def test_ranking_is_by_throughput(self, wl):
        plans = [p for p in autotune(wl, cache=CostCache()) if p.feasible]
        rates = [p.tokens_per_s for p in plans]
        assert rates == sorted(rates, reverse=True)
